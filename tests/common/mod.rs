//! Shared fixtures for the workspace integration tests.

use cpa::model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};

/// The paper's Fig. 1 system: `τ1`, `τ2` on core `π_x`; `τ3` on core
/// `π_y`, with the exact parameters of the figure caption. Periods are
/// chosen so a window of length 60 contains the job counts the worked
/// example uses (3 jobs of `τ1`, 4 fully-executed jobs of `τ3`).
#[must_use]
pub fn fig1_system() -> (Platform, TaskSet) {
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(1))
        .build()
        .expect("valid platform");
    let tau1 = Task::builder("tau1")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(20))
        .deadline(Time::from_cycles(20))
        .core(CoreId::new(0))
        .priority(Priority::new(1))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10).expect("blocks"))
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).expect("blocks"))
        .build()
        .expect("valid task");
    let tau2 = Task::builder("tau2")
        .processing_demand(Time::from_cycles(32))
        .memory_demand(8)
        .period(Time::from_cycles(200))
        .deadline(Time::from_cycles(200))
        .core(CoreId::new(0))
        .priority(Priority::new(2))
        .ecb(CacheBlockSet::from_blocks(256, 1..=6).expect("blocks"))
        .ucb(CacheBlockSet::from_blocks(256, [5, 6]).expect("blocks"))
        .build()
        .expect("valid task");
    let tau3 = Task::builder("tau3")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(16))
        .deadline(Time::from_cycles(16))
        .core(CoreId::new(1))
        .priority(Priority::new(3))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10).expect("blocks"))
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).expect("blocks"))
        .build()
        .expect("valid task");
    let tasks = TaskSet::new(vec![tau1, tau2, tau3]).expect("valid task set");
    (platform, tasks)
}
