//! Simulator determinism and accounting invariants.
//!
//! These are the simulator-side counterparts of the `cpa-validate`
//! accounting oracle: structural properties of [`cpa::sim::SimReport`]
//! that must hold on *every* run, independent of workload, bus policy, or
//! release model — plus bit-exact reproducibility in the seed.

use cpa::model::{Platform, TaskSet, Time};
use cpa::sim::{BusArbitration, ReleaseModel, SimConfig, SimReport, Simulator};
use cpa::workload::{GeneratorConfig, TaskSetGenerator};
use cpa_model::CacheGeometry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const HORIZON: u64 = 150_000;

fn generated_system(seed: u64) -> (Platform, TaskSet) {
    let config = GeneratorConfig {
        cores: 2,
        tasks_per_core: 3,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.35);
    let platform = Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform");
    let generator = TaskSetGenerator::new(config).expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = generator.generate(&mut rng).expect("generation succeeds");
    (platform, tasks)
}

fn simulate(platform: &Platform, tasks: &TaskSet, config: SimConfig) -> SimReport {
    Simulator::new(platform, tasks, config)
        .expect("task set fits platform")
        .run()
}

fn bus_matrix() -> [BusArbitration; 3] {
    [
        BusArbitration::FixedPriority,
        BusArbitration::RoundRobin { slots: 2 },
        BusArbitration::Tdma { slots: 2 },
    ]
}

/// Same config (including the sporadic seed) ⇒ bit-identical report, for
/// every bus policy and both release models.
#[test]
fn identical_configs_produce_identical_reports() {
    let (platform, tasks) = generated_system(3);
    for bus in bus_matrix() {
        for releases in [
            ReleaseModel::Synchronous,
            ReleaseModel::Sporadic {
                seed: 77,
                max_extra_percent: 40,
            },
        ] {
            let config = SimConfig::new(bus)
                .with_horizon(Time::from_cycles(HORIZON))
                .with_releases(releases);
            let first = simulate(&platform, &tasks, config);
            let second = simulate(&platform, &tasks, config);
            assert_eq!(first, second, "{bus:?} {releases:?} diverged across runs");
        }
    }
}

/// The sporadic seed actually feeds the release process: different seeds
/// must be able to produce different schedules.
#[test]
fn sporadic_seed_changes_the_schedule() {
    let (platform, tasks) = generated_system(5);
    let reports: Vec<SimReport> = [11u64, 22, 33]
        .iter()
        .map(|&seed| {
            let config = SimConfig::new(BusArbitration::FixedPriority)
                .with_horizon(Time::from_cycles(HORIZON))
                .with_releases(ReleaseModel::Sporadic {
                    seed,
                    max_extra_percent: 40,
                });
            simulate(&platform, &tasks, config)
        })
        .collect();
    assert!(
        reports[0] != reports[1] || reports[1] != reports[2],
        "three different sporadic seeds produced three identical schedules"
    );
}

/// Per-task and global accounting invariants, on every bus and release
/// model:
///
/// - a job completes at most once per release;
/// - the response-time aggregate dominates the maximum once anything
///   completed;
/// - per-task bus accesses sum exactly to the global transaction count;
/// - the bus was busy exactly `transactions × d_mem` cycles, and never
///   longer than the horizon (plus the one transaction that may straddle
///   its end).
#[test]
fn accounting_invariants_hold_across_buses_and_releases() {
    let (platform, tasks) = generated_system(9);
    let d_mem = platform.memory_latency().cycles();
    for bus in bus_matrix() {
        for releases in [
            ReleaseModel::Synchronous,
            ReleaseModel::Sporadic {
                seed: 4242,
                max_extra_percent: 40,
            },
        ] {
            let config = SimConfig::new(bus)
                .with_horizon(Time::from_cycles(HORIZON))
                .with_releases(releases);
            let report = simulate(&platform, &tasks, config);

            let mut access_sum = 0u64;
            let mut released_total = 0u64;
            for id in tasks.ids() {
                let stats = report.task(id);
                access_sum += stats.bus_accesses;
                released_total += stats.released;
                assert!(
                    stats.completed <= stats.released,
                    "{bus:?} {releases:?} {id}: {} completions out of {} releases",
                    stats.completed,
                    stats.released
                );
                if stats.completed >= 1 {
                    assert!(
                        stats.total_response >= stats.max_response,
                        "{bus:?} {releases:?} {id}: total response {} below max {}",
                        stats.total_response,
                        stats.max_response
                    );
                }
            }
            assert!(released_total > 0, "{bus:?} {releases:?}: nothing released");
            assert_eq!(
                access_sum, report.bus_transactions,
                "{bus:?} {releases:?}: per-task accesses disagree with the bus total"
            );
            assert_eq!(
                report.bus_busy_cycles,
                report.bus_transactions * d_mem,
                "{bus:?} {releases:?}: busy cycles not an exact multiple of d_mem"
            );
            assert!(
                report.bus_busy_cycles <= report.horizon.cycles() + d_mem,
                "{bus:?} {releases:?}: bus busy {} cycles over horizon {}",
                report.bus_busy_cycles,
                report.horizon
            );
        }
    }
}
