//! The paper's qualitative claims, asserted on miniature experiment runs.
//!
//! These are the "shape" properties DESIGN.md §3 commits to: persistence-
//! aware analyses dominate their oblivious counterparts, the FP bus
//! outperforms RR which outperforms TDMA, the perfect-bus line is an upper
//! envelope, and the Fig. 3 sweeps trend the right way.

use cpa::experiments::{fig2, fig3, SweepOptions};

fn opts() -> SweepOptions {
    SweepOptions::quick()
        .with_sets_per_point(30)
        .with_utilization_grid(vec![0.1, 0.2, 0.3, 0.4])
}

#[test]
fn fig2_dominance_and_policy_ordering() {
    let results = fig2::fig2(&opts());
    assert_eq!(results.len(), 3);

    // Pointwise: aware ≥ oblivious, perfect ≥ aware, per panel.
    for r in &results {
        let aware = &r.series[0];
        let oblivious = &r.series[1];
        let perfect = &r.series[2];
        for ((a, o), p) in aware
            .points
            .iter()
            .zip(&oblivious.points)
            .zip(&perfect.points)
        {
            assert!(a.schedulable >= o.schedulable, "{} @ {}", r.id, a.x);
            assert!(p.schedulable >= a.schedulable, "{} @ {}", r.id, a.x);
        }
    }

    // Aggregate policy ordering: FP ≥ RR ≥ TDMA (both modes). The same
    // task-set population is used in every panel, so sums are comparable.
    let total = |panel: usize, series: usize| -> u64 {
        results[panel].series[series]
            .points
            .iter()
            .map(|p| p.schedulable)
            .sum()
    };
    for mode in [0usize, 1] {
        assert!(
            total(0, mode) >= total(1, mode),
            "FP < RR for series {mode}"
        );
        assert!(
            total(1, mode) >= total(2, mode),
            "RR < TDMA for series {mode}"
        );
    }

    // The headline phenomenon: somewhere in the sweep the aware analysis
    // schedules strictly more sets (the paper's "up to 70pp" gap).
    let gap_exists = results.iter().any(|r| {
        r.series[0]
            .points
            .iter()
            .zip(&r.series[1].points)
            .any(|(a, o)| a.schedulable > o.schedulable)
    });
    assert!(gap_exists, "no persistence gap anywhere");
}

#[test]
fn fig3a_more_cores_hurt() {
    let o = opts();
    let r = fig3::fig3a(&o);
    for s in &r.series {
        let first = s.points.first().unwrap().weighted;
        let last = s.points.last().unwrap().weighted;
        assert!(
            first >= last,
            "{}: weighted schedulability rose with cores ({first} → {last})",
            s.label
        );
    }
    // Aware dominates oblivious pairwise at every core count.
    for pair in [(0, 1), (2, 3), (4, 5)] {
        for (a, o) in r.series[pair.0].points.iter().zip(&r.series[pair.1].points) {
            assert!(a.weighted >= o.weighted - 1e-12);
        }
    }
}

#[test]
fn fig3b_larger_dmem_hurts() {
    let r = fig3::fig3b(&opts());
    for s in &r.series {
        let first = s.points.first().unwrap().weighted;
        let last = s.points.last().unwrap().weighted;
        assert!(first >= last, "{}: {first} → {last}", s.label);
    }
}

#[test]
fn fig3c_bigger_caches_help_aware_analyses_more() {
    let r = fig3::fig3c(&opts());
    // Aware series (indices 0, 2, 4) must not decline from the smallest to
    // the largest cache, and must gain more than the oblivious ones.
    for (aware_idx, obl_idx) in [(0usize, 1usize), (2, 3), (4, 5)] {
        let aware = &r.series[aware_idx].points;
        let obl = &r.series[obl_idx].points;
        let aware_gain = aware.last().unwrap().weighted - aware.first().unwrap().weighted;
        let obl_gain = obl.last().unwrap().weighted - obl.first().unwrap().weighted;
        assert!(
            aware_gain >= obl_gain - 1e-9,
            "{}: aware gained {aware_gain}, oblivious {obl_gain}",
            r.series[aware_idx].label
        );
        assert!(
            aware_gain > 0.0,
            "{}: no cache-size benefit",
            r.series[aware_idx].label
        );
    }
}

#[test]
fn fig3d_more_slots_hurt_rr_and_tdma_but_not_fp() {
    let r = fig3::fig3d(&opts());
    // FP (series 0, 1) is slot-independent: exactly flat.
    for s in &r.series[0..2] {
        for p in &s.points[1..] {
            assert!(
                (p.weighted - s.points[0].weighted).abs() < 1e-12,
                "{}",
                s.label
            );
        }
    }
    // RR and TDMA decline as s grows.
    for s in &r.series[2..6] {
        assert!(
            s.points.first().unwrap().weighted >= s.points.last().unwrap().weighted,
            "{}",
            s.label
        );
    }
}
