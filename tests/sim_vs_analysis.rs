//! Soundness: observed (simulated) response times never exceed the
//! analysed WCRT bounds on schedulable task sets.
//!
//! The simulator executes the same system model the analysis bounds
//! (partitioned FPPS, private caches at set granularity, shared bus with
//! FP/RR/TDMA arbitration, the §IV job memory model), so for every task
//! set the analysis deems schedulable, every observed response time is a
//! witness that must stay below the bound.

use cpa::analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa::model::Time;
use cpa::sim::{BusArbitration, ReleaseModel, SimConfig, Simulator};
use cpa::workload::{GeneratorConfig, TaskSetGenerator};
use cpa_experiments::runner::platform_for;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arbitration_of(bus: BusPolicy) -> BusArbitration {
    match bus {
        BusPolicy::FixedPriority => BusArbitration::FixedPriority,
        BusPolicy::RoundRobin { slots } => BusArbitration::RoundRobin { slots },
        BusPolicy::Tdma { slots } => BusArbitration::Tdma { slots },
        BusPolicy::Perfect => unreachable!("perfect bus has no concrete arbiter"),
    }
}

#[test]
fn observed_response_times_below_wcrt_bounds() {
    // Small sets keep the cycle-stepped simulation fast while exercising
    // cross-core contention.
    let gen_cfg = GeneratorConfig {
        cores: 2,
        tasks_per_core: 3,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.25);
    let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
    let platform = platform_for(&gen_cfg);

    let mut checked_sets = 0;
    for seed in 0..12u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tasks = generator.generate(&mut rng).expect("task set");
        let ctx = AnalysisContext::new(&platform, &tasks).expect("context");

        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
        ] {
            let result = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
            if !result.is_schedulable() {
                continue;
            }
            checked_sets += 1;
            // Simulate ~4 periods of the slowest task, synchronous
            // releases (the classical critical instant).
            let horizon = tasks
                .iter()
                .map(|t| t.period().cycles())
                .max()
                .unwrap()
                .saturating_mul(4)
                .min(3_000_000);
            let config =
                SimConfig::new(arbitration_of(bus)).with_horizon(Time::from_cycles(horizon));
            let report = Simulator::new(&platform, &tasks, config)
                .expect("simulator")
                .run();
            assert!(
                report.no_deadline_misses(),
                "seed {seed} {bus:?}: simulator missed a deadline on an analytically schedulable set"
            );
            for i in tasks.ids() {
                let bound = result.response_time(i).expect("schedulable");
                let observed = report.task(i).max_response;
                assert!(
                    observed <= bound,
                    "seed {seed} {bus:?} {i}: observed {observed} > bound {bound}"
                );
            }
        }
    }
    assert!(
        checked_sets >= 8,
        "only {checked_sets} schedulable sets exercised"
    );
}

#[test]
fn sporadic_releases_also_stay_below_bounds() {
    let gen_cfg = GeneratorConfig {
        cores: 2,
        tasks_per_core: 3,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.2);
    let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
    let platform = platform_for(&gen_cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let tasks = generator.generate(&mut rng).expect("task set");
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let result = analyze(
        &ctx,
        &AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware),
    );
    assert!(result.is_schedulable());

    let horizon = tasks.iter().map(|t| t.period().cycles()).max().unwrap() * 4;
    for sporadic_seed in 0..4 {
        let config = SimConfig::new(BusArbitration::RoundRobin { slots: 2 })
            .with_horizon(Time::from_cycles(horizon.min(3_000_000)))
            .with_releases(ReleaseModel::Sporadic {
                seed: sporadic_seed,
                max_extra_percent: 40,
            });
        let report = Simulator::new(&platform, &tasks, config)
            .expect("simulator")
            .run();
        for i in tasks.ids() {
            assert!(
                report.task(i).max_response <= result.response_time(i).unwrap(),
                "sporadic seed {sporadic_seed}, task {i}"
            );
        }
    }
}
