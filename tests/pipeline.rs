//! Cross-crate pipeline: synthetic programs → cache-analysis extraction →
//! task sets → bus-contention analysis → simulation.
//!
//! This is the full Heptane-substitute flow the paper's evaluation relies
//! on, exercised end-to-end through the public API only.

use cpa::analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa::cache::extract::extract;
use cpa::cfg::{ProgramGenerator, ProgramShape};
use cpa::model::{CacheGeometry, CoreId, Platform, Priority, TaskSet, Time};
use cpa::sim::{BusArbitration, SimConfig, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a 2-core task set whose parameters come entirely from the
/// extraction pipeline (no hand-written numbers).
fn extracted_task_set(geometry: CacheGeometry, seed: u64) -> TaskSet {
    let generator = ProgramGenerator::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut drafts = Vec::new();
    for (i, shape) in ProgramShape::all().into_iter().enumerate() {
        let function = generator.generate(shape, &mut rng).expect("program");
        let params = extract(&function, geometry);
        // Utilization-style period: ten times the stand-alone demand.
        let demand = params.pd + params.md * 5;
        let period = Time::from_cycles((demand * 10).max(1));
        drafts.push((format!("{shape:?}#{i}"), params, period, i % 2));
    }
    // Deadline-monotonic priorities, as everywhere in the paper.
    drafts.sort_by_key(|(_, _, period, _)| *period);
    let tasks = drafts
        .into_iter()
        .enumerate()
        .map(|(rank, (name, params, period, core))| {
            params
                .to_task(
                    name,
                    period,
                    period,
                    CoreId::new(core),
                    Priority::new(rank as u32),
                )
                .expect("task from extraction")
        })
        .collect();
    TaskSet::new(tasks).expect("task set")
}

#[test]
fn extraction_feeds_analysis() {
    let geometry = CacheGeometry::direct_mapped(256, 32);
    let platform = Platform::builder()
        .cores(2)
        .cache(geometry)
        .memory_latency(Time::from_cycles(5))
        .build()
        .expect("platform");
    for seed in 0..5 {
        let tasks = extracted_task_set(geometry, seed);
        let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
        ] {
            let aware = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
            let oblivious = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
            // Light load: everything should be schedulable, and the aware
            // bounds must dominate.
            assert!(aware.is_schedulable(), "{bus:?} seed {seed}");
            if oblivious.is_schedulable() {
                for i in tasks.ids() {
                    assert!(
                        aware.response_time(i).unwrap() <= oblivious.response_time(i).unwrap(),
                        "{bus:?} seed {seed} task {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn extraction_feeds_simulation() {
    let geometry = CacheGeometry::direct_mapped(256, 32);
    let platform = Platform::builder()
        .cores(2)
        .cache(geometry)
        .memory_latency(Time::from_cycles(5))
        .build()
        .expect("platform");
    let tasks = extracted_task_set(geometry, 7);
    let horizon = tasks
        .iter()
        .map(|t| t.period().cycles())
        .max()
        .unwrap()
        .saturating_mul(3);
    let config = SimConfig::new(BusArbitration::RoundRobin { slots: 2 })
        .with_horizon(Time::from_cycles(horizon));
    let report = Simulator::new(&platform, &tasks, config)
        .expect("simulator")
        .run();
    assert!(report.no_deadline_misses());
    for (i, stats) in report.tasks().iter().enumerate() {
        assert!(stats.completed > 0, "task {i} never completed");
    }
}

#[test]
fn larger_caches_extract_more_persistence() {
    // Fig. 3c's mechanism, via real re-extraction across geometries.
    let generator = ProgramGenerator::new();
    let mut more_persistent = 0usize;
    let mut total = 0usize;
    for seed in 0..8 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for shape in ProgramShape::all() {
            let f = generator.generate(shape, &mut rng).expect("program");
            let small = extract(&f, CacheGeometry::direct_mapped(32, 32));
            let large = extract(&f, CacheGeometry::direct_mapped(512, 32));
            assert!(large.pcb_block_count >= small.pcb_block_count);
            assert!(large.md <= small.md);
            total += 1;
            if large.pcb_block_count > small.pcb_block_count {
                more_persistent += 1;
            }
        }
    }
    // The trend must be real, not vacuous: a sizable share of programs
    // actually gain persistent blocks. (Programs whose footprint already
    // fits the small cache have nothing to gain — those are the majority
    // of loop kernels, so a quarter is the meaningful floor.)
    assert!(
        more_persistent * 4 >= total,
        "only {more_persistent}/{total} programs gained PCBs"
    );
}
