//! End-to-end reproduction of the paper's worked example (Fig. 1).
//!
//! Every number the paper prints in §IV is recomputed through the public
//! API: the CRPD `γ_{2,1,x} = 2`, the CPRO `ρ̂_{1,2,x}(3) = 4`, the
//! persistence-oblivious bounds `BAS_2^x = 32` (Eq. (12)) and
//! `BAO_3^y = 24` (Eq. (13)), and their persistence-aware counterparts
//! `26` (Eq. (15)) and `9`.

mod common;

use cpa::analysis::bao::{bao_aware, bao_oblivious, n_jobs};
use cpa::analysis::bas::{bas_aware, bas_oblivious, releases};
use cpa::analysis::bus::bat;
use cpa::analysis::demand::md_hat;
use cpa::analysis::{AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa::model::{CoreId, Time};

#[test]
fn fig1_worked_example_numbers() {
    let (platform, tasks) = common::fig1_system();
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let t1 = tasks.id_of("tau1").unwrap();
    let t2 = tasks.id_of("tau2").unwrap();
    let t3 = tasks.id_of("tau3").unwrap();

    // A window with 3 releases of τ1, as in the example.
    let window = Time::from_cycles(60);
    assert_eq!(releases(window, tasks[t1].period()), 3);

    // γ_{2,1,x}: UCB_2 ∩ ECB_1 = {5, 6}.
    assert_eq!(ctx.gamma(t2, t1), 2);

    // M̂D_1(3) = min(3·6, 3·1 + 5) = 8 — "6 + 1 + 1 = 8" in the paper.
    assert_eq!(md_hat(&tasks[t1], 3), 8);

    // ρ̂_{1,2,x}(3) = (3−1)·|PCB_1 ∩ ECB_2| = 2·2 = 4.
    assert_eq!(ctx.cpro(t1, t2, 3), 4);

    // Eq. (12): BAS_2^x = 8 + 3·(6+2) = 32.
    assert_eq!(bas_oblivious(&ctx, t2, window), 32);
    // Eq. (15): BÂS_2^x = 8 + min(18, 8+4) + 3·2 = 26.
    assert_eq!(bas_aware(&ctx, t2, window), 26);

    // Eq. (13): BAO_3^y with N = 4 jobs of τ3 ⇒ 4·6 = 24.
    let y = CoreId::new(1);
    let mut resp = vec![Time::ZERO; 3];
    resp[t3.index()] = Time::from_cycles(10);
    assert_eq!(
        n_jobs(window, resp[t3.index()], 6, ctx.d_mem(), tasks[t3].period()),
        4
    );
    assert_eq!(bao_oblivious(&ctx, t3, y, window, &resp), 24);
    // Persistence-aware: MD_3 + 3·MD_3^r = 9.
    assert_eq!(bao_aware(&ctx, t3, y, window, &resp), 9);

    // Eq. (11): RR bus with s = 1 for τ2 (no same-core lp task ⇒ no +1):
    // oblivious 32 + min(24, 32) = 56; aware 26 + min(9, 26) = 35.
    let oblivious = AnalysisConfig::new(
        BusPolicy::RoundRobin { slots: 1 },
        PersistenceMode::Oblivious,
    );
    let aware = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 1 }, PersistenceMode::Aware);
    assert_eq!(bat(&ctx, t2, window, &resp, &oblivious), 56);
    assert_eq!(bat(&ctx, t2, window, &resp, &aware), 35);
}

#[test]
fn fig1_wcrt_is_tighter_with_persistence() {
    let (platform, tasks) = common::fig1_system();
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let t2 = tasks.id_of("tau2").unwrap();
    for bus in [
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 1 },
        BusPolicy::Tdma { slots: 1 },
    ] {
        let aware = cpa::analysis::analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
        let oblivious =
            cpa::analysis::analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
        if let (Some(a), Some(o)) = (aware.response_time(t2), oblivious.response_time(t2)) {
            assert!(a <= o, "{bus:?}: {a} > {o}");
        } else {
            // If the oblivious analysis cannot bound τ2 the aware one may
            // still succeed — but never the other way round.
            assert!(
                aware.response_time(t2).is_some() || oblivious.response_time(t2).is_none(),
                "{bus:?}: aware lost a bound the oblivious analysis had"
            );
        }
    }
}
