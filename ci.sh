#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and a validation smoke
# campaign. Any failure (including an oracle violation in the campaign)
# fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cpa-validate smoke campaign (100 sets, quick profile)"
cargo run --release -p cpa-validate -- run --sets 100 --quick --no-progress

echo "==> ci.sh: all green"
