#!/usr/bin/env bash
# CI gate: formatting, lints, the full test suite, and a validation smoke
# campaign. Any failure (including an oracle violation in the campaign)
# fails the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -p cpa-analysis --all-targets -- -D warnings (engine gate)"
cargo clippy -p cpa-analysis --all-targets -- -D warnings

echo "==> cargo clippy -p cpa-sim --all-targets -- -D warnings (sim fast-path gate)"
cargo clippy -p cpa-sim --all-targets -- -D warnings

echo "==> cargo clippy -p cpa-pool --all-targets -- -D warnings (worker pool gate)"
cargo clippy -p cpa-pool --all-targets -- -D warnings

echo "==> cargo clippy -p cpa-optimize --all-targets -- -D warnings (optimizer gate)"
cargo clippy -p cpa-optimize --all-targets -- -D warnings

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> engine_equivalence smoke (engine vs reference, all policy x mode combos)"
cargo test -q -p cpa-analysis --release --test engine_equivalence

echo "==> warm-vs-cold + partial-vs-cold equivalence smoke (cross-check mode)"
CPA_WARM_CROSS_CHECK=1 cargo test -q -p cpa-analysis --release \
  --test warm_equivalence --test partial_equivalence

echo "==> skip_equivalence smoke (event-skipping sim vs cycle-stepped reference)"
cargo test -q -p cpa-sim --release --test skip_equivalence

echo "==> cpa-validate smoke campaign (100 sets, quick profile)"
cargo run --release -p cpa-validate -- run --sets 100 --quick --no-progress \
  --metrics validate-metrics.json

echo "==> cpa-trace smoke (analyze + sim + sweep + optimize)"
cargo run --release -p cpa-validate --bin cpa-trace -- analyze --seed 7 --json > /dev/null
cargo run --release -p cpa-validate --bin cpa-trace -- sim --seed 7 --horizon 200000 > /dev/null
cargo run --release -p cpa-validate --bin cpa-trace -- sweep --seed 7 --sets 16 --json > /dev/null
cargo run --release -p cpa-validate --bin cpa-trace -- optimize --seed 7 --sets 3 \
  --tasks-per-core 3 --util 0.5 --json > /dev/null

echo "==> optimizer determinism smoke (exhaustive-vs-local agreement, thread invariance)"
cargo test -q -p cpa-optimize --release --test optimizer_determinism

echo "==> cpa-optimize service smoke (1-vs-4 threads byte-compared, then 100% cache hits)"
rm -rf ci-opt && mkdir ci-opt
cargo run --release -p cpa-optimize -- gen --sets 3 --seed 42 --cores 2 \
  --tasks-per-core 3 --cache-sets 32 --util 0.5 --toy --out ci-opt/batch.json
cargo run --release -p cpa-optimize -- run --requests ci-opt/batch.json --threads 1 \
  --cache ci-opt/cache1 --out ci-opt/t1.json --stats ci-opt/cold.json 2> /dev/null
cargo run --release -p cpa-optimize -- run --requests ci-opt/batch.json --threads 4 \
  --cache ci-opt/cache4 --out ci-opt/t4.json 2> /dev/null
diff ci-opt/t1.json ci-opt/t4.json
cargo run --release -p cpa-optimize -- run --requests ci-opt/batch.json --threads 4 \
  --cache ci-opt/cache1 --out ci-opt/warm.json --stats ci-opt/warm-stats.json 2> /dev/null
diff ci-opt/t1.json ci-opt/warm.json
grep -q '"cache_hits":3' ci-opt/warm-stats.json
grep -q '"cache_misses":0' ci-opt/warm-stats.json
grep -q '"strictly_improved":[1-9]' ci-opt/cold.json
rm -rf ci-opt

echo "==> 1-vs-N worker determinism smoke (run_experiments fig2, byte-compared CSVs)"
rm -rf ci-threads-1 ci-threads-4
cargo run --release -p cpa-experiments --bin run_experiments -- \
  --quick --threads 1 --out ci-threads-1 fig2 > /dev/null
cargo run --release -p cpa-experiments --bin run_experiments -- \
  --quick --threads 4 --out ci-threads-4 fig2 > /dev/null
diff -r ci-threads-1 ci-threads-4
rm -rf ci-threads-1 ci-threads-4

echo "==> obs overhead guard (<2% on analysis_micro, emits BENCH_obs.json)"
cargo run --release -p cpa-experiments --bin obs_overhead

echo "==> analysis engine bench (>=2x on fig2 FP sweep, emits BENCH_analysis.json)"
cargo bench -p cpa-bench --bench analysis_engine

echo "==> sim engine bench (>=5x on campaign mix, emits BENCH_sim.json)"
cargo bench -p cpa-bench --bench sim_engine

echo "==> sweep e2e bench (>=1.8x on fig2 FP panel, emits BENCH_e2e.json + history record)"
cargo bench -p cpa-bench --bench sweep_e2e

echo "==> optimizer bench (weak dominance + strict improvement, emits BENCH_optimize.json)"
cargo bench -p cpa-bench --bench optimize

echo "==> telemetry export smoke (chrome + openmetrics, 1-vs-4 threads byte-compared)"
rm -rf ci-telemetry && mkdir ci-telemetry
cargo run --release -p cpa-validate --bin cpa-trace -- sweep --seed 7 --sets 8 \
  --threads 1 --export chrome > ci-telemetry/chrome-t1.json
cargo run --release -p cpa-validate --bin cpa-trace -- sweep --seed 7 --sets 8 \
  --threads 4 --export chrome > ci-telemetry/chrome-t4.json
diff ci-telemetry/chrome-t1.json ci-telemetry/chrome-t4.json
grep -q '"traceEvents"' ci-telemetry/chrome-t1.json
cargo run --release -p cpa-validate --bin cpa-trace -- sweep --seed 7 --sets 8 \
  --threads 1 --export openmetrics > ci-telemetry/om-t1.txt
cargo run --release -p cpa-validate --bin cpa-trace -- sweep --seed 7 --sets 8 \
  --threads 4 --export openmetrics > ci-telemetry/om-t4.txt
diff ci-telemetry/om-t1.txt ci-telemetry/om-t4.txt
grep -q '^# EOF$' ci-telemetry/om-t1.txt
grep -q '^engine_tasks_solved_total ' ci-telemetry/om-t1.txt

echo "==> bench trajectory gate (real suite vs checked-in baseline, exit 0 expected)"
cargo run --release -p cpa-validate --bin cpa-trace -- bench diff \
  --baseline results/bench_baseline.jsonl \
  --current BENCH_obs.json --current BENCH_analysis.json --current BENCH_sim.json \
  --current BENCH_e2e.json --current BENCH_optimize.json

echo "==> speedup floors (declarative --min-speedup from the appended history)"
cargo run --release -p cpa-validate --bin cpa-trace -- bench diff \
  --baseline results/bench_baseline.jsonl --current results/bench_history.jsonl \
  --min-speedup fig2_fp_panel_speedup=1.8 \
  --min-speedup optimize_speedup=2.5 > /dev/null

echo "==> bench trajectory gate negative test (injected regression must exit 1)"
cat > ci-telemetry/regressed.jsonl << 'JSON'
{"schema":1,"bench":"analysis_engine","workload":"fig2_sweep","git_rev":"injected","date":"2026-01-01","config":{},"metrics":{},"throughput":{"fp_speedup":1.0},"gates":[]}
JSON
set +e
cargo run --release -p cpa-validate --bin cpa-trace -- bench diff \
  --baseline ci-telemetry/regressed.jsonl --current BENCH_analysis.json > /dev/null
improved_rc=$?
cargo run --release -p cpa-validate --bin cpa-trace -- bench diff \
  --baseline results/bench_baseline.jsonl --current ci-telemetry/regressed.jsonl \
  > ci-telemetry/regressed-diff.txt
regressed_rc=$?
set -e
[ "$improved_rc" -eq 0 ] || { echo "improvement should pass, got exit $improved_rc"; exit 1; }
[ "$regressed_rc" -eq 1 ] || { echo "injected regression should exit 1, got $regressed_rc"; exit 1; }
grep -q 'REGRESSED' ci-telemetry/regressed-diff.txt
rm -rf ci-telemetry

echo "==> ci.sh: all green"
