//! Re-draws the paper's Fig. 1 *schedule* by executing the three-task
//! system in the discrete-event simulator and rendering a Gantt diagram:
//! τ1 and τ2 share core π1, τ3 runs alone on π2, all contending on a
//! round-robin bus. Watch the first job of τ1 issue all six loads and the
//! later ones only the residual one — cache persistence in action.
//!
//! ```text
//! cargo run --release --example fig1_schedule
//! ```

use cpa::model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskId, TaskSet, Time};
use cpa::sim::trace::render_gantt;
use cpa::sim::{BusArbitration, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(1))
        .build()?;
    let tau1 = Task::builder("tau1")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(20))
        .deadline(Time::from_cycles(20))
        .core(CoreId::new(0))
        .priority(Priority::new(1))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
        .ucb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
        .build()?;
    let tau2 = Task::builder("tau2")
        .processing_demand(Time::from_cycles(32))
        .memory_demand(8)
        .period(Time::from_cycles(70))
        .deadline(Time::from_cycles(70))
        .core(CoreId::new(0))
        .priority(Priority::new(2))
        .ecb(CacheBlockSet::from_blocks(256, 1..=6)?)
        .ucb(CacheBlockSet::from_blocks(256, [5, 6])?)
        .build()?;
    let tau3 = Task::builder("tau3")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(16))
        .deadline(Time::from_cycles(16))
        .core(CoreId::new(1))
        .priority(Priority::new(3))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
        .build()?;
    let tasks = TaskSet::new(vec![tau1, tau2, tau3])?;

    let horizon = 70u64;
    let config = SimConfig::new(BusArbitration::RoundRobin { slots: 1 })
        .with_horizon(Time::from_cycles(horizon))
        .with_trace();
    let report = Simulator::new(&platform, &tasks, config)?.run();

    println!("Fig. 1 — τ1, τ2 on core π1; τ3 on core π2; RR bus (s = 1), d_mem = 1\n");
    println!("digits = task computing, ▒ = stalled on the bus, . = idle\n");
    let trace = report.trace().expect("trace was recorded");
    print!("{}", render_gantt(trace, &tasks, horizon, horizon as usize));

    println!("\nper-task bus traffic over {horizon} cycles:");
    for i in tasks.ids() {
        let s = report.task(i);
        println!(
            "  {:<5} jobs={} accesses={} (PCB loads {}, CRPD reloads {}) max response {}",
            tasks[i].name(),
            s.completed,
            s.bus_accesses,
            s.pcb_loads,
            s.crpd_reloads,
            s.max_response
        );
    }
    let t1 = TaskId::new(0);
    let s1 = report.task(t1);
    println!(
        "\nτ1 issued {} accesses across {} jobs instead of {}·MD = {}: the first job\n\
         loaded all persistent blocks, later jobs only their residual access plus\n\
         the PCBs τ2's overlapping ECBs {{5,6}} evicted in between — the CPRO of\n\
         Eq. (14), visible here as {} PCB (re)loads.",
        s1.bus_accesses,
        s1.completed,
        s1.completed,
        s1.completed * 6,
        s1.pcb_loads
    );
    Ok(())
}
