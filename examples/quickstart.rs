//! Quickstart: build a small multicore system and compare the
//! persistence-aware WCRT analysis against the oblivious baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cpa::analysis::{
    analyze, explain, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode,
};
use cpa::model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-core platform: 256-set direct-mapped I-caches, d_mem = 5.
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(5))
        .build()?;

    // Four tasks, two per core. Each task is characterised by its
    // cache-hit execution time PD, its worst-case memory demand MD, the
    // residual demand MD^r once its persistent blocks are cached, and its
    // cache footprint (ECB ⊇ PCB, UCB).
    let mk = |name: &str,
              prio: u32,
              core: usize,
              pd: u64,
              md: u64,
              md_r: u64,
              period: u64,
              start: usize,
              ecb: usize,
              pcb: usize|
     -> Result<Task, cpa::model::ModelError> {
        let ecb_set = CacheBlockSet::contiguous(256, start, ecb);
        let pcb_set = CacheBlockSet::contiguous(256, start, pcb);
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ucb(pcb_set.clone())
            .ecb(ecb_set)
            .pcb(pcb_set)
            .build()
    };
    let tasks = TaskSet::new(vec![
        mk("sensor", 1, 0, 400, 120, 20, 8_000, 0, 40, 30)?,
        mk("filter", 2, 1, 900, 300, 40, 12_000, 60, 64, 50)?,
        mk("control", 3, 0, 1_500, 500, 90, 24_000, 20, 80, 56)?,
        mk("logger", 4, 1, 2_000, 700, 150, 40_000, 100, 96, 60)?,
    ])?;

    let ctx = AnalysisContext::new(&platform, &tasks)?;
    println!("{platform}");
    println!("{tasks}");

    for bus in [
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 2 },
        BusPolicy::Tdma { slots: 2 },
    ] {
        let aware = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
        let oblivious = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
        println!("== {bus} bus ==");
        println!(
            "  schedulable: aware = {}, oblivious = {}",
            aware.is_schedulable(),
            oblivious.is_schedulable()
        );
        for i in tasks.ids() {
            let a = aware
                .response_time(i)
                .map_or("—".to_string(), |r| r.to_string());
            let o = oblivious
                .response_time(i)
                .map_or("—".to_string(), |r| r.to_string());
            println!(
                "  {:<8} D={:<9} WCRT aware {:<9} oblivious {}",
                tasks[i].name(),
                tasks[i].deadline().to_string(),
                a,
                o
            );
        }

        // Where does the lowest-priority task's bound come from?
        if aware.is_schedulable() {
            let resp: Vec<Time> = aware
                .response_times()
                .iter()
                .map(|r| r.expect("schedulable"))
                .collect();
            let lowest = tasks.lowest_priority_id();
            let cfg = AnalysisConfig::new(bus, PersistenceMode::Aware);
            let b = explain(&ctx, &cfg, lowest, resp[lowest.index()], &resp);
            println!(
                "  {} breakdown: PD {} + preemption {} + own-core bus {} + cross-core bus {}",
                tasks[lowest].name(),
                b.processing,
                b.core_interference,
                b.own_core_bus,
                b.cross_core_bus
            );
        }
    }
    Ok(())
}
