//! The Heptane-substitute pipeline on display: generate synthetic
//! Mälardalen-like programs, statically extract their cache parameters at
//! several cache geometries, and show how persistence grows with cache
//! size (the mechanism behind the paper's Fig. 3c).
//!
//! ```text
//! cargo run --release --example extraction_pipeline [--seed S]
//! ```

use cpa::cache::classify::classify;
use cpa::cache::extract::extract;
use cpa::cfg::{ProgramGenerator, ProgramShape};
use cpa::model::CacheGeometry;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let generator = ProgramGenerator::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    for shape in ProgramShape::all() {
        let function = generator.generate(shape, &mut rng)?;
        println!(
            "{shape:?}: {} ({} dynamic instructions worst-case)",
            function,
            function.worst_case_instruction_count()
        );
        println!(
            "  {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}   {:>9} {:>9} {:>9}",
            "sets", "PD", "MD", "MD^r", "|ECB|", "|PCB|", "|UCB|", "alw-hit", "alw-miss", "unclass"
        );
        for sets in [32usize, 64, 128, 256, 512] {
            let geometry = CacheGeometry::direct_mapped(sets, 32);
            let p = extract(&function, geometry);
            let census = classify(&function, geometry);
            println!(
                "  {:>6} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6}   {:>9} {:>9} {:>9}",
                sets,
                p.pd,
                p.md,
                p.md_r,
                p.ecb.len(),
                p.pcb.len(),
                p.ucb.len(),
                census.always_hit,
                census.always_miss,
                census.unclassified,
            );
        }
        println!();
    }
    println!("Larger caches ⇒ fewer intra-task conflicts ⇒ more persistent");
    println!("blocks and a smaller residual demand MD^r — which is exactly");
    println!("what widens the persistence-aware schedulability advantage in");
    println!("the paper's Fig. 3c.");
    Ok(())
}
