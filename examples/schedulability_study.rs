//! A miniature version of the paper's Fig. 2 experiment with an ASCII
//! rendering: schedulable task sets vs per-core utilization for the FP,
//! RR and TDMA buses, with and without cache persistence.
//!
//! ```text
//! cargo run --release --example schedulability_study [--sets N]
//! ```

use cpa::experiments::{fig2, report, SweepOptions};

fn main() {
    let sets: usize = std::env::args()
        .skip_while(|a| a != "--sets")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);

    let opts = SweepOptions::quick().with_sets_per_point(sets);
    eprintln!("running Fig. 2 sweep with {sets} task sets per utilization point ...");
    for result in fig2::fig2(&opts) {
        println!("{}", report::to_markdown(&result));
        render_ascii(&result);
        println!();
    }
}

/// Tiny ASCII plot: one row per series, one column per utilization point,
/// glyph by schedulable share.
fn render_ascii(result: &cpa::experiments::ExperimentResult) {
    const GLYPHS: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    println!("  share of schedulable sets per utilization step (@=all, ' '=none):");
    for series in &result.series {
        let cells: String = series
            .points
            .iter()
            .map(|p| {
                if p.total == 0 {
                    '?'
                } else {
                    let share = p.schedulable as f64 / p.total as f64;
                    GLYPHS[(share * (GLYPHS.len() - 1) as f64).round() as usize]
                }
            })
            .collect();
        println!("  {:<28} |{cells}|", series.label);
    }
}
