//! Reproduces the paper's Fig. 1 walkthrough (§IV), printing each number
//! next to the equation it comes from.
//!
//! ```text
//! cargo run --release --example fig1_worked_example
//! ```

use cpa::analysis::bao::{bao_aware, bao_oblivious};
use cpa::analysis::bas::{bas_aware, bas_oblivious};
use cpa::analysis::bus::bat;
use cpa::analysis::demand::md_hat;
use cpa::analysis::{AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa::model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(1))
        .build()?;
    // Fig. 1 caption: PD1 = PD3 = 4, PD2 = 32, MD1 = MD3 = 6, MD2 = 8,
    // MD1^r = MD3^r = 1, ECB1 = ECB3 = {5..10}, ECB2 = {1..6},
    // PCB1 = PCB3 = {5,6,7,8,10}, UCB2 = {5,6}.
    let tau1 = Task::builder("tau1")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(20))
        .deadline(Time::from_cycles(20))
        .core(CoreId::new(0))
        .priority(Priority::new(1))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
        .build()?;
    let tau2 = Task::builder("tau2")
        .processing_demand(Time::from_cycles(32))
        .memory_demand(8)
        .period(Time::from_cycles(200))
        .deadline(Time::from_cycles(200))
        .core(CoreId::new(0))
        .priority(Priority::new(2))
        .ecb(CacheBlockSet::from_blocks(256, 1..=6)?)
        .ucb(CacheBlockSet::from_blocks(256, [5, 6])?)
        .build()?;
    let tau3 = Task::builder("tau3")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(16))
        .deadline(Time::from_cycles(16))
        .core(CoreId::new(1))
        .priority(Priority::new(3))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
        .build()?;
    let tasks = TaskSet::new(vec![tau1, tau2, tau3])?;
    let ctx = AnalysisContext::new(&platform, &tasks)?;

    let t1 = tasks.id_of("tau1").unwrap();
    let t2 = tasks.id_of("tau2").unwrap();
    let t3 = tasks.id_of("tau3").unwrap();

    println!("Fig. 1 — execution of τ1, τ2 on core π_x and τ3 on core π_y");
    println!("(window of length 60 ⇒ 3 jobs of τ1, 4 full jobs of τ3)\n");

    // The window the example reasons over.
    let window = Time::from_cycles(60);
    let mut resp = vec![Time::ZERO; 3];
    resp[t3.index()] = Time::from_cycles(10);

    println!(
        "Eq. (2)   γ_2,1,x  = |UCB_2 ∩ ECB_1|           = {}",
        ctx.gamma(t2, t1)
    );
    println!(
        "Eq. (10)  M̂D_1(3) = min(3·6, 3·1 + |PCB_1|)   = {}",
        md_hat(&tasks[t1], 3)
    );
    println!(
        "Eq. (14)  ρ̂_1,2,x(3) = 2·|PCB_1 ∩ ECB_2|      = {}",
        ctx.cpro(t1, t2, 3)
    );
    println!();
    println!(
        "Eq. (12)  BAS_2^x  (oblivious)                 = {}",
        bas_oblivious(&ctx, t2, window)
    );
    println!(
        "Eq. (15)  BÂS_2^x  (persistence-aware)         = {}",
        bas_aware(&ctx, t2, window)
    );
    println!(
        "Eq. (13)  BAO_3^y  (oblivious)                 = {}",
        bao_oblivious(&ctx, t3, CoreId::new(1), window, &resp)
    );
    println!(
        "          BÂO_3^y  (persistence-aware)         = {}",
        bao_aware(&ctx, t3, CoreId::new(1), window, &resp)
    );
    println!();

    let oblivious = AnalysisConfig::new(
        BusPolicy::RoundRobin { slots: 1 },
        PersistenceMode::Oblivious,
    );
    let aware = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 1 }, PersistenceMode::Aware);
    println!(
        "Eq. (11)  BAT_2^x RR(s=1) oblivious            = {}",
        bat(&ctx, t2, window, &resp, &oblivious)
    );
    println!(
        "          BAT_2^x RR(s=1) persistence-aware    = {}",
        bat(&ctx, t2, window, &resp, &aware)
    );
    println!();
    println!(
        "The persistence-aware analysis accounts for {} fewer bus",
        bat(&ctx, t2, window, &resp, &oblivious) - bat(&ctx, t2, window, &resp, &aware)
    );
    println!("accesses in τ2's response window — the paper's Fig. 1 gap.");

    // And the full WCRT (Eq. (19)) under both modes.
    println!("\nEq. (19) worst-case response times (RR, s = 1):");
    for (label, cfg) in [("oblivious", oblivious), ("aware", aware)] {
        let result = cpa::analysis::analyze(&ctx, &cfg);
        print!("  {label:<10}");
        for i in tasks.ids() {
            match result.response_time(i) {
                Some(r) => print!(" {}={}", tasks[i].name(), r),
                None => print!(" {}=unbounded", tasks[i].name()),
            }
        }
        println!();
    }
    Ok(())
}
