//! Validates analytic WCRT bounds against the discrete-event simulator on
//! one randomly generated task set, printing bound vs observed per task.
//!
//! ```text
//! cargo run --release --example sim_vs_analysis [--seed S]
//! ```

use cpa::analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa::experiments::runner::platform_for;
use cpa::model::Time;
use cpa::sim::{BusArbitration, SimConfig, Simulator};
use cpa::workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);

    let gen_cfg = GeneratorConfig {
        cores: 2,
        tasks_per_core: 4,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.25);
    let generator = TaskSetGenerator::new(gen_cfg.clone())?;
    let platform = platform_for(&gen_cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = generator.generate(&mut rng)?;
    let ctx = AnalysisContext::new(&platform, &tasks)?;

    println!("{platform}");
    println!(
        "seed {seed}: {} tasks, total utilization {:.3}\n",
        tasks.len(),
        tasks.total_utilization(platform.memory_latency())
    );

    for (bus, arbitration) in [
        (BusPolicy::FixedPriority, BusArbitration::FixedPriority),
        (
            BusPolicy::RoundRobin { slots: 2 },
            BusArbitration::RoundRobin { slots: 2 },
        ),
        (
            BusPolicy::Tdma { slots: 2 },
            BusArbitration::Tdma { slots: 2 },
        ),
    ] {
        let result = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
        println!("== {bus} ==");
        if !result.is_schedulable() {
            println!("  analysis: unschedulable — skipping simulation\n");
            continue;
        }
        let horizon = tasks
            .iter()
            .map(|t| t.period().cycles())
            .max()
            .unwrap_or(1)
            .saturating_mul(4)
            .min(5_000_000);
        let report = Simulator::new(
            &platform,
            &tasks,
            SimConfig::new(arbitration).with_horizon(Time::from_cycles(horizon)),
        )?
        .run();
        println!(
            "  simulated {horizon} cycles, bus utilization {:.3}, {} transactions",
            report.bus_utilization(),
            report.bus_transactions
        );
        println!(
            "  {:<16} {:>12} {:>12} {:>8}",
            "task", "WCRT bound", "observed", "slack"
        );
        for i in tasks.ids() {
            let bound = result.response_time(i).expect("schedulable");
            let observed = report.task(i).max_response;
            assert!(observed <= bound, "soundness violation!");
            let slack = 100.0 * (1.0 - observed.cycles() as f64 / bound.cycles() as f64);
            println!(
                "  {:<16} {:>12} {:>12} {:>7.1}%",
                tasks[i].name(),
                bound.to_string(),
                observed.to_string(),
                slack
            );
        }
        println!();
    }
    Ok(())
}
