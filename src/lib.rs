//! `cpa` — Cache Persistence-Aware memory bus contention analysis.
//!
//! Facade crate re-exporting the whole workspace behind short module paths.
//! Reproduces *Cache Persistence-Aware Memory Bus Contention Analysis for
//! Multicore Systems* (Rashid, Nelissen, Tovar — DATE 2020).
//!
//! * [`model`] — tasks, cache block sets, platforms ([`cpa_model`]).
//! * [`analysis`] — CRPD/CPRO, Lemmas 1–2, bus bounds, WCRT
//!   ([`cpa_analysis`]).
//! * [`mod@cfg`] — synthetic program substrate ([`cpa_cfg`]).
//! * [`obs`] — structured tracing, metrics, self-profiling ([`cpa_obs`]).
//! * [`cache`] — cache models and static cache analysis ([`cpa_cache`]).
//! * [`sim`] — discrete-event multicore simulator ([`cpa_sim`]).
//! * [`workload`] — UUnifast + Mälardalen task-set generation
//!   ([`cpa_workload`]).
//! * [`experiments`] — regeneration harness for every table and figure
//!   ([`cpa_experiments`]).
//! * [`optimize`] — design-space optimization service with a
//!   content-addressed result cache ([`cpa_optimize`]).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! paper-versus-measured record.
//!
//! # Example
//!
//! ```
//! use cpa::analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
//! use cpa::workload::{GeneratorConfig, TaskSetGenerator};
//! use cpa::experiments::runner::platform_for;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A paper-style task set at 30% per-core utilization ...
//! let config = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
//! let tasks = TaskSetGenerator::new(config.clone())?
//!     .generate(&mut rand_chacha::ChaCha8Rng::seed_from_u64(7))?;
//! let platform = platform_for(&config);
//!
//! // ... is schedulable on a round-robin bus once cache persistence is
//! // taken into account, and not otherwise.
//! let ctx = AnalysisContext::new(&platform, &tasks)?;
//! let bus = BusPolicy::RoundRobin { slots: 2 };
//! assert!(analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware)).is_schedulable());
//! assert!(!analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious)).is_schedulable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use cpa_analysis as analysis;
pub use cpa_cache as cache;
pub use cpa_cfg as cfg;
pub use cpa_experiments as experiments;
pub use cpa_model as model;
pub use cpa_obs as obs;
pub use cpa_optimize as optimize;
pub use cpa_sim as sim;
pub use cpa_telemetry as telemetry;
pub use cpa_workload as workload;
