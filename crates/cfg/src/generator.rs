//! Seeded generator of Mälardalen-like synthetic programs.
//!
//! The Mälardalen suite spans a few recognisable shapes; each
//! [`ProgramShape`] mirrors one of them so the extraction pipeline
//! (`cpa-cache`) sees the same diversity of cache behaviours the paper's
//! benchmark pool provides:
//!
//! * [`ProgramShape::LoopKernel`] — one hot loop over a small body
//!   (`bsort100`, `matmult`, `fir`): tiny footprint, everything persists;
//! * [`ProgramShape::NestedLoops`] — 2–3 level numeric loop nests with
//!   branches (`ludcmp`, `fdct`, `jfdctint`): medium footprint, partial
//!   persistence;
//! * [`ProgramShape::Branchy`] — long chains of conditionals inside a
//!   modest loop (`expint`, `lcdnum`): path-dependent reuse;
//! * [`ProgramShape::StateMachine`] — very large branchy code executed few
//!   times (`nsichneu`, `statemate`): cache-filling footprint, little or
//!   no persistence.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{CfgError, Function, Stmt};

/// The structural family of a generated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramShape {
    /// One dominant loop over a small straight-line kernel.
    LoopKernel,
    /// Nested counted loops with occasional branches.
    NestedLoops,
    /// A loop over a chain of two-way branches.
    Branchy,
    /// A huge flat branch structure executed a handful of times.
    StateMachine,
}

impl ProgramShape {
    /// All shapes, for round-robin generation.
    #[must_use]
    pub fn all() -> [ProgramShape; 4] {
        [
            ProgramShape::LoopKernel,
            ProgramShape::NestedLoops,
            ProgramShape::Branchy,
            ProgramShape::StateMachine,
        ]
    }
}

/// Seeded generator of synthetic benchmark programs.
///
/// ```
/// use cpa_cfg::{ProgramGenerator, ProgramShape};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let gen = ProgramGenerator::new();
/// let f = gen.generate(ProgramShape::NestedLoops, &mut rng)?;
/// assert!(f.blocks().len() > 3);
/// assert!(f.worst_case_instruction_count() > 0);
/// # Ok::<(), cpa_cfg::CfgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramGenerator {
    _private: (),
}

impl ProgramGenerator {
    /// Creates a generator with default size ranges.
    #[must_use]
    pub fn new() -> Self {
        ProgramGenerator { _private: () }
    }

    /// Generates one program of the given shape.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in shapes; the `Result` protects against
    /// future shape configurations that could produce invalid structures.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        shape: ProgramShape,
        rng: &mut R,
    ) -> Result<Function, CfgError> {
        let _span = cpa_obs::span!("cfg.generate");
        cpa_obs::event!("cfg.generate", shape = format!("{shape:?}"));
        match shape {
            ProgramShape::LoopKernel => self.loop_kernel(rng),
            ProgramShape::NestedLoops => self.nested_loops(rng),
            ProgramShape::Branchy => self.branchy(rng),
            ProgramShape::StateMachine => self.state_machine(rng),
        }
    }

    fn loop_kernel<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Function, CfgError> {
        let mut b = Function::builder("loop_kernel");
        b = b.block("init", rng.gen_range(4..16));
        let kernel_blocks = rng.gen_range(1..4usize);
        let mut body = Vec::new();
        for i in 0..kernel_blocks {
            let name = format!("kernel{i}");
            b = b.block(&name, rng.gen_range(8..40));
            body.push(Stmt::block(name));
        }
        b = b.block("exit", rng.gen_range(2..8));
        let bound = rng.gen_range(20..200);
        b.code(Stmt::seq([
            Stmt::block("init"),
            Stmt::counted_loop(bound, Stmt::seq(body)),
            Stmt::block("exit"),
        ]))
        .build()
    }

    fn nested_loops<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Function, CfgError> {
        // Declarations are collected first, then added to the builder in
        // one pass, so statements can reference blocks freely.
        let mut decls: Vec<(String, u32)> = vec![("init".into(), rng.gen_range(4..16))];
        let fresh = |decls: &mut Vec<(String, u32)>, instructions: u32| {
            let name = format!("b{}", decls.len());
            decls.push((name.clone(), instructions));
            Stmt::block(name)
        };
        let depth = rng.gen_range(2..4usize);
        let mut inner = Stmt::seq([
            fresh(&mut decls, rng.gen_range(6..30)),
            Stmt::branch(
                fresh(&mut decls, rng.gen_range(4..20)),
                Some(fresh(&mut decls, rng.gen_range(4..20))),
            ),
        ]);
        for _ in 0..depth {
            let header = fresh(&mut decls, rng.gen_range(2..10));
            let bound = rng.gen_range(4..24);
            inner = Stmt::counted_loop(bound, Stmt::seq([header, inner]));
        }
        decls.push(("exit".into(), 4));

        let mut builder = Function::builder("nested_loops");
        for (name, instructions) in decls {
            builder = builder.block(name, instructions);
        }
        builder
            .code(Stmt::seq([Stmt::block("init"), inner, Stmt::block("exit")]))
            .build()
    }

    fn branchy<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Function, CfgError> {
        let mut b = Function::builder("branchy");
        b = b.block("init", rng.gen_range(2..10));
        let arms = rng.gen_range(3..10usize);
        let mut chain = Vec::new();
        for i in 0..arms {
            let t = format!("then{i}");
            let e = format!("else{i}");
            b = b
                .block(&t, rng.gen_range(4..24))
                .block(&e, rng.gen_range(4..24));
            chain.push(Stmt::branch(Stmt::block(t), Some(Stmt::block(e))));
        }
        b = b.block("exit", rng.gen_range(2..8));
        let bound = rng.gen_range(5..60);
        b.code(Stmt::seq([
            Stmt::block("init"),
            Stmt::counted_loop(bound, Stmt::seq(chain)),
            Stmt::block("exit"),
        ]))
        .build()
    }

    fn state_machine<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Function, CfgError> {
        let mut b = Function::builder("state_machine");
        b = b.block("dispatch", rng.gen_range(4..12));
        let states = rng.gen_range(12..40usize);
        let mut arms: Vec<Stmt> = Vec::new();
        for i in 0..states {
            let name = format!("state{i}");
            b = b.block(&name, rng.gen_range(16..64));
            arms.push(Stmt::block(name));
        }
        // Fold the states into a binary decision tree of unknown branches.
        while arms.len() > 1 {
            let mut next = Vec::with_capacity(arms.len().div_ceil(2));
            let mut iter = arms.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(bm) => next.push(Stmt::branch(a, Some(bm))),
                    None => next.push(a),
                }
            }
            arms = next;
        }
        let tree = arms.pop().expect("at least one state");
        let steps = rng.gen_range(2..8);
        b.code(Stmt::counted_loop(
            steps,
            Stmt::seq([Stmt::block("dispatch"), tree]),
        ))
        .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_shapes_generate_valid_programs() {
        let gen = ProgramGenerator::new();
        for shape in ProgramShape::all() {
            for seed in 0..10 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let f = gen.generate(shape, &mut rng).unwrap();
                assert!(f.blocks().len() >= 2, "{shape:?}");
                assert!(f.worst_case_instruction_count() > 0, "{shape:?}");
                assert!(f.code_size_instructions() > 0, "{shape:?}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = ProgramGenerator::new();
        for shape in ProgramShape::all() {
            let a = gen
                .generate(shape, &mut ChaCha8Rng::seed_from_u64(3))
                .unwrap();
            let b = gen
                .generate(shape, &mut ChaCha8Rng::seed_from_u64(3))
                .unwrap();
            assert_eq!(a, b, "{shape:?}");
        }
    }

    #[test]
    fn shapes_differ_structurally() {
        let gen = ProgramGenerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let kernel = gen.generate(ProgramShape::LoopKernel, &mut rng).unwrap();
        let sm = gen.generate(ProgramShape::StateMachine, &mut rng).unwrap();
        // State machines are code-heavy but execute few instructions per
        // block relative to their size; loop kernels are the reverse.
        let kernel_ratio =
            kernel.worst_case_instruction_count() as f64 / kernel.code_size_instructions() as f64;
        let sm_ratio =
            sm.worst_case_instruction_count() as f64 / sm.code_size_instructions() as f64;
        assert!(kernel_ratio > sm_ratio);
    }

    #[test]
    fn state_machine_traces_stay_within_worst_case() {
        let gen = ProgramGenerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let f = gen.generate(ProgramShape::StateMachine, &mut rng).unwrap();
        for seed in 0..8 {
            let t = crate::trace::generate(&f, crate::DecisionPolicy::Random { seed });
            assert!(t.len() as u64 <= f.worst_case_instruction_count());
        }
    }
}
