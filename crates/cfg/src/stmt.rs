//! Structured statements: the control-flow language of synthetic programs.

use serde::{Deserialize, Serialize};

/// A structured control-flow statement over named basic blocks.
///
/// Programs are *structured* (reducible by construction): sequences,
/// two-way branches with statically unknown conditions, and counted loops
/// with known bounds — the fragment a WCET analyzer needs loop bounds for
/// is exactly the fragment Mälardalen programs live in.
///
/// Block names are resolved to [`BlockId`](crate::BlockId)s when the
/// enclosing [`Function`](crate::Function) is built.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// Execute the named basic block.
    Block(String),
    /// Execute statements in order.
    Seq(Vec<Stmt>),
    /// Branch on a statically unknown condition. `None` as else models an
    /// `if` without `else`.
    Branch {
        /// Taken when the (unknown) condition holds.
        then_branch: Box<Stmt>,
        /// Taken otherwise; empty if absent.
        else_branch: Option<Box<Stmt>>,
    },
    /// Execute the body exactly `bound` times (a counted loop with a known
    /// WCET bound).
    Loop {
        /// Maximum (and, for trace purposes, exact) iteration count.
        bound: u32,
        /// Loop body.
        body: Box<Stmt>,
    },
}

impl Stmt {
    /// A single-block statement.
    #[must_use]
    pub fn block(name: impl Into<String>) -> Stmt {
        Stmt::Block(name.into())
    }

    /// A sequence of statements.
    #[must_use]
    pub fn seq(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        Stmt::Seq(stmts.into_iter().collect())
    }

    /// A two-way branch with a statically unknown condition.
    #[must_use]
    pub fn branch(then_branch: Stmt, else_branch: Option<Stmt>) -> Stmt {
        Stmt::Branch {
            then_branch: Box::new(then_branch),
            else_branch: else_branch.map(Box::new),
        }
    }

    /// A counted loop executing `body` exactly `bound` times.
    #[must_use]
    pub fn counted_loop(bound: u32, body: Stmt) -> Stmt {
        Stmt::Loop {
            bound,
            body: Box::new(body),
        }
    }

    /// All block names referenced by this statement, in syntactic order
    /// (duplicates preserved).
    #[must_use]
    pub fn referenced_blocks(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_blocks(&mut out);
        out
    }

    fn collect_blocks<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Stmt::Block(name) => out.push(name),
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.collect_blocks(out);
                }
            }
            Stmt::Branch {
                then_branch,
                else_branch,
            } => {
                then_branch.collect_blocks(out);
                if let Some(e) = else_branch {
                    e.collect_blocks(out);
                }
            }
            Stmt::Loop { body, .. } => body.collect_blocks(out),
        }
    }

    /// Maximum loop-nesting depth of the statement.
    #[must_use]
    pub fn loop_depth(&self) -> usize {
        match self {
            Stmt::Block(_) => 0,
            Stmt::Seq(stmts) => stmts.iter().map(Stmt::loop_depth).max().unwrap_or(0),
            Stmt::Branch {
                then_branch,
                else_branch,
            } => then_branch
                .loop_depth()
                .max(else_branch.as_ref().map_or(0, |e| e.loop_depth())),
            Stmt::Loop { body, .. } => 1 + body.loop_depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nested() -> Stmt {
        Stmt::seq([
            Stmt::block("init"),
            Stmt::counted_loop(
                10,
                Stmt::seq([
                    Stmt::block("head"),
                    Stmt::branch(Stmt::block("a"), Some(Stmt::block("b"))),
                    Stmt::counted_loop(3, Stmt::block("inner")),
                ]),
            ),
            Stmt::block("exit"),
        ])
    }

    #[test]
    fn referenced_blocks_in_order() {
        assert_eq!(
            nested().referenced_blocks(),
            ["init", "head", "a", "b", "inner", "exit"]
        );
    }

    #[test]
    fn loop_depth() {
        assert_eq!(nested().loop_depth(), 2);
        assert_eq!(Stmt::block("x").loop_depth(), 0);
        assert_eq!(
            Stmt::branch(Stmt::counted_loop(2, Stmt::block("x")), None).loop_depth(),
            1
        );
    }

    #[test]
    fn constructors_shape() {
        let s = Stmt::seq([Stmt::block("x")]);
        assert!(matches!(s, Stmt::Seq(v) if v.len() == 1));
        let b = Stmt::branch(Stmt::block("x"), None);
        assert!(matches!(
            b,
            Stmt::Branch {
                else_branch: None,
                ..
            }
        ));
    }
}
