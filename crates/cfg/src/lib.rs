//! Synthetic program substrate: structured control flow with instruction
//! addresses.
//!
//! The paper extracts its per-task parameters (`PD`, `MD`, `MD^r`, `UCB`,
//! `ECB`, `PCB`) from Mälardalen C benchmarks with the Heptane static WCET
//! analyzer. Neither the benchmarks' binaries nor Heptane are reproducible
//! offline, so this crate provides the missing substrate: a program model
//! rich enough for a real instruction-cache analysis —
//!
//! * [`BasicBlock`]s carrying concrete instruction address ranges;
//! * structured control flow ([`Stmt`]: sequences, branches with unknown
//!   conditions, counted loops) composed into [`Function`]s with a
//!   contiguous code layout;
//! * worst-case and randomised [`trace`] generation (the concrete-execution
//!   oracle used to validate the static analysis in `cpa-cache`);
//! * a seeded [`generator`] producing Mälardalen-like program shapes (tiny
//!   loop kernels, nested numeric loops, branchy state machines).
//!
//! # Example
//!
//! ```
//! use cpa_cfg::{Function, Stmt};
//!
//! // for i in 0..4 { if c { A } else { B } }; C
//! let f = Function::builder("demo")
//!     .block("A", 8)
//!     .block("B", 4)
//!     .block("C", 2)
//!     .code(Stmt::seq([
//!         Stmt::counted_loop(4, Stmt::branch(Stmt::block("A"), Some(Stmt::block("B")))),
//!         Stmt::block("C"),
//!     ]))
//!     .build()?;
//! // The worst-case path takes the larger branch every iteration.
//! assert_eq!(f.worst_case_instruction_count(), 4 * 8 + 2);
//! # Ok::<(), cpa_cfg::CfgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod function;
pub mod generator;
mod stmt;
pub mod trace;

pub use error::CfgError;
pub use function::{BasicBlock, BlockId, Code, Function, FunctionBuilder};
pub use generator::{ProgramGenerator, ProgramShape};
pub use stmt::Stmt;
pub use trace::{DecisionPolicy, Trace};
