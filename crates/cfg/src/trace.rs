//! Concrete execution traces: the oracle for validating static analysis.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::function::Code;
use crate::Function;

/// How statically unknown branch conditions are decided when generating a
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPolicy {
    /// Take whichever side executes more instructions (the canonical
    /// heaviest path — matches
    /// [`Function::worst_case_instruction_count`]).
    HeaviestPath,
    /// Always take the `then` side.
    AlwaysThen,
    /// Always take the `else` side (or skip when absent).
    AlwaysElse,
    /// Decide each branch with a seeded coin flip (reproducible).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// A concrete instruction-address trace of one job execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    addresses: Vec<u64>,
}

impl Trace {
    /// The executed instruction addresses in order.
    #[must_use]
    pub fn addresses(&self) -> &[u64] {
        &self.addresses
    }

    /// Number of executed instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// `true` if nothing was executed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Iterates over the addresses.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.addresses.iter().copied()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.addresses.iter().copied()
    }
}

/// Generates the instruction-address trace of one job of `function` under
/// the given branch-decision policy.
///
/// ```
/// use cpa_cfg::{trace, DecisionPolicy, Function, Stmt};
///
/// let f = Function::builder("f")
///     .block("A", 2)
///     .code(Stmt::counted_loop(3, Stmt::block("A")))
///     .build()?;
/// let t = trace::generate(&f, DecisionPolicy::HeaviestPath);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.addresses()[..2], [0, 4]);
/// # Ok::<(), cpa_cfg::CfgError>(())
/// ```
#[must_use]
pub fn generate(function: &Function, policy: DecisionPolicy) -> Trace {
    let mut rng = match policy {
        DecisionPolicy::Random { seed } => Some(ChaCha8Rng::seed_from_u64(seed)),
        _ => None,
    };
    let mut addresses = Vec::new();
    walk(function, function.code(), policy, &mut rng, &mut addresses);
    Trace { addresses }
}

fn weight(function: &Function, code: &Code) -> u64 {
    match code {
        Code::Block(id) => u64::from(function.block(*id).instructions()),
        Code::Seq(items) => items.iter().map(|c| weight(function, c)).sum(),
        Code::Branch {
            then_branch,
            else_branch,
        } => weight(function, then_branch)
            .max(else_branch.as_ref().map_or(0, |e| weight(function, e))),
        Code::Loop { bound, body } => u64::from(*bound) * weight(function, body),
    }
}

fn walk(
    function: &Function,
    code: &Code,
    policy: DecisionPolicy,
    rng: &mut Option<ChaCha8Rng>,
    out: &mut Vec<u64>,
) {
    match code {
        Code::Block(id) => out.extend(function.block(*id).addresses()),
        Code::Seq(items) => {
            for item in items {
                walk(function, item, policy, rng, out);
            }
        }
        Code::Branch {
            then_branch,
            else_branch,
        } => {
            let take_then = match policy {
                DecisionPolicy::AlwaysThen => true,
                DecisionPolicy::AlwaysElse => false,
                DecisionPolicy::HeaviestPath => {
                    weight(function, then_branch)
                        >= else_branch.as_ref().map_or(0, |e| weight(function, e))
                }
                DecisionPolicy::Random { .. } => rng
                    .as_mut()
                    .expect("random policy carries an rng")
                    .gen::<bool>(),
            };
            if take_then {
                walk(function, then_branch, policy, rng, out);
            } else if let Some(e) = else_branch {
                walk(function, e, policy, rng, out);
            }
        }
        Code::Loop { bound, body } => {
            for _ in 0..*bound {
                walk(function, body, policy, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stmt;

    fn branchy() -> Function {
        Function::builder("f")
            .block("big", 6)
            .block("small", 2)
            .block("tail", 1)
            .code(Stmt::seq([
                Stmt::branch(Stmt::block("big"), Some(Stmt::block("small"))),
                Stmt::block("tail"),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn heaviest_path_matches_worst_case_count() {
        let f = branchy();
        let t = generate(&f, DecisionPolicy::HeaviestPath);
        assert_eq!(t.len() as u64, f.worst_case_instruction_count());
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn then_and_else_policies() {
        let f = branchy();
        assert_eq!(generate(&f, DecisionPolicy::AlwaysThen).len(), 7);
        assert_eq!(generate(&f, DecisionPolicy::AlwaysElse).len(), 3);
        // if-without-else under AlwaysElse executes nothing.
        let g = Function::builder("g")
            .block("A", 5)
            .code(Stmt::branch(Stmt::block("A"), None))
            .build()
            .unwrap();
        assert!(generate(&g, DecisionPolicy::AlwaysElse).is_empty());
    }

    #[test]
    fn random_is_reproducible_and_bounded() {
        let f = branchy();
        let a = generate(&f, DecisionPolicy::Random { seed: 1 });
        let b = generate(&f, DecisionPolicy::Random { seed: 1 });
        assert_eq!(a, b);
        for seed in 0..16 {
            let t = generate(&f, DecisionPolicy::Random { seed });
            assert!(t.len() == 3 || t.len() == 7);
            assert!(t.len() as u64 <= f.worst_case_instruction_count());
        }
    }

    #[test]
    fn loop_repeats_addresses() {
        let f = Function::builder("l")
            .block("A", 2)
            .code(Stmt::counted_loop(3, Stmt::block("A")))
            .build()
            .unwrap();
        let t = generate(&f, DecisionPolicy::HeaviestPath);
        assert_eq!(t.addresses(), &[0, 4, 0, 4, 0, 4]);
        assert_eq!(t.iter().count(), 6);
        assert_eq!((&t).into_iter().count(), 6);
    }
}
