//! Functions: resolved blocks, code layout, structured bodies.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CfgError, Stmt};

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(usize);

impl BlockId {
    /// The dense index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// A straight-line run of instructions at concrete addresses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicBlock {
    name: String,
    start_address: u64,
    instructions: u32,
    instruction_size: u32,
}

impl BasicBlock {
    /// The block's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Address of the first instruction.
    #[must_use]
    pub fn start_address(&self) -> u64 {
        self.start_address
    }

    /// Number of instructions.
    #[must_use]
    pub fn instructions(&self) -> u32 {
        self.instructions
    }

    /// Iterates over the addresses of all instructions in the block.
    pub fn addresses(&self) -> impl DoubleEndedIterator<Item = u64> + ExactSizeIterator + '_ {
        let base = self.start_address;
        let size = u64::from(self.instruction_size);
        (0..self.instructions as usize).map(move |i| base + i as u64 * size)
    }

    /// Address one past the last instruction.
    #[must_use]
    pub fn end_address(&self) -> u64 {
        self.start_address + u64::from(self.instructions) * u64::from(self.instruction_size)
    }
}

/// The resolved form of [`Stmt`], with block names replaced by ids.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Code {
    /// Execute one basic block.
    Block(BlockId),
    /// Execute in order.
    Seq(Vec<Code>),
    /// Statically unknown two-way branch.
    Branch {
        /// Taken when the condition holds.
        then_branch: Box<Code>,
        /// Taken otherwise (empty when absent).
        else_branch: Option<Box<Code>>,
    },
    /// Counted loop with a known bound.
    Loop {
        /// Exact iteration count for the worst case.
        bound: u32,
        /// Loop body.
        body: Box<Code>,
    },
}

/// A synthetic program: named basic blocks laid out contiguously in memory
/// plus a structured body.
///
/// Build with [`Function::builder`]; see the crate docs for an example.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    name: String,
    blocks: Vec<BasicBlock>,
    code: Code,
}

impl Function {
    /// Starts building a function.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            blocks: Vec::new(),
            code: None,
            base_address: 0,
            instruction_size: 4,
        }
    }

    /// The function name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All basic blocks in layout order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by this
    /// function's builder).
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Looks up a block id by name.
    #[must_use]
    pub fn block_id(&self, name: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.name == name).map(BlockId)
    }

    /// The resolved structured body.
    #[must_use]
    pub fn code(&self) -> &Code {
        &self.code
    }

    /// Total instructions across all blocks (static code size).
    #[must_use]
    pub fn code_size_instructions(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.instructions)).sum()
    }

    /// Worst-case dynamically executed instruction count: branches take the
    /// heavier side, loops run to their bound. With a 1-cycle-per-hit
    /// pipeline model this is the task's `PD`.
    #[must_use]
    pub fn worst_case_instruction_count(&self) -> u64 {
        fn walk(f: &Function, code: &Code) -> u64 {
            match code {
                Code::Block(id) => u64::from(f.blocks[id.0].instructions),
                Code::Seq(items) => items.iter().map(|c| walk(f, c)).sum(),
                Code::Branch {
                    then_branch,
                    else_branch,
                } => walk(f, then_branch).max(else_branch.as_ref().map_or(0, |e| walk(f, e))),
                Code::Loop { bound, body } => u64::from(*bound) * walk(f, body),
            }
        }
        walk(self, &self.code)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fn {} ({} blocks, {} instructions)",
            self.name,
            self.blocks.len(),
            self.code_size_instructions()
        )
    }
}

/// Builder for [`Function`] (see [`Function::builder`]).
#[derive(Debug, Clone)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<(String, u32)>,
    code: Option<Stmt>,
    base_address: u64,
    instruction_size: u32,
}

impl FunctionBuilder {
    /// Declares a basic block with `instructions` instructions. Blocks are
    /// laid out contiguously in declaration order.
    #[must_use]
    pub fn block(mut self, name: impl Into<String>, instructions: u32) -> Self {
        self.blocks.push((name.into(), instructions));
        self
    }

    /// Sets the structured body.
    #[must_use]
    pub fn code(mut self, code: Stmt) -> Self {
        self.code = Some(code);
        self
    }

    /// Sets the address of the first instruction (default 0).
    #[must_use]
    pub fn base_address(mut self, address: u64) -> Self {
        self.base_address = address;
        self
    }

    /// Sets the instruction size in bytes (default 4).
    #[must_use]
    pub fn instruction_size(mut self, bytes: u32) -> Self {
        self.instruction_size = bytes.max(1);
        self
    }

    /// Resolves names, lays out the code and validates the program.
    ///
    /// # Errors
    ///
    /// * [`CfgError::MissingBody`] if no body was set;
    /// * [`CfgError::DuplicateBlock`] / [`CfgError::EmptyBlock`] for bad
    ///   block declarations;
    /// * [`CfgError::UnknownBlock`] if the body references an undeclared
    ///   block;
    /// * [`CfgError::ZeroLoopBound`] for a loop with bound 0.
    pub fn build(self) -> Result<Function, CfgError> {
        let code = self.code.ok_or(CfgError::MissingBody)?;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        let mut address = self.base_address;
        for (name, instructions) in self.blocks {
            if instructions == 0 {
                return Err(CfgError::EmptyBlock { name });
            }
            if blocks.iter().any(|b: &BasicBlock| b.name == name) {
                return Err(CfgError::DuplicateBlock { name });
            }
            let block = BasicBlock {
                name,
                start_address: address,
                instructions,
                instruction_size: self.instruction_size,
            };
            address = block.end_address();
            blocks.push(block);
        }
        let resolve = |name: &str| -> Result<BlockId, CfgError> {
            blocks
                .iter()
                .position(|b| b.name == name)
                .map(BlockId)
                .ok_or_else(|| CfgError::UnknownBlock {
                    name: name.to_string(),
                })
        };
        fn lower(
            stmt: &Stmt,
            resolve: &dyn Fn(&str) -> Result<BlockId, CfgError>,
        ) -> Result<Code, CfgError> {
            Ok(match stmt {
                Stmt::Block(name) => Code::Block(resolve(name)?),
                Stmt::Seq(items) => Code::Seq(
                    items
                        .iter()
                        .map(|s| lower(s, resolve))
                        .collect::<Result<_, _>>()?,
                ),
                Stmt::Branch {
                    then_branch,
                    else_branch,
                } => Code::Branch {
                    then_branch: Box::new(lower(then_branch, resolve)?),
                    else_branch: match else_branch {
                        Some(e) => Some(Box::new(lower(e, resolve)?)),
                        None => None,
                    },
                },
                Stmt::Loop { bound, body } => {
                    if *bound == 0 {
                        return Err(CfgError::ZeroLoopBound);
                    }
                    Code::Loop {
                        bound: *bound,
                        body: Box::new(lower(body, resolve)?),
                    }
                }
            })
        }
        let code = lower(&code, &resolve)?;
        Ok(Function {
            name: self.name,
            blocks,
            code,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Function {
        Function::builder("demo")
            .block("A", 8)
            .block("B", 4)
            .block("C", 2)
            .code(Stmt::seq([
                Stmt::counted_loop(4, Stmt::branch(Stmt::block("A"), Some(Stmt::block("B")))),
                Stmt::block("C"),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn layout_is_contiguous() {
        let f = demo();
        let a = f.block(f.block_id("A").unwrap());
        let b = f.block(f.block_id("B").unwrap());
        let c = f.block(f.block_id("C").unwrap());
        assert_eq!(a.start_address(), 0);
        assert_eq!(a.end_address(), 32);
        assert_eq!(b.start_address(), 32);
        assert_eq!(c.start_address(), 48);
        assert_eq!(f.code_size_instructions(), 14);
        let addrs: Vec<u64> = a.addresses().collect();
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[7], 28);
        assert_eq!(addrs.len(), 8);
    }

    #[test]
    fn base_address_and_instruction_size() {
        let f = Function::builder("x")
            .base_address(0x1000)
            .instruction_size(2)
            .block("A", 3)
            .code(Stmt::block("A"))
            .build()
            .unwrap();
        let a = f.block(BlockId(0));
        assert_eq!(
            a.addresses().collect::<Vec<_>>(),
            vec![0x1000, 0x1002, 0x1004]
        );
    }

    #[test]
    fn worst_case_counts() {
        let f = demo();
        assert_eq!(f.worst_case_instruction_count(), 4 * 8 + 2);
        // if-without-else can contribute zero.
        let g = Function::builder("g")
            .block("A", 5)
            .code(Stmt::branch(Stmt::block("A"), None))
            .build()
            .unwrap();
        assert_eq!(g.worst_case_instruction_count(), 5);
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Function::builder("f").block("A", 1).build(),
            Err(CfgError::MissingBody)
        ));
        assert!(matches!(
            Function::builder("f")
                .block("A", 0)
                .code(Stmt::block("A"))
                .build(),
            Err(CfgError::EmptyBlock { .. })
        ));
        assert!(matches!(
            Function::builder("f")
                .block("A", 1)
                .block("A", 2)
                .code(Stmt::block("A"))
                .build(),
            Err(CfgError::DuplicateBlock { .. })
        ));
        assert!(matches!(
            Function::builder("f")
                .block("A", 1)
                .code(Stmt::block("B"))
                .build(),
            Err(CfgError::UnknownBlock { .. })
        ));
        assert!(matches!(
            Function::builder("f")
                .block("A", 1)
                .code(Stmt::counted_loop(0, Stmt::block("A")))
                .build(),
            Err(CfgError::ZeroLoopBound)
        ));
    }

    #[test]
    fn display_and_lookup() {
        let f = demo();
        assert!(f.to_string().contains("3 blocks"));
        assert_eq!(f.block_id("missing"), None);
        assert_eq!(f.blocks().len(), 3);
        assert_eq!(f.name(), "demo");
    }
}
