//! Error type for program construction.

use std::error::Error;
use std::fmt;

/// Errors raised while building a [`Function`](crate::Function).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CfgError {
    /// A statement references a block name that was never declared.
    UnknownBlock {
        /// The unresolved block name.
        name: String,
    },
    /// A block was declared twice.
    DuplicateBlock {
        /// The duplicated block name.
        name: String,
    },
    /// A block was declared with zero instructions.
    EmptyBlock {
        /// The offending block name.
        name: String,
    },
    /// A counted loop was declared with a zero bound.
    ZeroLoopBound,
    /// The function body was never set.
    MissingBody,
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::UnknownBlock { name } => {
                write!(f, "statement references unknown block `{name}`")
            }
            CfgError::DuplicateBlock { name } => write!(f, "block `{name}` declared twice"),
            CfgError::EmptyBlock { name } => write!(f, "block `{name}` has zero instructions"),
            CfgError::ZeroLoopBound => write!(f, "loop bound must be at least 1"),
            CfgError::MissingBody => write!(f, "function body was never set"),
        }
    }
}

impl Error for CfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(CfgError::UnknownBlock { name: "x".into() }
            .to_string()
            .contains("`x`"));
        assert!(CfgError::ZeroLoopBound.to_string().contains("at least 1"));
        fn assert_good<E: Error + Send + Sync + 'static>() {}
        assert_good::<CfgError>();
    }
}
