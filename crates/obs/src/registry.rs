//! The global subscriber: enable flags, event buffer, counter/histogram
//! registries, scope bookkeeping, and span timing.

use crate::event::Event;
use crate::metrics::{Counter, Histogram, MetricsSnapshot};
use crate::profile::ProfileNode;
use crate::value::FieldValue;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Gates [`emit`] / the [`crate::event!`] macro.
static EVENTS_ON: AtomicBool = AtomicBool::new(false);
/// Gates spans and histograms (wall-clock / distribution recording).
static TIMING_ON: AtomicBool = AtomicBool::new(false);

struct Registry {
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    profile: Mutex<ProfileNode>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        events: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
        profile: Mutex::new(ProfileNode::new("")),
    })
}

thread_local! {
    /// Current logical ordering scope for this thread.
    static SCOPE: Cell<u64> = const { Cell::new(0) };
    /// Next event sequence number within the current scope.
    static SEQ: Cell<u64> = const { Cell::new(0) };
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_PATH: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Enables everything: events, spans, and histograms.
pub fn enable() {
    EVENTS_ON.store(true, Ordering::Relaxed);
    TIMING_ON.store(true, Ordering::Relaxed);
}

/// Enables spans and histograms but not the event stream.
///
/// This is the `--metrics`-only mode: campaign-scale runs keep their
/// counters, distributions, and self-profile without buffering a
/// potentially huge event stream.
pub fn enable_metrics() {
    TIMING_ON.store(true, Ordering::Relaxed);
}

/// Disables events, spans, and histograms (counters always stay on).
pub fn disable() {
    EVENTS_ON.store(false, Ordering::Relaxed);
    TIMING_ON.store(false, Ordering::Relaxed);
}

/// True when the event stream is being recorded.
#[inline]
#[must_use]
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// True when spans and histograms are being recorded.
#[inline]
#[must_use]
pub fn timing_enabled() -> bool {
    TIMING_ON.load(Ordering::Relaxed)
}

/// True when any gated instrumentation (events or timing) is on.
#[inline]
#[must_use]
pub fn active() -> bool {
    events_enabled() || timing_enabled()
}

/// Sets this thread's ordering scope and resets its sequence counter.
///
/// Call at the start of each logical unit of parallel work (one campaign
/// set, one experiment evaluation) with an identifier that is unique across
/// units and independent of thread assignment; every event the unit emits
/// then sorts into one canonical position regardless of worker count.
pub fn set_scope(scope: u64) {
    SCOPE.with(|s| s.set(scope));
    SEQ.with(|s| s.set(0));
}

/// This thread's current ordering scope.
#[must_use]
pub fn scope() -> u64 {
    SCOPE.with(Cell::get)
}

/// Saves this thread's ordering state — scope *and* next sequence
/// number — so an inline parallel region (a pool running its items on
/// the calling thread) can re-scope per item and then hand the thread
/// back exactly as it found it. Pair with [`restore_scope_state`];
/// plain [`set_scope`] is not a substitute because it rewinds the
/// sequence counter, which would let later caller events collide with
/// earlier ones in the canonical `(scope, seq)` order.
#[must_use]
pub fn scope_state() -> (u64, u64) {
    (SCOPE.with(Cell::get), SEQ.with(Cell::get))
}

/// Restores ordering state saved by [`scope_state`].
pub fn restore_scope_state(state: (u64, u64)) {
    SCOPE.with(|s| s.set(state.0));
    SEQ.with(|s| s.set(state.1));
}

/// Process-wide scope-epoch allocator: drivers that run many scoped
/// parallel regions in sequence (the experiment sweeps re-use point ids
/// across panels) take one epoch per region and derive their per-unit
/// scopes from `(epoch, unit)` so regions never share scope blocks.
///
/// Lives here — not in the drivers — because [`reset`] must rewind it
/// along with the rest of the ordering state: a traced run after a reset
/// re-allocates the same epochs and therefore reproduces byte-identical
/// scope values.
static SCOPE_EPOCH: AtomicU64 = AtomicU64::new(0);

/// Takes the next scope epoch (starting from 0 after [`reset`]).
#[must_use]
pub fn next_scope_epoch() -> u64 {
    SCOPE_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Records an event under the current `(scope, seq)`; used by
/// [`crate::event!`], which performs the [`events_enabled`] check first.
pub fn emit(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    let scope = SCOPE.with(Cell::get);
    let seq = SEQ.with(|s| {
        let v = s.get();
        s.set(v + 1);
        v
    });
    let event = Event {
        scope,
        seq,
        name,
        fields,
    };
    if let Ok(mut events) = registry().events.lock() {
        events.push(event);
    }
}

/// Drains the buffered events, sorted canonically by `(scope, seq, name)`.
#[must_use]
pub fn take_events() -> Vec<Event> {
    let mut events = match registry().events.lock() {
        Ok(mut guard) => std::mem::take(&mut *guard),
        Err(_) => Vec::new(),
    };
    events.sort_by_key(|e| (e.scope, e.seq, e.name));
    events
}

/// Returns the always-on counter registered under `name`, interning it on
/// first use. Handles are `Copy` and remain valid for the process lifetime;
/// obtain them once outside hot loops.
#[must_use]
pub fn counter(name: &'static str) -> Counter {
    let mut counters = match registry().counters.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let cell = counters
        .entry(name)
        .or_insert_with(|| &*Box::leak(Box::new(AtomicU64::new(0))));
    Counter { name, cell }
}

/// Records `value` into the histogram registered under `name`; used by
/// [`crate::histogram!`], which performs the [`timing_enabled`] check first.
pub fn histogram_record(name: &'static str, value: u64) {
    if let Ok(mut histograms) = registry().histograms.lock() {
        histograms.entry(name).or_default().record(value);
    }
}

/// Copies every registered counter and histogram into a sorted snapshot.
#[must_use]
pub fn metrics_snapshot() -> MetricsSnapshot {
    let registry = registry();
    let counters = match registry.counters.lock() {
        Ok(guard) => guard
            .iter()
            .map(|(name, cell)| ((*name).to_string(), cell.load(Ordering::Relaxed)))
            .collect(),
        Err(_) => Vec::new(),
    };
    let histograms = match registry.histograms.lock() {
        Ok(guard) => guard
            .iter()
            .map(|(name, hist)| ((*name).to_string(), hist.clone()))
            .collect(),
        Err(_) => Vec::new(),
    };
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Copies the aggregated span tree, sorted by descending wall time.
#[must_use]
pub fn profile_snapshot() -> ProfileNode {
    let mut root = match registry().profile.lock() {
        Ok(guard) => guard.clone(),
        Err(_) => ProfileNode::new(""),
    };
    root.sort();
    root
}

/// Clears events, histograms, and the profile, and zeroes every counter.
/// Enable flags are left untouched. Intended for tests and for separating
/// phases within one process.
pub fn reset() {
    let registry = registry();
    if let Ok(mut events) = registry.events.lock() {
        events.clear();
    }
    if let Ok(mut histograms) = registry.histograms.lock() {
        histograms.clear();
    }
    if let Ok(mut profile) = registry.profile.lock() {
        *profile = ProfileNode::new("");
    }
    if let Ok(counters) = registry.counters.lock() {
        for cell in counters.values() {
            cell.store(0, Ordering::Relaxed);
        }
    }
    SCOPE_EPOCH.store(0, Ordering::Relaxed);
    SCOPE.with(|s| s.set(0));
    SEQ.with(|s| s.set(0));
}

/// RAII guard timing one span execution; created by [`crate::span!`].
///
/// When timing is disabled at creation the guard is inert (a `None` start,
/// nothing pushed). On drop, an active guard records its inclusive elapsed
/// wall time into the global profile tree under the thread's current span
/// path.
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

/// Opens a span; prefer the [`crate::span!`] macro.
#[must_use]
pub fn span_enter(name: &'static str) -> SpanGuard {
    if !timing_enabled() {
        return SpanGuard { start: None };
    }
    SPAN_PATH.with(|path| path.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let path: Vec<&'static str> = SPAN_PATH.with(|path| {
            let mut path = path.borrow_mut();
            let snapshot = path.clone();
            path.pop();
            snapshot
        });
        if path.is_empty() {
            return;
        }
        if let Ok(mut profile) = registry().profile.lock() {
            profile.record(&path, elapsed);
        }
    }
}
