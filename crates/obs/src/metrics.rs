//! Counters, histograms, and the metrics snapshot they aggregate into.

use crate::value::write_json_string;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
///
/// Counters are **always on** — they are the one `cpa-obs` primitive that
/// records regardless of [`crate::events_enabled`] / [`crate::timing_enabled`],
/// because cheap cumulative totals are what progress reporting and `--metrics`
/// share (one `fetch_add` per increment, no locking). Obtain a handle once via
/// [`crate::counter`] and keep it; `Counter` is `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    pub(crate) name: &'static str,
    pub(crate) cell: &'static AtomicU64,
}

impl Counter {
    /// The counter's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Reads the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` covers values in `[2^(b-1), 2^b)` (bucket 0 holds exactly the
/// value 0), which keeps recording allocation-free and the snapshot encoding
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// `buckets[b]` counts samples whose bucket index is `b`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `bit_length(value)`.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) of the recorded samples: the
    /// inclusive upper bound of the bucket holding the `ceil(q * count)`-th
    /// sample, clamped to the observed `[min, max]` range. Returns 0 when
    /// empty; exact whenever a bucket holds a single distinct value (so a
    /// single-sample histogram reports that sample at every quantile).
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Appends the JSON encoding (`{"count":..,"sum":..,"min":..,"max":..,
    /// "buckets":[[floor,count],..]}`) to `out`. Only non-empty buckets are
    /// encoded, as `[inclusive_lower_bound, count]` pairs.
    pub fn write_json(&self, out: &mut String) {
        let min = if self.count == 0 { 0 } else { self.min };
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, min, self.max
        );
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let floor: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
            let _ = write!(out, "[{floor},{n}]");
        }
        out.push_str("]}");
    }
}

/// Point-in-time copy of every registered counter and histogram.
///
/// Entries are sorted by name, so the JSON encoding of two snapshots taken at
/// the same logical point of two same-seed runs is identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every registered histogram, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Counter-delta snapshot: every counter's value minus its value in
    /// `baseline` (saturating; counters absent from the baseline keep their
    /// full value). Histogram counts/sums/buckets are subtracted bucket-wise;
    /// `min`/`max` stay the cumulative values, since extrema cannot be
    /// un-recorded. This is what per-stage attribution
    /// (`cpa_telemetry::StageReport`) consumes.
    #[must_use]
    pub fn delta_since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let base_counter = |name: &str| -> u64 {
            baseline
                .counters
                .binary_search_by(|(n, _)| n.as_str().cmp(name))
                .map(|i| baseline.counters[i].1)
                .unwrap_or(0)
        };
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), value.saturating_sub(base_counter(name))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, hist)| {
                let mut delta = hist.clone();
                if let Ok(i) = baseline
                    .histograms
                    .binary_search_by(|(n, _)| n.as_str().cmp(name))
                {
                    let base = &baseline.histograms[i].1;
                    delta.count = delta.count.saturating_sub(base.count);
                    delta.sum = delta.sum.saturating_sub(base.sum);
                    for (bucket, base_bucket) in delta.buckets.iter_mut().zip(&base.buckets) {
                        *bucket = bucket.saturating_sub(*base_bucket);
                    }
                }
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Encodes the snapshot as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            hist.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as aligned human-readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:width$}  n={} mean={:.2} min={} max={}",
                hist.count,
                hist.mean(),
                if hist.count == 0 { 0 } else { hist.min },
                hist.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..=3
        assert_eq!(h.buckets[3], 1); // 4..=7
        assert_eq!(h.buckets[11], 1); // 1024..=2047
        let mut json = String::new();
        h.write_json(&mut json);
        assert_eq!(
            json,
            "{\"count\":6,\"sum\":1034,\"min\":0,\"max\":1024,\
             \"buckets\":[[0,1],[1,1],[2,2],[4,1],[1024,1]]}"
        );
    }

    #[test]
    fn empty_histogram_exports_cleanly() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
        let mut json = String::new();
        h.write_json(&mut json);
        assert_eq!(
            json,
            "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}"
        );
        let snapshot = MetricsSnapshot {
            counters: vec![],
            histograms: vec![("empty".into(), h)],
        };
        let text = snapshot.render_text();
        assert!(text.contains("n=0"), "render_text: {text}");
    }

    #[test]
    fn single_sample_percentiles_report_the_sample() {
        let mut h = Histogram::default();
        h.record(7);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 7, "q={q}");
        }
        let mut zero = Histogram::default();
        zero.record(0);
        assert_eq!(zero.percentile(0.5), 0);
    }

    #[test]
    fn bucket_boundary_values_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        // Powers of two sit at the *lower* edge of their bucket: bucket b
        // covers [2^(b-1), 2^b).
        for v in [1u64, 2, 4, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 1); // 2..=3
        assert_eq!(h.buckets[3], 1); // 4..=7
        assert_eq!(h.buckets[4], 1); // 8..=15
        assert_eq!(h.buckets[64], 1); // top bucket
        assert_eq!(h.percentile(1.0), u64::MAX);
        // p20 = 1st of 5 samples -> bucket 1, upper bound 1.
        assert_eq!(h.percentile(0.2), 1);
        // p40 = 2nd sample -> bucket 2, upper bound 3, clamped to [1, MAX].
        assert_eq!(h.percentile(0.4), 3);
    }

    #[test]
    fn counter_deltas_subtract_the_baseline() {
        let baseline = MetricsSnapshot {
            counters: vec![("a".into(), 10), ("b".into(), 5)],
            histograms: vec![],
        };
        let now = MetricsSnapshot {
            counters: vec![("a".into(), 17), ("b".into(), 5), ("c".into(), 3)],
            histograms: vec![],
        };
        let delta = now.delta_since(&baseline);
        assert_eq!(
            delta.counters,
            vec![("a".into(), 7), ("b".into(), 0), ("c".into(), 3)]
        );
        // A snapshot is a zero delta of itself.
        let zero = now.delta_since(&now);
        assert!(zero.counters.iter().all(|(_, v)| *v == 0));
    }

    #[test]
    fn histogram_deltas_subtract_counts_and_buckets() {
        let mut before = Histogram::default();
        before.record(2);
        let mut after = before.clone();
        after.record(1024);
        after.record(3);
        let baseline = MetricsSnapshot {
            counters: vec![],
            histograms: vec![("h".into(), before)],
        };
        let now = MetricsSnapshot {
            counters: vec![],
            histograms: vec![("h".into(), after)],
        };
        let delta = now.delta_since(&baseline);
        let h = &delta.histograms[0].1;
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1027);
        assert_eq!(h.buckets[2], 1); // the new 3; the old 2 subtracted out
        assert_eq!(h.buckets[11], 1); // 1024
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let snapshot = MetricsSnapshot {
            counters: vec![("a.x".into(), 1), ("b.y".into(), 2)],
            histograms: vec![],
        };
        assert_eq!(
            snapshot.to_json(),
            "{\"counters\":{\"a.x\":1,\"b.y\":2},\"histograms\":{}}"
        );
    }
}
