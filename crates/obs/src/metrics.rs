//! Counters, histograms, and the metrics snapshot they aggregate into.

use crate::value::write_json_string;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter.
///
/// Counters are **always on** — they are the one `cpa-obs` primitive that
/// records regardless of [`crate::events_enabled`] / [`crate::timing_enabled`],
/// because cheap cumulative totals are what progress reporting and `--metrics`
/// share (one `fetch_add` per increment, no locking). Obtain a handle once via
/// [`crate::counter`] and keep it; `Counter` is `Copy`.
#[derive(Debug, Clone, Copy)]
pub struct Counter {
    pub(crate) name: &'static str,
    pub(crate) cell: &'static AtomicU64,
}

impl Counter {
    /// The counter's registered name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Reads the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `b` covers values in `[2^(b-1), 2^b)` (bucket 0 holds exactly the
/// value 0), which keeps recording allocation-free and the snapshot encoding
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest recorded sample (meaningless when `count == 0`).
    pub min: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// `buckets[b]` counts samples whose bucket index is `b`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

/// Bucket index for a sample: 0 for 0, otherwise `bit_length(value)`.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Mean of the recorded samples, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Appends the JSON encoding (`{"count":..,"sum":..,"min":..,"max":..,
    /// "buckets":[[floor,count],..]}`) to `out`. Only non-empty buckets are
    /// encoded, as `[inclusive_lower_bound, count]` pairs.
    pub fn write_json(&self, out: &mut String) {
        let min = if self.count == 0 { 0 } else { self.min };
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, min, self.max
        );
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let floor: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
            let _ = write!(out, "[{floor},{n}]");
        }
        out.push_str("]}");
    }
}

/// Point-in-time copy of every registered counter and histogram.
///
/// Entries are sorted by name, so the JSON encoding of two snapshots taken at
/// the same logical point of two same-seed runs is identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every registered histogram, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Encodes the snapshot as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            let _ = write!(out, ":{value}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(name, &mut out);
            out.push(':');
            hist.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Renders the snapshot as aligned human-readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.histograms.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(0);
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name:width$}  {value}");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "{name:width$}  n={} mean={:.2} min={} max={}",
                hist.count,
                hist.mean(),
                if hist.count == 0 { 0 } else { hist.min },
                hist.max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1034);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..=3
        assert_eq!(h.buckets[3], 1); // 4..=7
        assert_eq!(h.buckets[11], 1); // 1024..=2047
        let mut json = String::new();
        h.write_json(&mut json);
        assert_eq!(
            json,
            "{\"count\":6,\"sum\":1034,\"min\":0,\"max\":1024,\
             \"buckets\":[[0,1],[1,1],[2,2],[4,1],[1024,1]]}"
        );
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let snapshot = MetricsSnapshot {
            counters: vec![("a.x".into(), 1), ("b.y".into(), 2)],
            histograms: vec![],
        };
        assert_eq!(
            snapshot.to_json(),
            "{\"counters\":{\"a.x\":1,\"b.y\":2},\"histograms\":{}}"
        );
    }
}
