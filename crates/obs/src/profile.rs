//! Self-profile: a span tree with wall-time aggregation.
//!
//! Wall-clock timing is deliberately quarantined here — trace [`crate::Event`]s
//! never carry time, so the event stream stays deterministic while the profile
//! answers "where did the time go".

use crate::value::write_json_string;
use std::fmt::Write as _;

/// One node of the aggregated span tree.
///
/// A node accumulates every execution of the span name at this tree path,
/// across all threads: `calls` executions totalling `nanos` wall-clock
/// nanoseconds (inclusive of child spans).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Span name (`""` for the synthetic root).
    pub name: String,
    /// Number of completed span executions aggregated into this node.
    pub calls: u64,
    /// Total inclusive wall time in nanoseconds.
    pub nanos: u64,
    /// Child spans, in first-seen order until [`ProfileNode::sort`].
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Creates an empty node with the given name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        ProfileNode {
            name: name.to_string(),
            ..ProfileNode::default()
        }
    }

    /// Returns the child named `name`, creating it if absent.
    pub fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(name));
        self.children.last_mut().expect("just pushed")
    }

    /// Records one completed execution at the given path below this node.
    pub fn record(&mut self, path: &[&str], nanos: u64) {
        let mut node = self;
        for name in path {
            node = node.child_mut(name);
        }
        node.calls += 1;
        node.nanos = node.nanos.saturating_add(nanos);
    }

    /// Wall time spent in this node but not in any child.
    #[must_use]
    pub fn self_nanos(&self) -> u64 {
        let in_children: u64 = self.children.iter().map(|c| c.nanos).sum();
        self.nanos.saturating_sub(in_children)
    }

    /// Total wall time across the top-level children (the root node itself
    /// has no timing of its own).
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        if self.name.is_empty() {
            self.children.iter().map(|c| c.nanos).sum()
        } else {
            self.nanos
        }
    }

    /// Sorts every level by descending wall time (name as tiebreak) so the
    /// rendering is deterministic given identical timings.
    pub fn sort(&mut self) {
        self.children
            .sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.name.cmp(&b.name)));
        for child in &mut self.children {
            child.sort();
        }
    }

    /// Encodes the subtree as a JSON object
    /// (`{"name":..,"calls":..,"nanos":..,"children":[..]}`).
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_json_string(&self.name, out);
        let _ = write!(
            out,
            ",\"calls\":{},\"nanos\":{},\"children\":[",
            self.calls, self.nanos
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }

    /// Encodes the subtree as a standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Renders the subtree as an indented pretty-text table with per-span
    /// totals and percentages of the overall wall time.
    #[must_use]
    pub fn render_text(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>12} {:>6}",
            "span", "calls", "total", "%"
        );
        for child in &self.children {
            child.render_into(&mut out, 0, total);
        }
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, total: u64) {
        let label = format!("{}{}", "  ".repeat(depth), self.name);
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>12} {:>5.1}%",
            label,
            self.calls,
            format_nanos(self.nanos),
            100.0 * self.nanos as f64 / total as f64
        );
        for child in &self.children {
            child.render_into(out, depth + 1, total);
        }
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
#[must_use]
pub fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builds_and_aggregates_paths() {
        let mut root = ProfileNode::new("");
        root.record(&["a", "b"], 100);
        root.record(&["a", "b"], 50);
        root.record(&["a"], 400);
        assert_eq!(root.children.len(), 1);
        let a = &root.children[0];
        assert_eq!((a.calls, a.nanos), (1, 400));
        assert_eq!((a.children[0].calls, a.children[0].nanos), (2, 150));
        assert_eq!(a.self_nanos(), 250);
        assert_eq!(root.total_nanos(), 400);
    }

    #[test]
    fn json_roundtrips_the_shape() {
        let mut root = ProfileNode::new("");
        root.record(&["x"], 7);
        assert_eq!(
            root.to_json(),
            "{\"name\":\"\",\"calls\":0,\"nanos\":0,\"children\":[\
             {\"name\":\"x\",\"calls\":1,\"nanos\":7,\"children\":[]}]}"
        );
    }
}
