//! `cpa-obs` — zero-dependency structured tracing, metrics, and
//! self-profiling for the persistence-bus workspace.
//!
//! The WCRT recurrence (Eq. 19) is a nested fixed point whose cost and
//! outcome hinge on internals — outer sweeps, per-task inner iterations,
//! which term (BAS/BAO/CPRO/CRPD) dominates the bound. This crate is the
//! substrate every layer reports those internals through:
//!
//! * **Events** ([`event!`]) — structured, *deterministic* trace records.
//!   Payloads carry iteration counts, seeds, and indices, never wall-clock
//!   values, and each event is stamped with a `(scope, seq)` ordering key
//!   ([`set_scope`]) so the drained stream ([`take_events`]) sorts into one
//!   canonical order regardless of worker-thread interleaving: same seed ⇒
//!   byte-identical JSON.
//! * **Spans** ([`span!`]) — RAII wall-time measurement aggregated into a
//!   global span tree ([`profile_snapshot`]); timing lives *only* here,
//!   quarantined from the event stream.
//! * **Counters** ([`counter`]) — always-on atomic totals (one relaxed
//!   `fetch_add`), shared by progress reporting and `--metrics`.
//! * **Histograms** ([`histogram!`]) — power-of-two-bucketed distributions
//!   (queue depths, iteration counts).
//!
//! Everything but counters is gated behind a global subscriber that is a
//! no-op when disabled: [`event!`]/[`span!`]/[`histogram!`] cost one relaxed
//! atomic load and a predictable branch, so instrumented hot paths stay
//! within the <2% overhead budget enforced by `ci.sh` (`BENCH_obs.json`).
//! Enable with [`enable`] (events + timing) or [`enable_metrics`]
//! (timing only, for campaign-scale runs where buffering every event would
//! be prohibitive).
//!
//! # Example
//!
//! ```
//! cpa_obs::enable();
//! cpa_obs::set_scope(7);
//! {
//!     let _span = cpa_obs::span!("demo.work");
//!     cpa_obs::event!("demo.step", iter = 1u64, done = false);
//!     cpa_obs::counter("demo.items").incr();
//!     cpa_obs::histogram!("demo.depth", 3);
//! }
//! let events = cpa_obs::take_events();
//! assert_eq!(events[0].render_human(), "[7.0] demo.step iter=1 done=false");
//! cpa_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod event;
pub mod metrics;
pub mod profile;
mod registry;
pub mod value;

pub use event::{events_to_json_lines, Event};
pub use metrics::{Counter, Histogram, MetricsSnapshot};
pub use profile::{format_nanos, ProfileNode};
pub use registry::{
    active, counter, disable, emit, enable, enable_metrics, events_enabled, histogram_record,
    metrics_snapshot, next_scope_epoch, profile_snapshot, reset, restore_scope_state, scope,
    scope_state, set_scope, span_enter, take_events, timing_enabled, SpanGuard,
};
pub use value::FieldValue;

/// Records a structured trace event when events are enabled.
///
/// Fields are `name = value` pairs; values go through
/// [`FieldValue::from`], and field order is preserved in the JSON output.
/// When disabled this is one relaxed atomic load — no field is evaluated.
///
/// ```
/// cpa_obs::event!("wcrt.outer", iter = 3u64, changed = 2usize);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::events_enabled() {
            $crate::emit(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Opens a wall-time span, closed when the returned guard drops.
///
/// Bind the guard to a named variable (`let _span = …`) — binding to `_`
/// drops it immediately. When timing is disabled the guard is inert.
///
/// ```
/// let _span = cpa_obs::span!("cache.extract");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
}

/// Records a `u64` sample into a named histogram when timing is enabled.
///
/// ```
/// cpa_obs::histogram!("sim.queue_depth", 4u64);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::timing_enabled() {
            $crate::histogram_record($name, $value);
        }
    };
}

#[cfg(test)]
mod tests {
    // The global subscriber is process-wide state; every test that toggles
    // it serializes on this mutex so `cargo test`'s parallel runner cannot
    // interleave enable/reset windows.
    use std::sync::{Mutex, MutexGuard, OnceLock};

    fn lock() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        let gate = GATE.get_or_init(|| Mutex::new(()));
        match gate.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_subscriber_records_nothing_gated() {
        let _gate = lock();
        crate::disable();
        crate::reset();
        crate::event!("test.never", x = 1u64);
        crate::histogram!("test.never_hist", 1);
        {
            let _span = crate::span!("test.never_span");
        }
        assert!(crate::take_events().is_empty());
        let metrics = crate::metrics_snapshot();
        assert!(metrics
            .histograms
            .iter()
            .all(|(name, _)| !name.starts_with("test.never")));
        assert!(crate::profile_snapshot()
            .children
            .iter()
            .all(|c| c.name != "test.never_span"));
    }

    #[test]
    fn counters_count_even_when_disabled() {
        let _gate = lock();
        crate::disable();
        crate::reset();
        let c = crate::counter("test.always");
        c.add(3);
        c.incr();
        assert_eq!(c.get(), 4);
        assert_eq!(
            crate::counter("test.always").get(),
            4,
            "same handle on re-intern"
        );
    }

    #[test]
    fn events_sort_canonically_by_scope_then_seq() {
        let _gate = lock();
        crate::reset();
        crate::enable();
        crate::set_scope(9);
        crate::event!("test.b");
        crate::set_scope(2);
        crate::event!("test.a", k = "v");
        crate::disable();
        let events = crate::take_events();
        let ours: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("test."))
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!((ours[0].scope, ours[0].name), (2, "test.a"));
        assert_eq!((ours[1].scope, ours[1].name), (9, "test.b"));
        let json = crate::events_to_json_lines(&[ours[0].clone()]);
        assert_eq!(
            json,
            "{\"scope\":2,\"seq\":0,\"name\":\"test.a\",\"fields\":{\"k\":\"v\"}}\n"
        );
    }

    #[test]
    fn spans_nest_into_the_profile_tree() {
        let _gate = lock();
        crate::reset();
        crate::enable_metrics();
        {
            let _outer = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        crate::disable();
        let profile = crate::profile_snapshot();
        let outer = profile
            .children
            .iter()
            .find(|c| c.name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "test.inner");
        assert!(outer.nanos >= outer.children[0].nanos);
        assert!(!profile.render_text().is_empty());
    }
}
