//! Field values carried by events, and the hand-rolled JSON encoding they
//! share with every other `cpa-obs` artefact.
//!
//! `cpa-obs` must stay dependency-free (it sits below every other crate in
//! the workspace), so it does not use `serde`; the JSON subset emitted here
//! is deliberately tiny: objects, arrays, strings, booleans, and integers /
//! finite floats.

use std::fmt::Write as _;

/// A single typed field value attached to an [`crate::Event`].
///
/// Values are deliberately restricted to deterministic encodings: integers
/// render exactly, floats render through Rust's shortest-roundtrip `Display`
/// (identical across runs for identical bits), and strings are escaped per
/// RFC 8259.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (cycle counts, iteration numbers, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point value; non-finite values encode as `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Owned string (task names, labels, policy names).
    Str(String),
}

impl FieldValue {
    /// Appends the JSON encoding of this value to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            FieldValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // `Display` omits the decimal point for integral floats;
                    // keep the type visible in the stream.
                    if !out.ends_with(['.', 'e']) && v.fract() == 0.0 {
                        let tail: String = out
                            .chars()
                            .rev()
                            .take_while(|c| c.is_ascii_digit() || *c == '-')
                            .collect();
                        if tail.len() == out.len() || !out.contains('.') {
                            out.push_str(".0");
                        }
                    }
                } else {
                    out.push_str("null");
                }
            }
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => write_json_string(s, out),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        FieldValue::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Appends `s` to `out` as a quoted, RFC 8259-escaped JSON string.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(v: FieldValue) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn integers_render_exactly() {
        assert_eq!(json(FieldValue::U64(u64::MAX)), u64::MAX.to_string());
        assert_eq!(json(FieldValue::I64(-42)), "-42");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(json(FieldValue::F64(0.5)), "0.5");
        assert_eq!(json(FieldValue::F64(3.0)), "3.0");
        assert_eq!(json(FieldValue::F64(f64::NAN)), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let mut out = String::new();
        write_json_string("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
