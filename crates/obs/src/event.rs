//! Structured trace events and their JSON-lines / human renderings.

use crate::value::{write_json_string, FieldValue};
use std::fmt::Write as _;

/// One structured trace event.
///
/// Events are **deterministic by construction**: payloads carry iteration
/// counts, seeds, and indices — never wall-clock values (timing lives only in
/// the separate self-profile, [`crate::ProfileNode`]). Ordering is carried by
/// the `(scope, seq)` pair: `scope` is a caller-chosen logical unit (e.g. the
/// campaign set index, see [`crate::set_scope`]) and `seq` is the emission
/// rank within that scope. Sorting a drained event buffer by `(scope, seq)`
/// therefore reconstructs one canonical order regardless of how many worker
/// threads interleaved, which is what makes same-seed traces byte-identical
/// across `--threads` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Logical ordering scope (campaign set index, experiment point, …).
    pub scope: u64,
    /// Emission rank within `scope` (resets when the scope changes).
    pub seq: u64,
    /// Static event name, dot-separated by subsystem (`wcrt.outer`, …).
    pub name: &'static str,
    /// Ordered field list; insertion order is preserved in the JSON output.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Appends the single-line JSON encoding of this event to `out`.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"scope\":{},\"seq\":{},\"name\":",
            self.scope, self.seq
        );
        write_json_string(self.name, out);
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                value.write_json(out);
            }
            out.push('}');
        }
        out.push('}');
    }

    /// Renders the event as one human-readable line
    /// (`[scope.seq] name key=value …`).
    pub fn render_human(&self) -> String {
        let mut line = format!("[{}.{}] {}", self.scope, self.seq, self.name);
        for (key, value) in &self.fields {
            let mut rendered = String::new();
            value.write_json(&mut rendered);
            let _ = write!(line, " {key}={rendered}");
        }
        line
    }
}

/// Renders a slice of events as JSON lines (one event per line, trailing
/// newline after each).
pub fn events_to_json_lines(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        event.write_json(&mut out);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_is_stable_and_ordered() {
        let event = Event {
            scope: 3,
            seq: 7,
            name: "wcrt.outer",
            fields: vec![
                ("iter", FieldValue::U64(2)),
                ("changed", FieldValue::U64(5)),
            ],
        };
        let mut out = String::new();
        event.write_json(&mut out);
        assert_eq!(
            out,
            "{\"scope\":3,\"seq\":7,\"name\":\"wcrt.outer\",\"fields\":{\"iter\":2,\"changed\":5}}"
        );
        assert_eq!(event.render_human(), "[3.7] wcrt.outer iter=2 changed=5");
    }

    #[test]
    fn fieldless_events_omit_the_fields_object() {
        let event = Event {
            scope: 0,
            seq: 0,
            name: "campaign.start",
            fields: vec![],
        };
        let mut out = String::new();
        event.write_json(&mut out);
        assert_eq!(out, "{\"scope\":0,\"seq\":0,\"name\":\"campaign.start\"}");
    }
}
