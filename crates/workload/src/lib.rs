//! Task-set generation for the DATE 2020 evaluation.
//!
//! Reproduces the workload methodology of §V of *Cache Persistence-Aware
//! Memory Bus Contention Analysis for Multicore Systems*:
//!
//! * per-core utilizations drawn with **UUnifast** (Bini & Buttazzo 2005)
//!   — [`fn@uunifast`];
//! * per-task parameters drawn from the **Mälardalen benchmark suite** as
//!   extracted by the Heptane WCET analyzer (the paper's Table I, plus a
//!   synthesized extension set documented per entry) — [`malardalen`];
//! * periods/deadlines set to `T_i = D_i = demand / U_i` and priorities
//!   assigned **deadline-monotonically** — [`generator`].
//!
//! # Example
//!
//! ```
//! use cpa_workload::{GeneratorConfig, TaskSetGenerator};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = GeneratorConfig::paper_default().with_per_core_utilization(0.4);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
//! let generator = TaskSetGenerator::new(config)?;
//! let tasks = generator.generate(&mut rng)?;
//! assert_eq!(tasks.len(), 32); // 4 cores × 8 tasks
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod generator;
pub mod malardalen;
pub mod uunifast;

pub use generator::{GeneratorConfig, TaskSetGenerator, UtilizationModel};
pub use malardalen::{benchmarks, published_benchmarks, BenchmarkParams, Provenance};
pub use uunifast::uunifast;
