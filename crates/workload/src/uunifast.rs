//! The UUnifast utilization generator (Bini & Buttazzo 2005).

use rand::Rng;

/// Draws `n` task utilizations summing to `total`, uniformly distributed
/// over the valid utilization simplex (the UUnifast algorithm of *Measuring
/// the performance of schedulability tests*, Real-Time Systems 2005).
///
/// Returns an empty vector for `n = 0`.
///
/// # Panics
///
/// Panics if `total` is negative or not finite.
///
/// # Example
///
/// ```
/// use cpa_workload::uunifast;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let utils = uunifast(8, 0.6, &mut rng);
/// assert_eq!(utils.len(), 8);
/// let sum: f64 = utils.iter().sum();
/// assert!((sum - 0.6).abs() < 1e-9);
/// ```
#[must_use]
pub fn uunifast<R: Rng + ?Sized>(n: usize, total: f64, rng: &mut R) -> Vec<f64> {
    assert!(
        total.is_finite() && total >= 0.0,
        "total utilization must be finite and non-negative, got {total}"
    );
    if n == 0 {
        return Vec::new();
    }
    let mut utilizations = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next = remaining * rng.gen::<f64>().powf(exponent);
        utilizations.push(remaining - next);
        remaining = next;
    }
    utilizations.push(remaining);
    utilizations
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_tasks_is_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(uunifast(0, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn single_task_gets_everything() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let u = uunifast(1, 0.7, &mut rng);
        assert_eq!(u, vec![0.7]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_total_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = uunifast(4, -0.1, &mut rng);
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = uunifast(8, 0.5, &mut ChaCha8Rng::seed_from_u64(9));
        let b = uunifast(8, 0.5, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = uunifast(8, 0.5, &mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Mean of each slot over many draws should approach total/n.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 4;
        let total = 0.8;
        let runs = 2_000;
        let mut means = vec![0.0; n];
        for _ in 0..runs {
            for (m, u) in means.iter_mut().zip(uunifast(n, total, &mut rng)) {
                *m += u;
            }
        }
        for m in &mut means {
            *m /= runs as f64;
            assert!((*m - total / n as f64).abs() < 0.02, "mean {m}");
        }
    }

    proptest! {
        #[test]
        fn sums_to_total_and_stays_positive(
            n in 1usize..32,
            total in 0.0f64..4.0,
            seed in any::<u64>(),
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let utils = uunifast(n, total, &mut rng);
            prop_assert_eq!(utils.len(), n);
            let sum: f64 = utils.iter().sum();
            prop_assert!((sum - total).abs() < 1e-9);
            for &u in &utils {
                prop_assert!(u >= 0.0);
                prop_assert!(u <= total + 1e-12);
            }
        }
    }
}
