//! Random task-set construction following §V of the paper.

use cpa_model::{CacheBlockSet, CoreId, ModelError, Priority, Task, TaskSet, Time};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::malardalen::{benchmarks, BenchmarkParams};
use crate::uunifast::uunifast;

/// How a task's period is derived from its utilization share.
///
/// The paper prints `T_i = D_i = (PD_i + MD_i)/U_i`; dimensionally the
/// memory term must be a *time*, and the companion papers (ECRTS 2016,
/// RTSS 2017) spell the formula out as `(PD_i + MD_i · d_mem)/U_i`. Both
/// conventions are provided; [`UtilizationModel::MemoryScaled`] is the
/// default and is what makes the utilization sweep of Fig. 2 meaningful
/// (with `Raw`, memory-dominated benchmarks exceed 100% actual load at any
/// nominal utilization once `d_mem` is in the thousands of cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum UtilizationModel {
    /// `T_i = (PD_i + MD_i · d_mem) / U_i` — memory demand converted to
    /// time (default).
    #[default]
    MemoryScaled,
    /// `T_i = (PD_i + MD_i) / U_i` — the formula exactly as printed.
    Raw,
}

/// Configuration of the random task-set generator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GeneratorConfig {
    /// Number of cores (`m`); the paper's default is 4.
    pub cores: usize,
    /// Tasks per core; the paper's default is 8.
    pub tasks_per_core: usize,
    /// Target utilization of each core (equal split across cores, as in
    /// the paper).
    pub per_core_utilization: f64,
    /// Number of cache sets of the private instruction caches
    /// (default 256).
    pub cache_sets: usize,
    /// Cache geometry the benchmark parameters were extracted for
    /// (default 256 sets). When [`GeneratorConfig::cache_sets`] differs,
    /// the per-task persistence parameters are re-scaled — see
    /// [`scale_persistence`].
    pub reference_cache_sets: usize,
    /// Worst-case memory access latency `d_mem` (default 5).
    ///
    /// The benchmark tables give `PD`/`MD` in abstract "cycles" whose scale
    /// the paper never ties to the microsecond `d_mem` axis; the only
    /// reading that keeps the published `PD:MD` balance meaningful (and
    /// reproduces the paper's schedulability ranges) is one benchmark-table
    /// cycle ≙ 1 µs, hence `d_mem = 5` time units for the paper's default
    /// 5 µs (see DESIGN.md §4 "Units").
    pub d_mem: Time,
    /// Period derivation convention.
    pub utilization_model: UtilizationModel,
    /// Memory latency used for *period sizing* when it should differ from
    /// the analysed `d_mem`. The Fig. 3b sweep varies the platform latency
    /// while keeping the task-set population fixed: periods stay sized for
    /// the paper's default latency while the analysis sees the swept one.
    /// `None` (default) sizes periods with [`GeneratorConfig::d_mem`].
    pub period_d_mem: Option<Time>,
    /// The benchmark pool tasks are drawn from.
    pub pool: Vec<BenchmarkParams>,
}

impl GeneratorConfig {
    /// The paper's default evaluation setting: 4 cores × 8 tasks, 256 cache
    /// sets, `d_mem` = 5 µs (≙ 5 benchmark-table cycles; see
    /// [`GeneratorConfig::d_mem`]), full benchmark pool.
    #[must_use]
    pub fn paper_default() -> Self {
        GeneratorConfig {
            cores: 4,
            tasks_per_core: 8,
            per_core_utilization: 0.5,
            cache_sets: 256,
            reference_cache_sets: 256,
            d_mem: Time::from_cycles(5),
            utilization_model: UtilizationModel::MemoryScaled,
            period_d_mem: None,
            pool: benchmarks().to_vec(),
        }
    }

    /// Returns a copy with a different per-core utilization target.
    #[must_use]
    pub fn with_per_core_utilization(mut self, utilization: f64) -> Self {
        self.per_core_utilization = utilization;
        self
    }

    /// Returns a copy with a different core count (Fig. 3a sweep).
    #[must_use]
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Returns a copy with a different memory latency (Fig. 3b sweep).
    #[must_use]
    pub fn with_d_mem(mut self, d_mem: Time) -> Self {
        self.d_mem = d_mem;
        self
    }

    /// Returns a copy whose periods are sized for `d_mem_ref` regardless of
    /// the analysed latency (see [`GeneratorConfig::period_d_mem`]).
    #[must_use]
    pub fn with_period_d_mem(mut self, d_mem_ref: Time) -> Self {
        self.period_d_mem = Some(d_mem_ref);
        self
    }

    /// Returns a copy with a different cache-set count (Fig. 3c sweep).
    /// Benchmark footprints larger than the cache are clamped by the
    /// direct-mapped wrap-around placement.
    #[must_use]
    pub fn with_cache_sets(mut self, cache_sets: usize) -> Self {
        self.cache_sets = cache_sets;
        self
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig::paper_default()
    }
}

/// Random task-set generator reproducing the paper's methodology:
/// UUnifast per-core utilizations, benchmark-sampled task parameters,
/// implicit deadlines `T_i = D_i = demand/U_i`, deadline-monotonic unique
/// priorities, contiguous cache footprints at a uniformly random offset.
#[derive(Debug, Clone)]
pub struct TaskSetGenerator {
    config: GeneratorConfig,
}

impl TaskSetGenerator {
    /// Creates a generator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidTaskSet`] if the configuration is
    /// degenerate: zero cores or tasks, non-positive utilization, empty or
    /// inconsistent benchmark pool, or a zero-sized cache.
    pub fn new(config: GeneratorConfig) -> Result<Self, ModelError> {
        let invalid = |reason: String| ModelError::InvalidTaskSet { reason };
        if config.cores == 0 {
            return Err(invalid("generator needs at least one core".into()));
        }
        if config.tasks_per_core == 0 {
            return Err(invalid("generator needs at least one task per core".into()));
        }
        if config.per_core_utilization <= 0.0 || !config.per_core_utilization.is_finite() {
            return Err(invalid(format!(
                "per-core utilization must be positive and finite, got {}",
                config.per_core_utilization
            )));
        }
        if config.cache_sets == 0 {
            return Err(invalid("cache must have at least one set".into()));
        }
        if config.d_mem.is_zero() {
            return Err(invalid("d_mem must be positive".into()));
        }
        if config.pool.is_empty() {
            return Err(invalid("benchmark pool is empty".into()));
        }
        if let Some(bad) = config.pool.iter().find(|b| !b.is_consistent()) {
            return Err(invalid(format!(
                "benchmark `{}` violates invariants",
                bad.name
            )));
        }
        Ok(TaskSetGenerator { config })
    }

    /// The validated configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates one random task set.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from task construction; with a validated
    /// configuration this only fires on pathological utilization values
    /// that collapse a period to zero.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<TaskSet, ModelError> {
        let _span = cpa_obs::span!("workload.generate");
        let cfg = &self.config;
        // (deadline, creation index) pairs for deadline-monotonic priority
        // assignment after all tasks are drawn.
        let mut drafts: Vec<TaskDraft> = Vec::with_capacity(cfg.cores * cfg.tasks_per_core);
        for core in 0..cfg.cores {
            let utilizations = uunifast(cfg.tasks_per_core, cfg.per_core_utilization, rng);
            for (slot, utilization) in utilizations.into_iter().enumerate() {
                let bench = cfg.pool[rng.gen_range(0..cfg.pool.len())];
                let offset = rng.gen_range(0..cfg.cache_sets);
                let sizing_d_mem = cfg.period_d_mem.unwrap_or(cfg.d_mem);
                let demand = match cfg.utilization_model {
                    UtilizationModel::MemoryScaled => bench
                        .pd
                        .saturating_add(bench.md.saturating_mul(sizing_d_mem.cycles())),
                    UtilizationModel::Raw => bench.pd.saturating_add(bench.md),
                };
                let period = period_for(demand, utilization);
                drafts.push(TaskDraft {
                    name: format!("{}#{}.{}", bench.name, core, slot),
                    bench,
                    core,
                    offset,
                    period,
                });
            }
        }

        // Deadline-monotonic: shorter deadline ⇒ higher priority; ties
        // broken by draft order for determinism.
        drafts.sort_by_key(|d| d.period);

        let mut tasks = Vec::with_capacity(drafts.len());
        for (rank, draft) in drafts.into_iter().enumerate() {
            let b = draft.bench;
            let ecb_len = b.ecb.min(cfg.cache_sets);
            let (md_r, pcb_len) = scale_persistence(
                b.md,
                b.md_r,
                b.pcb,
                ecb_len,
                cfg.reference_cache_sets,
                cfg.cache_sets,
            );
            let task = Task::builder(draft.name)
                .processing_demand(Time::from_cycles(b.pd))
                .memory_demand(b.md)
                .residual_memory_demand(md_r)
                .period(Time::from_cycles(draft.period))
                .deadline(Time::from_cycles(draft.period))
                .core(CoreId::new(draft.core))
                .priority(Priority::new(rank as u32))
                .ecb(CacheBlockSet::contiguous(
                    cfg.cache_sets,
                    draft.offset,
                    ecb_len,
                ))
                .pcb(CacheBlockSet::contiguous(
                    cfg.cache_sets,
                    draft.offset,
                    pcb_len,
                ))
                .ucb(CacheBlockSet::contiguous(
                    cfg.cache_sets,
                    draft.offset,
                    b.ucb.min(ecb_len),
                ))
                .build()?;
            tasks.push(task);
        }
        let set = TaskSet::new(tasks)?;
        cpa_obs::counter("workload.sets_generated").incr();
        Ok(set)
    }
}

struct TaskDraft {
    name: String,
    bench: BenchmarkParams,
    core: usize,
    offset: usize,
    period: u64,
}

/// Re-scales a benchmark's persistence parameters from the extraction
/// geometry to the analysed cache geometry.
///
/// The paper re-ran Heptane per cache size and observed that "by increasing
/// the cache size the number of PCBs of each task also increases" (§V.4).
/// Re-extraction is not reproducible offline, so this function models the
/// stated mechanism directly:
///
/// * the PCB count scales linearly with the cache-size ratio
///   `cache_sets / reference_sets`, capped by the task's (clamped) ECB
///   count — a bigger direct-mapped cache removes intra-task conflicts and
///   lets more blocks persist, while the cache can never hold more
///   persistent blocks than the task touches;
/// * the per-job persistence saving `MD − MD^r` scales with the same PCB
///   ratio: each persistent block is a main-memory access that later jobs
///   skip.
///
/// Returns the scaled `(MD^r, |PCB|)` pair. At the reference geometry this
/// is the identity.
#[must_use]
pub fn scale_persistence(
    md: u64,
    md_r: u64,
    pcb: usize,
    ecb_len: usize,
    reference_sets: usize,
    cache_sets: usize,
) -> (u64, usize) {
    if pcb == 0 || reference_sets == 0 {
        return (md_r.min(md), 0);
    }
    let ratio = cache_sets as f64 / reference_sets as f64;
    let pcb_scaled = ((pcb as f64 * ratio).round() as usize).clamp(0, ecb_len);
    let savings = md.saturating_sub(md_r);
    let savings_scaled = (savings as f64 * pcb_scaled as f64 / pcb as f64).round() as u64;
    let md_r_scaled = md.saturating_sub(savings_scaled);
    (md_r_scaled, pcb_scaled)
}

/// `T = ⌈demand / utilization⌉`, clamped to at least 1 cycle and saturating
/// for vanishing utilizations.
fn period_for(demand: u64, utilization: f64) -> u64 {
    if demand == 0 {
        return 1;
    }
    let raw = demand as f64 / utilization.max(f64::MIN_POSITIVE);
    if raw >= u64::MAX as f64 {
        u64::MAX
    } else {
        (raw.ceil() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::Platform;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn generator(util: f64) -> TaskSetGenerator {
        TaskSetGenerator::new(GeneratorConfig::paper_default().with_per_core_utilization(util))
            .unwrap()
    }

    #[test]
    fn paper_default_shape() {
        let ts = generator(0.5)
            .generate(&mut ChaCha8Rng::seed_from_u64(1))
            .unwrap();
        assert_eq!(ts.len(), 32);
        for core in 0..4 {
            assert_eq!(ts.on_core(CoreId::new(core)).count(), 8);
        }
        assert_eq!(ts.cache_sets(), 256);
    }

    #[test]
    fn utilization_hits_target() {
        let gen = generator(0.5);
        let d_mem = gen.config().d_mem;
        let ts = gen.generate(&mut ChaCha8Rng::seed_from_u64(2)).unwrap();
        for core in 0..4 {
            let u = ts.core_utilization(CoreId::new(core), d_mem);
            // Ceil-rounding of periods only makes utilization smaller.
            assert!(u <= 0.5 + 1e-9, "core {core}: {u}");
            assert!(u > 0.45, "core {core}: {u}");
        }
    }

    #[test]
    fn deadline_monotonic_priorities() {
        let ts = generator(0.3)
            .generate(&mut ChaCha8Rng::seed_from_u64(3))
            .unwrap();
        // TaskSet sorts by priority; DM means deadlines are non-decreasing.
        let deadlines: Vec<u64> = ts.iter().map(|t| t.deadline().cycles()).collect();
        let mut sorted = deadlines.clone();
        sorted.sort_unstable();
        assert_eq!(deadlines, sorted);
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = generator(0.4);
        let a = gen.generate(&mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = gen.generate(&mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        let c = gen.generate(&mut ChaCha8Rng::seed_from_u64(8)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_sets_fit_the_platform() {
        let gen = generator(0.6);
        let ts = gen.generate(&mut ChaCha8Rng::seed_from_u64(4)).unwrap();
        let platform = Platform::builder()
            .cores(4)
            .memory_latency(gen.config().d_mem)
            .build()
            .unwrap();
        assert!(ts.validate_against(&platform).is_ok());
    }

    #[test]
    fn small_cache_clamps_footprints() {
        let cfg = GeneratorConfig::paper_default()
            .with_cache_sets(32)
            .with_per_core_utilization(0.3);
        let ts = TaskSetGenerator::new(cfg)
            .unwrap()
            .generate(&mut ChaCha8Rng::seed_from_u64(5))
            .unwrap();
        assert_eq!(ts.cache_sets(), 32);
        for t in ts.iter() {
            assert!(t.ecb().len() <= 32);
            assert!(t.pcb().is_subset(t.ecb()));
            assert!(t.ucb().is_subset(t.ecb()));
        }
    }

    #[test]
    fn raw_model_gives_shorter_periods() {
        let mk = |model| {
            let mut cfg = GeneratorConfig::paper_default().with_per_core_utilization(0.5);
            cfg.utilization_model = model;
            TaskSetGenerator::new(cfg)
                .unwrap()
                .generate(&mut ChaCha8Rng::seed_from_u64(6))
                .unwrap()
        };
        let scaled = mk(UtilizationModel::MemoryScaled);
        let raw = mk(UtilizationModel::Raw);
        let sum = |ts: &TaskSet| ts.iter().map(|t| t.period().cycles() as u128).sum::<u128>();
        assert!(sum(&raw) < sum(&scaled));
    }

    #[test]
    fn config_validation() {
        let base = GeneratorConfig::paper_default;
        assert!(TaskSetGenerator::new(base().with_cores(0)).is_err());
        assert!(TaskSetGenerator::new(base().with_per_core_utilization(0.0)).is_err());
        assert!(TaskSetGenerator::new(base().with_per_core_utilization(f64::NAN)).is_err());
        assert!(TaskSetGenerator::new(base().with_cache_sets(0)).is_err());
        let mut cfg = base();
        cfg.tasks_per_core = 0;
        assert!(TaskSetGenerator::new(cfg).is_err());
        let mut cfg = base();
        cfg.pool.clear();
        assert!(TaskSetGenerator::new(cfg).is_err());
        let mut cfg = base();
        cfg.d_mem = Time::ZERO;
        assert!(TaskSetGenerator::new(cfg).is_err());
    }

    #[test]
    fn scale_persistence_identity_at_reference() {
        assert_eq!(scale_persistence(100, 20, 30, 100, 256, 256), (20, 30));
        // nsichneu-style: no PCBs, nothing to scale.
        assert_eq!(scale_persistence(100, 100, 0, 256, 256, 1024), (100, 0));
    }

    #[test]
    fn scale_persistence_small_cache_loses_pcbs() {
        // 8× smaller cache: PCBs shrink 8×, savings shrink accordingly.
        let (md_r, pcb) = scale_persistence(1_000, 200, 40, 32, 256, 32);
        assert_eq!(pcb, 5);
        assert_eq!(md_r, 1_000 - 100); // savings 800 × 5/40 = 100
        assert!(md_r > 200);
    }

    #[test]
    fn scale_persistence_large_cache_gains_pcbs_up_to_ecb() {
        let (md_r, pcb) = scale_persistence(1_000, 200, 40, 100, 256, 1024);
        assert_eq!(pcb, 100, "4× scaling capped at the ECB count");
        // Savings 800 × 100/40 = 2000 > MD ⇒ residual clamps to 0.
        assert_eq!(md_r, 0);
    }

    #[test]
    fn generated_tasks_respect_scaled_invariants() {
        use rand::SeedableRng;
        for sets in [32usize, 128, 512, 1024] {
            let cfg = GeneratorConfig::paper_default()
                .with_cache_sets(sets)
                .with_per_core_utilization(0.3);
            let ts = TaskSetGenerator::new(cfg)
                .unwrap()
                .generate(&mut ChaCha8Rng::seed_from_u64(11))
                .unwrap();
            for t in ts.iter() {
                assert!(t.residual_memory_demand() <= t.memory_demand());
                assert!(t.pcb().is_subset(t.ecb()));
            }
        }
    }

    #[test]
    fn period_for_edge_cases() {
        assert_eq!(period_for(0, 0.5), 1);
        assert_eq!(period_for(100, 0.5), 200);
        assert_eq!(period_for(100, 1e-300), u64::MAX);
        // demand/utilization rounded up.
        assert_eq!(period_for(10, 0.3), 34);
    }

    proptest! {
        #[test]
        fn arbitrary_configs_generate_valid_sets(
            cores in 1usize..6,
            tpc in 1usize..10,
            util in 0.05f64..1.0,
            cache in prop::sample::select(vec![32usize, 64, 128, 256, 512, 1024]),
            seed in any::<u64>(),
        ) {
            let cfg = GeneratorConfig::paper_default()
                .with_cores(cores)
                .with_per_core_utilization(util)
                .with_cache_sets(cache);
            let cfg = GeneratorConfig { tasks_per_core: tpc, ..cfg };
            let gen = TaskSetGenerator::new(cfg).unwrap();
            let ts = gen.generate(&mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
            prop_assert_eq!(ts.len(), cores * tpc);
            for t in ts.iter() {
                prop_assert!(t.deadline() <= t.period());
                prop_assert!(t.residual_memory_demand() <= t.memory_demand());
            }
            // Priorities are unique by TaskSet construction; all cores used.
            prop_assert_eq!(ts.cores().len(), cores);
        }
    }
}
