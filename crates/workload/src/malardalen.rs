//! Mälardalen benchmark parameters (the paper's Table I and extensions).
//!
//! The paper instantiates each task from one benchmark of the Mälardalen
//! WCET suite, with `PD_i`, `MD_i`, `MD_i^r`, `UCB_i`, `ECB_i` and `PCB_i`
//! extracted by the Heptane static WCET analysis tool on a 256-set,
//! 32-byte-line direct-mapped instruction cache. Table I publishes six
//! rows; the full table lives in the authors' RTSS 2017 paper and is not
//! reproducible offline, so this module carries:
//!
//! * the six **published** rows, verbatim ([`Provenance::PublishedTable1`]);
//! * ten **synthesized** rows ([`Provenance::Synthesized`]) spanning the
//!   same parameter ranges (tiny loop kernels through cache-filling state
//!   machines), so generated task sets have the diversity the paper's full
//!   table provides. Their values respect every invariant the analysis
//!   relies on (`MD^r ≤ MD`, `PCB ⊆ ECB`, `UCB ⊆ ECB`, `ECB ≤ 256`).
//!
//! `PD`, `MD` and `MD^r` are in clock cycles as published; the analysis
//! consumes `MD`/`MD^r` as access counts, exactly as the paper's evaluation
//! does (see DESIGN.md §4 "Units").

use serde::{Deserialize, Serialize};

/// Where a benchmark's parameters come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Row printed in Table I of the DATE 2020 paper.
    PublishedTable1,
    /// Row synthesized for workload diversity (full table not public).
    Synthesized,
}

/// Per-benchmark task parameters as extracted by a static WCET/cache
/// analysis for a 256-set direct-mapped instruction cache.
///
/// (Serializable for experiment output; not deserializable because the
/// benchmark name borrows from the static table.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct BenchmarkParams {
    /// Benchmark name in the Mälardalen suite.
    pub name: &'static str,
    /// `PD_i`: worst-case execution demand (cycles, all hits).
    pub pd: u64,
    /// `MD_i`: worst-case memory access demand in isolation.
    pub md: u64,
    /// `MD_i^r`: residual memory access demand (all PCBs cached).
    pub md_r: u64,
    /// `|ECB_i|`: number of cache sets touched.
    pub ecb: usize,
    /// `|PCB_i|`: number of persistent cache blocks.
    pub pcb: usize,
    /// `|UCB_i|`: number of useful cache blocks.
    pub ucb: usize,
    /// Data provenance.
    pub provenance: Provenance,
}

impl BenchmarkParams {
    /// Checks the structural invariants the analysis relies on.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.md_r <= self.md && self.pcb <= self.ecb && self.ucb <= self.ecb && self.ecb <= 256
    }
}

/// The six rows published in Table I of the paper, verbatim.
#[must_use]
pub fn published_benchmarks() -> &'static [BenchmarkParams] {
    const P: Provenance = Provenance::PublishedTable1;
    const TABLE: [BenchmarkParams; 6] = [
        BenchmarkParams {
            name: "lcdnum",
            pd: 984,
            md: 1_440,
            md_r: 192,
            ecb: 20,
            pcb: 20,
            ucb: 20,
            provenance: P,
        },
        BenchmarkParams {
            name: "bsort100",
            pd: 710_289,
            md: 89_893,
            md_r: 88_907,
            ecb: 20,
            pcb: 20,
            ucb: 18,
            provenance: P,
        },
        BenchmarkParams {
            name: "ludcmp",
            pd: 27_036,
            md: 8_607,
            md_r: 3_545,
            ecb: 98,
            pcb: 98,
            ucb: 98,
            provenance: P,
        },
        BenchmarkParams {
            name: "fdct",
            pd: 6_550,
            md: 6_017,
            md_r: 819,
            ecb: 106,
            pcb: 22,
            ucb: 58,
            provenance: P,
        },
        BenchmarkParams {
            name: "nsichneu",
            pd: 22_009,
            md: 147_200,
            md_r: 147_200,
            ecb: 256,
            pcb: 0,
            ucb: 256,
            provenance: P,
        },
        BenchmarkParams {
            name: "statemate",
            pd: 10_586,
            md: 18_257,
            md_r: 3_891,
            ecb: 256,
            pcb: 36,
            ucb: 256,
            provenance: P,
        },
    ];
    &TABLE
}

/// The full benchmark pool used by the task-set generator: Table I plus the
/// synthesized extension rows.
#[must_use]
pub fn benchmarks() -> &'static [BenchmarkParams] {
    const P: Provenance = Provenance::PublishedTable1;
    const S: Provenance = Provenance::Synthesized;
    const TABLE: [BenchmarkParams; 16] = [
        // Published (Table I).
        BenchmarkParams {
            name: "lcdnum",
            pd: 984,
            md: 1_440,
            md_r: 192,
            ecb: 20,
            pcb: 20,
            ucb: 20,
            provenance: P,
        },
        BenchmarkParams {
            name: "bsort100",
            pd: 710_289,
            md: 89_893,
            md_r: 88_907,
            ecb: 20,
            pcb: 20,
            ucb: 18,
            provenance: P,
        },
        BenchmarkParams {
            name: "ludcmp",
            pd: 27_036,
            md: 8_607,
            md_r: 3_545,
            ecb: 98,
            pcb: 98,
            ucb: 98,
            provenance: P,
        },
        BenchmarkParams {
            name: "fdct",
            pd: 6_550,
            md: 6_017,
            md_r: 819,
            ecb: 106,
            pcb: 22,
            ucb: 58,
            provenance: P,
        },
        BenchmarkParams {
            name: "nsichneu",
            pd: 22_009,
            md: 147_200,
            md_r: 147_200,
            ecb: 256,
            pcb: 0,
            ucb: 256,
            provenance: P,
        },
        BenchmarkParams {
            name: "statemate",
            pd: 10_586,
            md: 18_257,
            md_r: 3_891,
            ecb: 256,
            pcb: 36,
            ucb: 256,
            provenance: P,
        },
        // Synthesized extension rows (see module docs).
        // Tiny straight-line / small-loop kernels: small footprints, highly
        // persistent (everything fits, no self-eviction).
        BenchmarkParams {
            name: "bs",
            pd: 445,
            md: 640,
            md_r: 64,
            ecb: 9,
            pcb: 9,
            ucb: 8,
            provenance: S,
        },
        BenchmarkParams {
            name: "fibcall",
            pd: 310,
            md: 480,
            md_r: 48,
            ecb: 7,
            pcb: 7,
            ucb: 7,
            provenance: S,
        },
        BenchmarkParams {
            name: "insertsort",
            pd: 3_892,
            md: 1_910,
            md_r: 210,
            ecb: 14,
            pcb: 14,
            ucb: 12,
            provenance: S,
        },
        // Medium loop nests: moderate footprints, mostly persistent.
        BenchmarkParams {
            name: "crc",
            pd: 38_420,
            md: 5_120,
            md_r: 1_180,
            ecb: 42,
            pcb: 38,
            ucb: 40,
            provenance: S,
        },
        BenchmarkParams {
            name: "expint",
            pd: 4_580,
            md: 2_304,
            md_r: 512,
            ecb: 26,
            pcb: 24,
            ucb: 22,
            provenance: S,
        },
        BenchmarkParams {
            name: "matmult",
            pd: 93_610,
            md: 11_520,
            md_r: 9_216,
            ecb: 33,
            pcb: 33,
            ucb: 30,
            provenance: S,
        },
        BenchmarkParams {
            name: "jfdctint",
            pd: 8_934,
            md: 7_680,
            md_r: 1_024,
            ecb: 118,
            pcb: 30,
            ucb: 64,
            provenance: S,
        },
        // Large code: big footprints with partial persistence, in the
        // statemate/nsichneu style.
        BenchmarkParams {
            name: "edn",
            pd: 64_760,
            md: 23_040,
            md_r: 6_144,
            ecb: 184,
            pcb: 60,
            ucb: 150,
            provenance: S,
        },
        BenchmarkParams {
            name: "adpcm",
            pd: 121_400,
            md: 33_280,
            md_r: 20_480,
            ecb: 230,
            pcb: 44,
            ucb: 200,
            provenance: S,
        },
        BenchmarkParams {
            name: "compress",
            pd: 45_190,
            md: 15_360,
            md_r: 8_192,
            ecb: 146,
            pcb: 52,
            ucb: 120,
            provenance: S,
        },
    ];
    &TABLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = published_benchmarks();
        assert_eq!(t.len(), 6);
        let lcdnum = t.iter().find(|b| b.name == "lcdnum").unwrap();
        assert_eq!((lcdnum.pd, lcdnum.md, lcdnum.md_r), (984, 1_440, 192));
        assert_eq!((lcdnum.ecb, lcdnum.pcb, lcdnum.ucb), (20, 20, 20));
        let nsichneu = t.iter().find(|b| b.name == "nsichneu").unwrap();
        assert_eq!(nsichneu.pcb, 0, "nsichneu has no persistent blocks");
        assert_eq!(nsichneu.md, nsichneu.md_r);
        let statemate = t.iter().find(|b| b.name == "statemate").unwrap();
        assert_eq!(statemate.ecb, 256);
    }

    #[test]
    fn every_benchmark_is_consistent() {
        for b in benchmarks() {
            assert!(b.is_consistent(), "{} violates invariants", b.name);
            assert!(b.pd > 0 && b.md > 0, "{} has empty demands", b.name);
        }
    }

    #[test]
    fn pool_contains_published_rows_verbatim() {
        let pool = benchmarks();
        for p in published_benchmarks() {
            assert!(pool.contains(p), "{} missing from pool", p.name);
        }
        assert_eq!(pool.len(), 16);
    }

    #[test]
    fn names_are_unique() {
        let pool = benchmarks();
        for (i, a) in pool.iter().enumerate() {
            for b in &pool[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn provenance_is_tracked() {
        assert!(published_benchmarks()
            .iter()
            .all(|b| b.provenance == Provenance::PublishedTable1));
        assert_eq!(
            benchmarks()
                .iter()
                .filter(|b| b.provenance == Provenance::Synthesized)
                .count(),
            10
        );
    }
}
