//! Instruction-cache models and static cache analysis — the workspace's
//! Heptane substitute.
//!
//! The paper obtains every per-task parameter (`PD`, `MD`, `MD^r`, `UCB`,
//! `ECB`, `PCB`) by running the Heptane static WCET analyzer over the
//! Mälardalen benchmarks. This crate rebuilds that extraction pipeline from
//! scratch for the synthetic programs of [`cpa_cfg`]:
//!
//! * [`concrete`] — an executable set-associative LRU cache model; the
//!   ground-truth oracle that the static analysis is validated against;
//! * [`must`] / [`may`] — abstract-interpretation *must* and *may*
//!   analyses with LRU age bounds (Ferdinand-style), classifying accesses
//!   as always-hit / always-miss ([`mod@classify`]);
//! * [`analysis`] — the structural walk over a program computing
//!   worst-case miss counts (`MD`), residual miss counts (`MD^r`),
//!   persistence (`PCB`: blocks whose cache set hosts at most
//!   *associativity* distinct blocks are never self-evicted), evicting
//!   blocks (`ECB`) and useful blocks (`UCB`);
//! * [`mod@extract`] — the public entry point bundling everything into
//!   [`ExtractedParams`] ready to instantiate a
//!   [`cpa_model::Task`].
//!
//! # Example
//!
//! ```
//! use cpa_cache::extract::extract;
//! use cpa_cfg::{Function, Stmt};
//! use cpa_model::CacheGeometry;
//!
//! // A hot loop whose working set fits: after the compulsory misses,
//! // everything persists.
//! let f = Function::builder("kernel")
//!     .block("body", 64)
//!     .code(Stmt::counted_loop(10, Stmt::block("body")))
//!     .build()?;
//! let geometry = CacheGeometry::direct_mapped(256, 32);
//! let params = extract(&f, geometry);
//! assert_eq!(params.pd, 640);
//! assert_eq!(params.md, 8);      // 64 instructions × 4 B = 8 lines
//! assert_eq!(params.md_r, 0);    // all 8 lines persist
//! assert_eq!(params.pcb.len(), 8);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analysis;
pub mod classify;
pub mod concrete;
pub mod extract;
pub mod may;
pub mod must;

pub use classify::{classify, ClassificationCensus};
pub use concrete::{AccessOutcome, CacheSim, SimulationStats};
pub use extract::{extract, ExtractedParams};
pub use may::MayCache;
pub use must::MustCache;
