//! Structural static cache analysis over synthetic programs.
//!
//! Walks a [`Function`]'s structured body threading a [`MustCache`] state,
//! producing the worst-case miss count of any execution path (loops peeled
//! into a first iteration plus a steady state, branches taking the
//! miss-maximal side with a joined out-state). On top of the walk:
//!
//! * **persistence** — a memory block is persistent iff the number of
//!   distinct program blocks mapping to its cache set is at most the
//!   associativity: the task can then never evict it itself (exact for
//!   direct-mapped caches, sound for LRU);
//! * **UCBs** — at every loop, the blocks guaranteed cached at the steady
//!   state that the loop body re-accesses; the task-level UCB set is the
//!   union over loops (the loop-carried reuse a preemption can destroy).

use std::collections::BTreeSet;

use cpa_cfg::{Code, Function};
use cpa_model::CacheGeometry;

use crate::must::MustCache;

/// Result of one structural walk.
#[derive(Debug, Clone)]
pub struct WalkOutcome {
    /// Worst-case misses of any path through the analysed code.
    pub misses: u64,
    /// Must-cache state after the code (join over paths).
    pub state: MustCache,
}

/// Memory blocks a piece of code may access (instruction footprint).
#[must_use]
pub fn blocks_accessed(function: &Function, code: &Code, geometry: CacheGeometry) -> BTreeSet<u64> {
    let mut out = BTreeSet::new();
    collect_blocks(function, code, geometry, &mut out);
    out
}

fn collect_blocks(
    function: &Function,
    code: &Code,
    geometry: CacheGeometry,
    out: &mut BTreeSet<u64>,
) {
    match code {
        Code::Block(id) => {
            for addr in function.block(*id).addresses() {
                out.insert(geometry.block_of_address(addr));
            }
        }
        Code::Seq(items) => {
            for item in items {
                collect_blocks(function, item, geometry, out);
            }
        }
        Code::Branch {
            then_branch,
            else_branch,
        } => {
            collect_blocks(function, then_branch, geometry, out);
            if let Some(e) = else_branch {
                collect_blocks(function, e, geometry, out);
            }
        }
        Code::Loop { body, .. } => collect_blocks(function, body, geometry, out),
    }
}

/// The memory blocks of `function` that are *persistent*: their cache set
/// hosts at most `associativity` distinct program blocks, so once loaded
/// the task can never evict them itself.
#[must_use]
pub fn persistent_blocks(function: &Function, geometry: CacheGeometry) -> BTreeSet<u64> {
    let all = blocks_accessed(function, function.code(), geometry);
    let mut per_set: Vec<Vec<u64>> = vec![Vec::new(); geometry.sets()];
    for &block in &all {
        per_set[(block as usize) % geometry.sets()].push(block);
    }
    per_set
        .into_iter()
        .filter(|blocks| !blocks.is_empty() && blocks.len() <= geometry.associativity())
        .flatten()
        .collect()
}

/// The analyzer: accumulates UCBs while walking.
#[derive(Debug)]
pub struct Analyzer<'a> {
    function: &'a Function,
    geometry: CacheGeometry,
    ucb_blocks: BTreeSet<u64>,
    /// Safety cap for loop fixpoints (the must lattice is finite; this
    /// trips only on implementation bugs).
    max_fixpoint_iterations: u32,
}

impl<'a> Analyzer<'a> {
    /// Creates an analyzer for one function and cache geometry.
    #[must_use]
    pub fn new(function: &'a Function, geometry: CacheGeometry) -> Self {
        Analyzer {
            function,
            geometry,
            ucb_blocks: BTreeSet::new(),
            max_fixpoint_iterations: 10_000,
        }
    }

    /// Worst-case misses starting from `state`, consuming the analyzer's
    /// UCB accumulation (call once).
    pub fn analyze(mut self, state: MustCache) -> (WalkOutcome, BTreeSet<u64>) {
        let outcome = self.walk(self.function.code(), state);
        (outcome, self.ucb_blocks)
    }

    fn walk(&mut self, code: &Code, mut state: MustCache) -> WalkOutcome {
        match code {
            Code::Block(id) => {
                let mut misses = 0;
                for addr in self.function.block(*id).addresses() {
                    let block = self.geometry.block_of_address(addr);
                    if !state.access_block(block) {
                        misses += 1;
                    }
                }
                WalkOutcome { misses, state }
            }
            Code::Seq(items) => {
                let mut misses = 0u64;
                for item in items {
                    let out = self.walk(item, state);
                    misses = misses.saturating_add(out.misses);
                    state = out.state;
                }
                WalkOutcome { misses, state }
            }
            Code::Branch {
                then_branch,
                else_branch,
            } => {
                let then_out = self.walk(then_branch, state.clone());
                let else_out = match else_branch {
                    Some(e) => self.walk(e, state),
                    None => WalkOutcome { misses: 0, state },
                };
                WalkOutcome {
                    misses: then_out.misses.max(else_out.misses),
                    state: then_out.state.join(&else_out.state),
                }
            }
            Code::Loop { bound, body } => {
                // First iteration from the incoming state.
                let first = self.walk(body, state);
                if *bound == 1 {
                    return first;
                }
                // Steady state: join of the entry states of iterations ≥ 2.
                let mut entry = first.state.clone();
                let mut iterations = 0;
                loop {
                    iterations += 1;
                    assert!(
                        iterations <= self.max_fixpoint_iterations,
                        "loop fixpoint did not converge (bug)"
                    );
                    let out = self.walk(body, entry.clone());
                    let joined = entry.join(&out.state);
                    if joined == entry {
                        break;
                    }
                    entry = joined;
                }
                // UCBs: what the steady state keeps across the back edge
                // and the body re-reads — exactly the reuse a preemption in
                // the loop destroys.
                let body_blocks = blocks_accessed(self.function, body, self.geometry);
                self.ucb_blocks
                    .extend(entry.resident_blocks().filter(|b| body_blocks.contains(b)));
                let steady = self.walk(body, entry);
                WalkOutcome {
                    misses: first
                        .misses
                        .saturating_add(steady.misses.saturating_mul(u64::from(*bound - 1))),
                    state: steady.state,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_cfg::Stmt;

    fn dm(sets: usize) -> CacheGeometry {
        // 4-byte instructions, 16-byte lines: 4 instructions per block.
        CacheGeometry::direct_mapped(sets, 16)
    }

    fn kernel(loop_bound: u32, body_instr: u32) -> Function {
        Function::builder("k")
            .block("body", body_instr)
            .code(Stmt::counted_loop(loop_bound, Stmt::block("body")))
            .build()
            .unwrap()
    }

    #[test]
    fn fitting_loop_misses_only_compulsory() {
        // 16 instructions = 4 lines; 8-set cache: fits.
        let f = kernel(10, 16);
        let (out, ucb) = Analyzer::new(&f, dm(8)).analyze(MustCache::cold(dm(8)));
        assert_eq!(out.misses, 4);
        // All 4 lines are loop-carried useful blocks.
        assert_eq!(ucb.len(), 4);
    }

    #[test]
    fn thrashing_loop_misses_every_iteration() {
        // 16 lines in a 8-set direct-mapped cache: every set has 2 blocks,
        // each iteration reloads everything.
        let f = kernel(5, 64);
        let (out, ucb) = Analyzer::new(&f, dm(8)).analyze(MustCache::cold(dm(8)));
        assert_eq!(out.misses, 5 * 16);
        // The UCB definition over-approximates: the 8 blocks resident at
        // the back edge are counted useful even though the next iteration
        // evicts them before their reuse. Over-approximation only inflates
        // γ (sound for CRPD).
        assert_eq!(ucb.len(), 8);
        // And nothing is persistent.
        assert!(persistent_blocks(&f, dm(8)).is_empty());
    }

    #[test]
    fn branch_takes_worst_and_joins() {
        // Loop over a branch: then-side 2 lines, else-side 1 line.
        let f = Function::builder("b")
            .block("t", 8)
            .block("e", 4)
            .code(Stmt::counted_loop(
                4,
                Stmt::branch(Stmt::block("t"), Some(Stmt::block("e"))),
            ))
            .build()
            .unwrap();
        let g = dm(16);
        let (out, _) = Analyzer::new(&f, g).analyze(MustCache::cold(g));
        // The must-join intersects the branch out-states: a path that took
        // "t" never loaded "e" and vice versa, so *nothing* is guaranteed
        // at the loop back edge and every iteration is charged the heavier
        // side again: 2 + 3·2 = 8. (The persistence analysis recovers the
        // reuse this path-insensitive join loses: all three lines map to
        // distinct sets, so they are all PCBs and MD^r = 0.)
        assert_eq!(out.misses, 8);
        let persistent = persistent_blocks(&f, g);
        assert_eq!(persistent.len(), 3);
        let (warm, _) = Analyzer::new(&f, g).analyze(MustCache::seeded(g, persistent));
        assert_eq!(warm.misses, 0);
    }

    #[test]
    fn sequence_accumulates_and_blocks_span_lines() {
        let f = Function::builder("s")
            .block("a", 6) // 24 bytes → lines 0,1 (addresses 0..24)
            .block("b", 2) // 8 bytes → line 1 continues (addresses 24..32)
            .code(Stmt::seq([Stmt::block("a"), Stmt::block("b")]))
            .build()
            .unwrap();
        let g = dm(8);
        let (out, _) = Analyzer::new(&f, g).analyze(MustCache::cold(g));
        // Lines: a touches blocks 0 (addr 0..16) and 1 (16..24); b touches
        // block 1 (24..32): 2 compulsory misses total.
        assert_eq!(out.misses, 2);
        assert_eq!(blocks_accessed(&f, f.code(), g), BTreeSet::from([0u64, 1]));
    }

    #[test]
    fn persistence_counts_set_occupancy() {
        // 8 lines over a 4-set cache: sets 0..4 each host 2 blocks → none
        // persistent. Over an 8-set cache all persist.
        let f = kernel(2, 32);
        assert!(persistent_blocks(&f, dm(4)).is_empty());
        assert_eq!(persistent_blocks(&f, dm(8)).len(), 8);
        // 2-way associative 4-set cache: 2 blocks per set fit.
        let g2 = CacheGeometry::set_associative(4, 16, 2);
        assert_eq!(persistent_blocks(&f, g2).len(), 8);
    }

    #[test]
    fn seeded_state_reduces_misses() {
        let g = dm(8);
        let f = kernel(10, 16);
        let persistent = persistent_blocks(&f, g);
        let (cold, _) = Analyzer::new(&f, g).analyze(MustCache::cold(g));
        let (warm, _) = Analyzer::new(&f, g).analyze(MustCache::seeded(g, persistent));
        assert_eq!(cold.misses, 4);
        assert_eq!(warm.misses, 0, "all persistent blocks preloaded");
    }

    #[test]
    fn if_without_else_keeps_entry_guarantees() {
        let f = Function::builder("i")
            .block("a", 4)
            .block("maybe", 4)
            .code(Stmt::seq([
                Stmt::block("a"),
                Stmt::branch(Stmt::block("maybe"), None),
                Stmt::block("a"),
            ]))
            .build()
            .unwrap();
        let g = dm(8);
        let (out, _) = Analyzer::new(&f, g).analyze(MustCache::cold(g));
        // a: 1 miss; maybe: 1 miss on the worst path; the re-access of a is
        // a guaranteed hit on both paths.
        assert_eq!(out.misses, 2);
    }
}
