//! Parameter extraction: the public Heptane-substitute entry point.

use cpa_cfg::Function;
use cpa_model::{CacheBlockSet, CacheGeometry, CoreId, ModelError, Priority, Task, Time};

use crate::analysis::{blocks_accessed, persistent_blocks, Analyzer};
use crate::must::MustCache;

/// Every parameter the bus-contention analysis needs for one task,
/// extracted from a synthetic program by static cache analysis.
///
/// Field semantics match §II/§IV of the paper (and
/// [`cpa_model::Task`]); block sets are at cache-set granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedParams {
    /// `PD`: worst-case execution demand in cycles (1 cycle per
    /// instruction, memory time excluded).
    pub pd: u64,
    /// `MD`: worst-case main-memory accesses of one job from a cold cache.
    pub md: u64,
    /// `MD^r`: worst-case accesses when all persistent blocks are cached.
    pub md_r: u64,
    /// `ECB`: cache sets the program touches.
    pub ecb: CacheBlockSet,
    /// `UCB`: cache sets carrying loop reuse (see
    /// [`crate::analysis::Analyzer`]).
    pub ucb: CacheBlockSet,
    /// `PCB`: cache sets hosting persistent blocks.
    pub pcb: CacheBlockSet,
    /// Number of distinct persistent memory blocks (equals `pcb.len()` for
    /// direct-mapped caches; can exceed it for associative ones).
    pub pcb_block_count: usize,
}

impl ExtractedParams {
    /// Instantiates a schedulable [`Task`] from the extracted parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError`]s from the task builder (e.g. a deadline
    /// longer than the period).
    pub fn to_task(
        &self,
        name: impl Into<String>,
        period: Time,
        deadline: Time,
        core: CoreId,
        priority: Priority,
    ) -> Result<Task, ModelError> {
        Task::builder(name)
            .processing_demand(Time::from_cycles(self.pd))
            .memory_demand(self.md)
            .residual_memory_demand(self.md_r)
            .period(period)
            .deadline(deadline)
            .core(core)
            .priority(priority)
            .ecb(self.ecb.clone())
            .ucb(self.ucb.clone())
            .pcb(self.pcb.clone())
            .build()
    }
}

/// Runs the full extraction pipeline on one program: must analysis from a
/// cold cache (→ `MD`), from a persistence-seeded cache (→ `MD^r`),
/// set-occupancy persistence (→ `PCB`), footprint (→ `ECB`) and
/// loop-reuse (→ `UCB`).
///
/// See the crate-level example.
#[must_use]
pub fn extract(function: &Function, geometry: CacheGeometry) -> ExtractedParams {
    let _span = cpa_obs::span!("cache.extract");
    let (cold, ucb_blocks) = {
        let _span = cpa_obs::span!("cache.must_cold");
        Analyzer::new(function, geometry).analyze(MustCache::cold(geometry))
    };
    let persistent = {
        let _span = cpa_obs::span!("cache.persistence");
        persistent_blocks(function, geometry)
    };
    let (warm, _) = {
        let _span = cpa_obs::span!("cache.must_warm");
        Analyzer::new(function, geometry)
            .analyze(MustCache::seeded(geometry, persistent.iter().copied()))
    };

    let set_of = |block: u64| (block as usize) % geometry.sets();
    let footprint = blocks_accessed(function, function.code(), geometry);
    let ecb = CacheBlockSet::from_blocks(geometry.sets(), footprint.iter().map(|&b| set_of(b)))
        .expect("set indices are in range by construction");
    let ucb = CacheBlockSet::from_blocks(geometry.sets(), ucb_blocks.iter().map(|&b| set_of(b)))
        .expect("set indices are in range by construction");
    let pcb = CacheBlockSet::from_blocks(geometry.sets(), persistent.iter().map(|&b| set_of(b)))
        .expect("set indices are in range by construction");

    let md = cold.misses;
    // Monotone by construction (a seeded state only adds guarantees), but
    // clamp to keep the Task invariant airtight.
    let md_r = warm.misses.min(md);
    debug_assert!(warm.misses <= md, "seeding must not increase misses");

    cpa_obs::event!(
        "cache.extract",
        function = function.name(),
        sets = geometry.sets(),
        md = md,
        md_r = md_r,
        ecb = ecb.len(),
        ucb = ucb.len(),
        pcb = pcb.len(),
    );
    ExtractedParams {
        pd: function.worst_case_instruction_count(),
        md,
        md_r,
        ecb,
        ucb,
        pcb,
        pcb_block_count: persistent.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::CacheSim;
    use cpa_cfg::{trace, DecisionPolicy, ProgramGenerator, ProgramShape, Stmt};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn geometry() -> CacheGeometry {
        CacheGeometry::direct_mapped(64, 16)
    }

    fn fitting_kernel() -> Function {
        Function::builder("k")
            .block("init", 8)
            .block("body", 32)
            .code(Stmt::seq([
                Stmt::block("init"),
                Stmt::counted_loop(20, Stmt::block("body")),
            ]))
            .build()
            .unwrap()
    }

    #[test]
    fn extraction_of_fitting_kernel() {
        let p = extract(&fitting_kernel(), geometry());
        assert_eq!(p.pd, 8 + 20 * 32);
        // 40 instructions × 4 B = 160 B = 10 lines, all fitting distinct sets.
        assert_eq!(p.md, 10);
        assert_eq!(p.md_r, 0);
        assert_eq!(p.ecb.len(), 10);
        assert_eq!(p.pcb.len(), 10);
        assert_eq!(p.pcb_block_count, 10);
        // Loop-carried reuse: the 8 lines of "body".
        assert_eq!(p.ucb.len(), 8);
        assert!(p.ucb.is_subset(&p.ecb));
        assert!(p.pcb.is_subset(&p.ecb));
    }

    #[test]
    fn to_task_round_trip() {
        let p = extract(&fitting_kernel(), geometry());
        let t = p
            .to_task(
                "k",
                Time::from_cycles(10_000),
                Time::from_cycles(10_000),
                CoreId::new(0),
                Priority::new(1),
            )
            .unwrap();
        assert_eq!(t.memory_demand(), p.md);
        assert_eq!(t.residual_memory_demand(), p.md_r);
        assert_eq!(t.ecb(), &p.ecb);
    }

    #[test]
    fn bigger_cache_means_more_persistence() {
        // The Fig. 3c mechanism, reproduced by actual re-extraction.
        let gen = ProgramGenerator::new();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let f = gen.generate(ProgramShape::StateMachine, &mut rng).unwrap();
        let small = extract(&f, CacheGeometry::direct_mapped(16, 16));
        let large = extract(&f, CacheGeometry::direct_mapped(1024, 16));
        assert!(large.pcb_block_count >= small.pcb_block_count);
        assert!(large.md_r <= small.md_r.max(large.md));
        assert!(large.md <= small.md);
    }

    /// The headline soundness check: for every program shape and many
    /// random branch decisions, the concrete cache never misses more than
    /// the static bounds promise.
    #[test]
    fn static_bounds_dominate_concrete_execution() {
        let gen = ProgramGenerator::new();
        let g = geometry();
        for shape in ProgramShape::all() {
            for seed in 0..5u64 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let f = gen.generate(shape, &mut rng).unwrap();
                let p = extract(&f, g);
                for trace_seed in 0..5u64 {
                    // A run of 4 jobs with independent branch decisions,
                    // sharing the cache (no interference in between).
                    let jobs = 4u64;
                    let mut cache = CacheSim::new(g);
                    let mut cumulative = 0u64;
                    for job in 0..jobs {
                        let t = trace::generate(
                            &f,
                            DecisionPolicy::Random {
                                seed: trace_seed * 31 + job,
                            },
                        );
                        let s = cache.run_trace(&t);
                        // Every single job is bounded by MD ...
                        assert!(
                            s.misses <= p.md,
                            "{shape:?}/{seed}/{trace_seed}: {} > MD {}",
                            s.misses,
                            p.md
                        );
                        cumulative += s.misses;
                        // ... and ECB covers every touched set.
                        for addr in t.iter() {
                            assert!(p.ecb.contains(g.set_of_address(addr)));
                        }
                    }
                    // Across successive jobs this is exactly Eq. (10):
                    // persistent blocks miss at most once ever, and each
                    // job's non-persistent misses are bounded by MD^r
                    // (MD^r is computed with only the PCBs cached — the
                    // worst case for every non-persistent access).
                    let md_hat = (jobs * p.md).min(jobs * p.md_r + p.pcb_block_count as u64);
                    assert!(
                        cumulative <= md_hat,
                        "{shape:?}/{seed}/{trace_seed}: cumulative {} > M\u{302}D({jobs}) = {}",
                        cumulative,
                        md_hat
                    );
                }
            }
        }
    }

    #[test]
    fn worst_case_trace_attains_pd() {
        let f = fitting_kernel();
        let t = trace::generate(&f, DecisionPolicy::HeaviestPath);
        let p = extract(&f, geometry());
        assert_eq!(t.len() as u64, p.pd);
    }

    proptest! {
        /// Invariants across random programs and geometries.
        #[test]
        fn extraction_invariants(
            shape_idx in 0usize..4,
            seed in 0u64..500,
            sets in prop::sample::select(vec![16usize, 32, 64, 128]),
        ) {
            let shape = ProgramShape::all()[shape_idx];
            let g = CacheGeometry::direct_mapped(sets, 16);
            let f = ProgramGenerator::new()
                .generate(shape, &mut ChaCha8Rng::seed_from_u64(seed))
                .unwrap();
            let p = extract(&f, g);
            prop_assert!(p.md_r <= p.md);
            prop_assert!(p.ucb.is_subset(&p.ecb));
            prop_assert!(p.pcb.is_subset(&p.ecb));
            // (No `md ≥ |ECB|` invariant: ECB covers every path's
            // footprint while MD only charges the miss-heaviest path.)
            prop_assert!(p.pd >= p.md, "1 instruction per cycle, ≥1 instruction per line");
            // Persistent blocks, once loaded, account for md - md_r ≥ 0
            // savings; pcb_block_count bounds the per-set representation.
            prop_assert!(p.pcb_block_count >= p.pcb.len());
        }
    }
}
