//! Access classification: always-hit / always-miss / unclassified.
//!
//! Combines the [`must`](crate::must) and [`may`](crate::may) analyses in
//! one structural walk and counts, per dynamic execution context (loops
//! peeled into first iteration + steady state, both branch sides
//! counted), how each instruction access classifies:
//!
//! * **always hit** — the block is in the must cache;
//! * **always miss** — the block is not even in the may cache;
//! * **unclassified** — neither analysis decides (e.g. conflicting blocks
//!   across unknown branches).
//!
//! This census is the standard WCET-analyzer diagnostic for *why* a
//! program's `MD` is what it is: `nsichneu`-style state machines are
//! dominated by unclassified/always-miss accesses (no persistence), loop
//! kernels by always-hits after a compulsory first iteration.

use cpa_cfg::{Code, Function};
use cpa_model::CacheGeometry;

use crate::may::MayCache;
use crate::must::MustCache;

/// Classification counts, weighted by loop execution counts (both branch
/// sides counted — a census over execution contexts, not a worst-case
/// path count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassificationCensus {
    /// Accesses guaranteed to hit.
    pub always_hit: u64,
    /// Accesses guaranteed to miss.
    pub always_miss: u64,
    /// Accesses neither analysis can decide.
    pub unclassified: u64,
}

impl ClassificationCensus {
    /// Total classified accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.always_hit + self.always_miss + self.unclassified
    }

    /// Fraction of accesses decided either way (analysis precision).
    #[must_use]
    pub fn decided_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.always_hit + self.always_miss) as f64 / total as f64
        }
    }

    fn add(&mut self, other: ClassificationCensus) {
        self.always_hit += other.always_hit;
        self.always_miss += other.always_miss;
        self.unclassified += other.unclassified;
    }

    fn scaled(self, factor: u64) -> ClassificationCensus {
        ClassificationCensus {
            always_hit: self.always_hit * factor,
            always_miss: self.always_miss * factor,
            unclassified: self.unclassified * factor,
        }
    }
}

#[derive(Clone)]
struct PairState {
    must: MustCache,
    may: MayCache,
}

impl PairState {
    fn join(&self, other: &PairState) -> PairState {
        PairState {
            must: self.must.join(&other.must),
            may: self.may.join(&other.may),
        }
    }
}

/// Runs the combined must/may classification over a whole function from a
/// cold cache.
///
/// # Example
///
/// ```
/// use cpa_cache::classify;
/// use cpa_cfg::{Function, Stmt};
/// use cpa_model::CacheGeometry;
///
/// // 8 lines looping 10× in a fitting cache: 8 compulsory always-misses,
/// // everything else always hits.
/// let f = Function::builder("kernel")
///     .block("body", 64)
///     .code(Stmt::counted_loop(10, Stmt::block("body")))
///     .build()?;
/// let census = classify::classify(&f, CacheGeometry::direct_mapped(256, 32));
/// assert_eq!(census.always_miss, 8);
/// assert_eq!(census.unclassified, 0);
/// assert_eq!(census.always_hit, 640 - 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn classify(function: &Function, geometry: CacheGeometry) -> ClassificationCensus {
    let _span = cpa_obs::span!("cache.classify");
    let state = PairState {
        must: MustCache::cold(geometry),
        may: MayCache::cold(geometry),
    };
    let mut census = ClassificationCensus::default();
    walk(function, function.code(), geometry, state, &mut census);
    census
}

fn walk(
    function: &Function,
    code: &Code,
    geometry: CacheGeometry,
    mut state: PairState,
    census: &mut ClassificationCensus,
) -> PairState {
    match code {
        Code::Block(id) => {
            for addr in function.block(*id).addresses() {
                let block = geometry.block_of_address(addr);
                let hit = state.must.access_block(block);
                let miss = state.may.access_block(block);
                if hit {
                    census.always_hit += 1;
                } else if miss {
                    census.always_miss += 1;
                } else {
                    census.unclassified += 1;
                }
            }
            state
        }
        Code::Seq(items) => {
            for item in items {
                state = walk(function, item, geometry, state, census);
            }
            state
        }
        Code::Branch {
            then_branch,
            else_branch,
        } => {
            let then_state = walk(function, then_branch, geometry, state.clone(), census);
            let else_state = match else_branch {
                Some(e) => walk(function, e, geometry, state, census),
                None => state,
            };
            then_state.join(&else_state)
        }
        Code::Loop { bound, body } => {
            // First iteration from the incoming state, censused once.
            let mut first_census = ClassificationCensus::default();
            let first_state = walk(function, body, geometry, state, &mut first_census);
            census.add(first_census);
            if *bound == 1 {
                return first_state;
            }
            // Steady state over the remaining iterations.
            let mut entry = first_state;
            for _ in 0..10_000 {
                let mut scratch = ClassificationCensus::default();
                let out = walk(function, body, geometry, entry.clone(), &mut scratch);
                let joined = entry.join(&out);
                if joined.must == entry.must && joined.may == entry.may {
                    break;
                }
                entry = joined;
            }
            let mut steady_census = ClassificationCensus::default();
            let out = walk(function, body, geometry, entry, &mut steady_census);
            census.add(steady_census.scaled(u64::from(*bound - 1)));
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_cfg::{ProgramGenerator, ProgramShape, Stmt};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn dm(sets: usize) -> CacheGeometry {
        CacheGeometry::direct_mapped(sets, 16)
    }

    #[test]
    fn fitting_kernel_is_fully_decided() {
        let f = Function::builder("k")
            .block("body", 16)
            .code(Stmt::counted_loop(5, Stmt::block("body")))
            .build()
            .unwrap();
        let c = classify(&f, dm(8));
        assert_eq!(c.always_miss, 4, "compulsory misses");
        assert_eq!(c.always_hit, 5 * 16 - 4);
        assert_eq!(c.unclassified, 0);
        assert!((c.decided_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thrashing_loop_is_all_misses_after_analysis() {
        // 8 lines in a 4-set direct-mapped cache: each set flip-flops
        // between two blocks every iteration — the may cache still admits
        // them (they were loaded), but the must cache never does. The
        // accesses to freshly evicted blocks are certain misses.
        let f = Function::builder("k")
            .block("body", 32)
            .code(Stmt::counted_loop(3, Stmt::block("body")))
            .build()
            .unwrap();
        let c = classify(&f, dm(4));
        assert_eq!(c.always_hit, 3 * 32 - 3 * 8, "within-line hits remain");
        assert_eq!(c.always_miss, 3 * 8, "every line reload is certain");
        assert_eq!(c.unclassified, 0);
    }

    #[test]
    fn unknown_branches_produce_unclassified() {
        // Layout over a 2-set cache (16-byte lines, 4 instructions each):
        // a → block 0 (set 0), x → block 1 (set 1), y → block 2 (set 0).
        // The then-side (y) evicts a, the else-side (x) keeps it, so the
        // re-read of a is neither always-hit nor always-miss.
        let f = Function::builder("b")
            .block("a", 4)
            .block("x", 4)
            .block("y", 4)
            .code(Stmt::seq([
                Stmt::block("a"),
                Stmt::branch(Stmt::block("y"), Some(Stmt::block("x"))),
                Stmt::block("a"),
            ]))
            .build()
            .unwrap();
        let c = classify(&f, dm(2));
        assert_eq!(c.unclassified, 1, "exactly the re-read of `a`");
        // With a single-set cache both sides evict `a`: the re-read
        // becomes a *certain* miss instead.
        let c1 = classify(&f, dm(1));
        assert_eq!(c1.unclassified, 0);
        assert!(c1.always_miss > c.always_miss);
    }

    #[test]
    fn census_totals_match_execution_contexts() {
        // Census counts both branch sides: loop(2){ if A else B } over
        // disjoint sets.
        let f = Function::builder("x")
            .block("a", 4)
            .block("b", 4)
            .code(Stmt::counted_loop(
                2,
                Stmt::branch(Stmt::block("a"), Some(Stmt::block("b"))),
            ))
            .build()
            .unwrap();
        let c = classify(&f, dm(8));
        // 8 accesses per iteration censused (both sides), 2 iterations.
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn generated_programs_classify_consistently() {
        let generator = ProgramGenerator::new();
        for shape in ProgramShape::all() {
            for seed in 0..4 {
                let f = generator
                    .generate(shape, &mut ChaCha8Rng::seed_from_u64(seed))
                    .unwrap();
                let c = classify(&f, CacheGeometry::direct_mapped(64, 16));
                assert!(c.total() > 0);
                assert!(c.decided_fraction() >= 0.0 && c.decided_fraction() <= 1.0);
                // At least the compulsory first accesses are decided.
                assert!(c.always_miss > 0, "{shape:?}/{seed}");
            }
        }
    }
}
