//! Abstract *must* cache analysis with LRU age bounds (Ferdinand-style).
//!
//! The must cache maps each resident memory block to an **upper bound on
//! its LRU age** (0 = most recently used). A block with a bound below the
//! associativity is guaranteed resident on every path — an access to it is
//! an *always hit*. Joins at control-flow merges intersect the residents
//! and take the worse (larger) age bound.

use std::collections::BTreeMap;

use cpa_model::CacheGeometry;

/// Abstract must-cache state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MustCache {
    geometry: CacheGeometry,
    /// Per cache set: block → upper bound on LRU age (`< associativity`).
    sets: Vec<BTreeMap<u64, u8>>,
}

impl MustCache {
    /// The empty (cold) must cache: nothing is guaranteed resident.
    #[must_use]
    pub fn cold(geometry: CacheGeometry) -> Self {
        MustCache {
            sets: vec![BTreeMap::new(); geometry.sets()],
            geometry,
        }
    }

    /// A must cache pre-seeded with `blocks`, each given the weakest
    /// still-resident age bound that the *number of blocks sharing its
    /// set* allows. Used to model "all PCBs already cached" for the
    /// `MD^r` computation.
    #[must_use]
    pub fn seeded<I: IntoIterator<Item = u64>>(geometry: CacheGeometry, blocks: I) -> Self {
        let mut state = MustCache::cold(geometry);
        let mut per_set: Vec<Vec<u64>> = vec![Vec::new(); geometry.sets()];
        for block in blocks {
            let set = (block as usize) % geometry.sets();
            if !per_set[set].contains(&block) {
                per_set[set].push(block);
            }
        }
        for (set, blocks) in per_set.into_iter().enumerate() {
            let count = blocks.len();
            if count == 0 || count > geometry.associativity() {
                // More seeds than ways can hold: nothing is guaranteed.
                continue;
            }
            for block in blocks {
                state.sets[set].insert(block, (count - 1) as u8);
            }
        }
        state
    }

    /// The geometry this state is for.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// `true` if `block` is guaranteed resident.
    #[must_use]
    pub fn contains_block(&self, block: u64) -> bool {
        let set = (block as usize) % self.geometry.sets();
        self.sets[set].contains_key(&block)
    }

    /// Number of blocks guaranteed resident across all sets.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.sets.iter().map(BTreeMap::len).sum()
    }

    /// Iterates over all guaranteed-resident blocks.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets.iter().flat_map(|s| s.keys().copied())
    }

    /// Applies an access to `block`: returns `true` if the access is an
    /// **always hit** (the block was guaranteed resident), updating the
    /// age bounds per the LRU must-update rule.
    pub fn access_block(&mut self, block: u64) -> bool {
        let assoc = self.geometry.associativity() as u8;
        let set = (block as usize) % self.geometry.sets();
        let entries = &mut self.sets[set];
        let old_age = entries.get(&block).copied();
        let hit = old_age.is_some();
        // Blocks younger than the accessed block's (old) age get older;
        // if the block was not guaranteed resident its age is unbounded,
        // so every resident ages.
        let threshold = old_age.unwrap_or(assoc);
        entries.retain(|&b, age| {
            if b == block {
                return true;
            }
            if *age < threshold {
                *age += 1;
            }
            *age < assoc
        });
        entries.insert(block, 0);
        hit
    }

    /// Joins two states at a control-flow merge: intersection of residents
    /// with the worse age bound.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    #[must_use]
    pub fn join(&self, other: &MustCache) -> MustCache {
        assert_eq!(
            self.geometry, other.geometry,
            "cannot join must caches of different geometries"
        );
        let sets = self
            .sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| {
                a.iter()
                    .filter_map(|(&block, &age_a)| {
                        b.get(&block).map(|&age_b| (block, age_a.max(age_b)))
                    })
                    .collect()
            })
            .collect();
        MustCache {
            geometry: self.geometry,
            sets,
        }
    }

    /// Removes every block mapping to one of the given cache sets (the
    /// effect of a preemption by tasks whose ECBs cover those sets).
    pub fn evict_sets<I: IntoIterator<Item = usize>>(&mut self, sets: I) {
        for s in sets {
            if s < self.sets.len() {
                self.sets[s].clear();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{AccessOutcome, CacheSim};
    use proptest::prelude::*;

    fn dm(sets: usize) -> CacheGeometry {
        CacheGeometry::direct_mapped(sets, 16)
    }

    #[test]
    fn cold_then_hit() {
        let mut m = MustCache::cold(dm(4));
        assert!(!m.access_block(0), "first access is not a guaranteed hit");
        assert!(m.access_block(0), "second access is");
        assert!(m.contains_block(0));
        assert_eq!(m.resident_count(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut m = MustCache::cold(dm(4));
        m.access_block(0);
        m.access_block(4); // same set
        assert!(!m.contains_block(0));
        assert!(m.contains_block(4));
    }

    #[test]
    fn lru_aging_two_way() {
        let g = CacheGeometry::set_associative(1, 16, 2);
        let mut m = MustCache::cold(g);
        m.access_block(0);
        m.access_block(1);
        assert!(m.contains_block(0) && m.contains_block(1));
        // A third block evicts the oldest (block 0).
        m.access_block(2);
        assert!(!m.contains_block(0));
        assert!(m.contains_block(1) && m.contains_block(2));
        // Re-touching 1 keeps it young: loading 3 evicts 2.
        assert!(m.access_block(1));
        m.access_block(3);
        assert!(m.contains_block(1) && m.contains_block(3) && !m.contains_block(2));
    }

    #[test]
    fn join_intersects_with_worse_age() {
        let g = CacheGeometry::set_associative(1, 16, 2);
        let mut a = MustCache::cold(g);
        a.access_block(0);
        a.access_block(1); // ages: 1→0, 0→1
        let mut b = MustCache::cold(g);
        b.access_block(1);
        b.access_block(0); // ages: 0→0, 1→1
        let j = a.join(&b);
        assert!(j.contains_block(0) && j.contains_block(1));
        // Both have the worst age 1: one more access to a new block must
        // evict both conservatively.
        let mut j2 = j.clone();
        j2.access_block(2);
        assert!(!j2.contains_block(0) && !j2.contains_block(1));

        // Intersection drops one-sided residents.
        let mut c = MustCache::cold(g);
        c.access_block(7);
        assert_eq!(a.join(&c).resident_count(), 0);
    }

    #[test]
    fn seeded_respects_capacity() {
        let g = CacheGeometry::direct_mapped(4, 16);
        let m = MustCache::seeded(g, [0u64, 1, 2]);
        assert_eq!(m.resident_count(), 3);
        assert!(m.contains_block(0));
        // Two blocks in the same direct-mapped set cannot both be seeded.
        let m = MustCache::seeded(g, [0u64, 4]);
        assert_eq!(m.resident_count(), 0);
        // Duplicates collapse.
        let m = MustCache::seeded(g, [3u64, 3]);
        assert_eq!(m.resident_count(), 1);
    }

    #[test]
    fn evict_sets_clears() {
        let mut m = MustCache::cold(dm(4));
        m.access_block(0);
        m.access_block(1);
        m.evict_sets([0usize, 17]);
        assert!(!m.contains_block(0));
        assert!(m.contains_block(1));
    }

    proptest! {
        /// Soundness against the concrete cache: whatever the must cache
        /// classifies as a guaranteed hit must hit in a concrete cache that
        /// executed the same access sequence from cold.
        #[test]
        fn must_hits_are_concrete_hits(
            trace in proptest::collection::vec(0u64..32, 1..200),
            assoc in 1usize..4,
        ) {
            let g = CacheGeometry::set_associative(4, 16, assoc);
            let mut concrete = CacheSim::new(g);
            let mut must = MustCache::cold(g);
            for &block in &trace {
                let guaranteed = must.contains_block(block);
                let outcome = concrete.access_block(block);
                if guaranteed {
                    prop_assert_eq!(outcome, AccessOutcome::Hit);
                }
                must.access_block(block);
            }
        }

        /// The join is a sound lower bound: joining with anything can only
        /// remove guarantees, never add them.
        #[test]
        fn join_only_weakens(
            a in proptest::collection::vec(0u64..32, 0..50),
            b in proptest::collection::vec(0u64..32, 0..50),
        ) {
            let g = CacheGeometry::set_associative(4, 16, 2);
            let mut ma = MustCache::cold(g);
            for &x in &a { ma.access_block(x); }
            let mut mb = MustCache::cold(g);
            for &x in &b { mb.access_block(x); }
            let j = ma.join(&mb);
            for block in j.resident_blocks() {
                prop_assert!(ma.contains_block(block));
                prop_assert!(mb.contains_block(block));
            }
            // Join is commutative.
            prop_assert_eq!(j, mb.join(&ma));
        }
    }
}
