//! Abstract *may* cache analysis with LRU age bounds.
//!
//! The dual of [`crate::must`]: the may cache maps each possibly-resident
//! memory block to a **lower bound on its LRU age**. A block absent from
//! the may cache is guaranteed absent from the concrete cache on every
//! path — an access to it is an *always miss*. Joins at control-flow
//! merges union the residents and keep the better (smaller) age bound.
//!
//! Aging is applied only when it is guaranteed on every path (the lower
//! bound must never overtake the concrete age), so blocks linger in the
//! may cache conservatively.

use std::collections::BTreeMap;

use cpa_model::CacheGeometry;

/// Abstract may-cache state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MayCache {
    geometry: CacheGeometry,
    /// Per cache set: block → lower bound on LRU age (`< associativity`).
    sets: Vec<BTreeMap<u64, u8>>,
}

impl MayCache {
    /// The empty (cold) may cache: nothing can be resident.
    #[must_use]
    pub fn cold(geometry: CacheGeometry) -> Self {
        MayCache {
            sets: vec![BTreeMap::new(); geometry.sets()],
            geometry,
        }
    }

    /// The geometry this state is for.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// `true` if `block` may be resident (false ⇒ guaranteed miss).
    #[must_use]
    pub fn contains_block(&self, block: u64) -> bool {
        let set = (block as usize) % self.geometry.sets();
        self.sets[set].contains_key(&block)
    }

    /// Number of possibly-resident blocks.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.sets.iter().map(BTreeMap::len).sum()
    }

    /// Iterates over all possibly-resident blocks.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.sets.iter().flat_map(|s| s.keys().copied())
    }

    /// Applies an access to `block`; returns `true` if the access was a
    /// *guaranteed miss* (the block was not even possibly resident).
    pub fn access_block(&mut self, block: u64) -> bool {
        let assoc = self.geometry.associativity() as u8;
        let set = (block as usize) % self.geometry.sets();
        let entries = &mut self.sets[set];
        let old_age = entries.get(&block).copied();
        let guaranteed_miss = old_age.is_none();
        // A resident block `c`'s *minimal possible age* grows only when no
        // scenario lets it stay: if `ǎ(c) > ǎ(b)`, `c` may sit behind `b`
        // (positions are distinct) and keep its age; if `ǎ(c) ≤ ǎ(b)`, the
        // best case still has `c` in front of `b`, so it certainly ages.
        // On a guaranteed miss every resident ages (insert at front).
        let threshold = old_age.unwrap_or(assoc);
        entries.retain(|&b, age| {
            if b == block {
                return true;
            }
            if *age <= threshold {
                *age += 1;
            }
            *age < assoc
        });
        entries.insert(block, 0);
        guaranteed_miss
    }

    /// Joins two states at a control-flow merge: union of residents with
    /// the better (smaller) age bound.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    #[must_use]
    pub fn join(&self, other: &MayCache) -> MayCache {
        assert_eq!(
            self.geometry, other.geometry,
            "cannot join may caches of different geometries"
        );
        let sets = self
            .sets
            .iter()
            .zip(&other.sets)
            .map(|(a, b)| {
                let mut merged = a.clone();
                for (&block, &age) in b {
                    merged
                        .entry(block)
                        .and_modify(|existing| *existing = (*existing).min(age))
                        .or_insert(age);
                }
                merged
            })
            .collect();
        MayCache {
            geometry: self.geometry,
            sets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{AccessOutcome, CacheSim};
    use proptest::prelude::*;

    fn dm(sets: usize) -> CacheGeometry {
        CacheGeometry::direct_mapped(sets, 16)
    }

    #[test]
    fn cold_guarantees_miss_then_possible_hit() {
        let mut m = MayCache::cold(dm(4));
        assert!(m.access_block(0), "cold access is a guaranteed miss");
        assert!(!m.access_block(0), "now possibly resident");
        assert!(m.contains_block(0));
    }

    #[test]
    fn direct_mapped_conflict_certainly_evicts() {
        let mut m = MayCache::cold(dm(4));
        m.access_block(0);
        m.access_block(4); // same set, guaranteed miss ⇒ 0 certainly ages out
        assert!(!m.contains_block(0));
        assert!(m.contains_block(4));
    }

    #[test]
    fn join_unions_with_min_age() {
        let g = CacheGeometry::set_associative(1, 16, 2);
        let mut a = MayCache::cold(g);
        a.access_block(0);
        let mut b = MayCache::cold(g);
        b.access_block(1);
        b.access_block(0); // b: 0 at age 0, 1 at age 1
        let j = a.join(&b);
        assert!(j.contains_block(0) && j.contains_block(1));
        assert_eq!(j.resident_count(), 2);
        assert_eq!(j, b.join(&a), "join is commutative");
    }

    proptest! {
        /// Soundness: whatever is concretely resident after a cold-start
        /// access sequence must be in the may cache.
        #[test]
        fn concrete_residents_are_in_may(
            trace in proptest::collection::vec(0u64..32, 1..200),
            assoc in 1usize..4,
        ) {
            let g = CacheGeometry::set_associative(4, 16, assoc);
            let mut concrete = CacheSim::new(g);
            let mut may = MayCache::cold(g);
            for &block in &trace {
                let outcome = concrete.access_block(block);
                let guaranteed_miss = !may.contains_block(block);
                if guaranteed_miss {
                    prop_assert_eq!(outcome, AccessOutcome::Miss);
                }
                may.access_block(block);
                // Every concrete resident of the touched set is tracked.
                let set = (block as usize) % 4;
                for &resident in concrete.set_contents(set) {
                    prop_assert!(may.contains_block(resident), "{resident} escaped may");
                }
            }
        }

        /// Joining can only add possibilities, never remove them.
        #[test]
        fn join_only_widens(
            a in proptest::collection::vec(0u64..32, 0..50),
            b in proptest::collection::vec(0u64..32, 0..50),
        ) {
            let g = CacheGeometry::set_associative(4, 16, 2);
            let mut ma = MayCache::cold(g);
            for &x in &a { ma.access_block(x); }
            let mut mb = MayCache::cold(g);
            for &x in &b { mb.access_block(x); }
            let j = ma.join(&mb);
            for block in ma.resident_blocks() {
                prop_assert!(j.contains_block(block));
            }
            for block in mb.resident_blocks() {
                prop_assert!(j.contains_block(block));
            }
        }
    }
}
