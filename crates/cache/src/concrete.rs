//! Executable set-associative LRU cache — the concrete oracle.

use cpa_model::CacheGeometry;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was present.
    Hit,
    /// The block was loaded from main memory (and may have evicted
    /// another block).
    Miss,
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimulationStats {
    /// Total accesses performed.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (main-memory loads).
    pub misses: u64,
}

/// An executable set-associative LRU instruction cache.
///
/// Blocks are identified by their memory-block number
/// (`address / block_size`); each cache set keeps its residents in LRU
/// order (most recent first).
///
/// ```
/// use cpa_cache::{AccessOutcome, CacheSim};
/// use cpa_model::CacheGeometry;
///
/// let mut cache = CacheSim::new(CacheGeometry::direct_mapped(4, 16));
/// assert_eq!(cache.access_address(0), AccessOutcome::Miss);
/// assert_eq!(cache.access_address(4), AccessOutcome::Hit);   // same line
/// assert_eq!(cache.access_address(64), AccessOutcome::Miss); // conflicts: 64/16 % 4 == 0
/// assert_eq!(cache.access_address(0), AccessOutcome::Miss);  // was evicted
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheSim {
    geometry: CacheGeometry,
    /// Per set: resident block numbers, most-recently-used first.
    sets: Vec<Vec<u64>>,
    stats: SimulationStats,
}

impl CacheSim {
    /// Creates an empty (cold) cache.
    #[must_use]
    pub fn new(geometry: CacheGeometry) -> Self {
        CacheSim {
            geometry,
            sets: vec![Vec::with_capacity(geometry.associativity()); geometry.sets()],
            stats: SimulationStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> SimulationStats {
        self.stats
    }

    /// Resets the statistics, keeping the cache contents (e.g. between two
    /// jobs of the same task).
    pub fn reset_stats(&mut self) {
        self.stats = SimulationStats::default();
    }

    /// Empties the cache and the statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = SimulationStats::default();
    }

    /// `true` if the block containing `address` is resident.
    #[must_use]
    pub fn contains_address(&self, address: u64) -> bool {
        let block = self.geometry.block_of_address(address);
        self.contains_block(block)
    }

    /// `true` if memory block `block` is resident.
    #[must_use]
    pub fn contains_block(&self, block: u64) -> bool {
        let set = (block as usize) % self.geometry.sets();
        self.sets[set].contains(&block)
    }

    /// Accesses the instruction at `address`.
    pub fn access_address(&mut self, address: u64) -> AccessOutcome {
        self.access_block(self.geometry.block_of_address(address))
    }

    /// Accesses memory block `block` directly.
    pub fn access_block(&mut self, block: u64) -> AccessOutcome {
        let set_index = (block as usize) % self.geometry.sets();
        let set = &mut self.sets[set_index];
        self.stats.accesses += 1;
        if let Some(pos) = set.iter().position(|&b| b == block) {
            set.remove(pos);
            set.insert(0, block);
            self.stats.hits += 1;
            AccessOutcome::Hit
        } else {
            set.insert(0, block);
            set.truncate(self.geometry.associativity());
            self.stats.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// Runs a whole address trace, returning the stats of this run only.
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> SimulationStats {
        let before = self.stats;
        for address in trace {
            self.access_address(address);
        }
        SimulationStats {
            accesses: self.stats.accesses - before.accesses,
            hits: self.stats.hits - before.hits,
            misses: self.stats.misses - before.misses,
        }
    }

    /// Evicts every resident block that maps to one of the given cache
    /// sets — the effect a preempting task's ECBs have on this cache.
    pub fn evict_sets<I: IntoIterator<Item = usize>>(&mut self, sets: I) {
        for s in sets {
            if s < self.sets.len() {
                self.sets[s].clear();
            }
        }
    }

    /// The resident blocks of one cache set, most-recently-used first.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn set_contents(&self, set: usize) -> &[u64] {
        &self.sets[set]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dm4() -> CacheSim {
        CacheSim::new(CacheGeometry::direct_mapped(4, 16))
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = dm4();
        assert_eq!(c.access_block(0), AccessOutcome::Miss);
        assert_eq!(c.access_block(0), AccessOutcome::Hit);
        assert_eq!(c.access_block(4), AccessOutcome::Miss); // same set 0
        assert_eq!(c.access_block(0), AccessOutcome::Miss); // evicted
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().accesses, 4);
    }

    #[test]
    fn lru_order_in_associative_set() {
        let mut c = CacheSim::new(CacheGeometry::set_associative(2, 16, 2));
        // Blocks 0, 2, 4 all map to set 0.
        c.access_block(0);
        c.access_block(2);
        assert_eq!(c.set_contents(0), &[2, 0]);
        // Touch 0 → it becomes MRU; loading 4 then evicts 2.
        assert_eq!(c.access_block(0), AccessOutcome::Hit);
        assert_eq!(c.access_block(4), AccessOutcome::Miss);
        assert_eq!(c.set_contents(0), &[4, 0]);
        assert!(!c.contains_block(2));
        assert!(c.contains_block(0));
    }

    #[test]
    fn address_mapping_and_queries() {
        let mut c = dm4();
        c.access_address(0);
        assert!(c.contains_address(12)); // same 16-byte line
        assert!(!c.contains_address(16));
        assert!(c.contains_block(0));
    }

    #[test]
    fn run_trace_returns_delta_stats() {
        let mut c = dm4();
        let s1 = c.run_trace([0u64, 4, 16, 0]);
        assert_eq!(s1.accesses, 4);
        assert_eq!(s1.misses, 2);
        let s2 = c.run_trace([0u64, 16]);
        assert_eq!(s2.accesses, 2);
        assert_eq!(s2.misses, 0, "warm second run");
        assert_eq!(c.stats().accesses, 6);
    }

    #[test]
    fn evict_sets_models_preemption() {
        let mut c = dm4();
        c.run_trace([0u64, 16, 32, 48]); // sets 0..4 filled
        c.evict_sets([0usize, 2]);
        assert!(!c.contains_address(0));
        assert!(c.contains_address(16));
        assert!(!c.contains_address(32));
        c.evict_sets([99usize]); // out of range: ignored
    }

    #[test]
    fn flush_and_reset() {
        let mut c = dm4();
        c.run_trace([0u64, 16]);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains_address(0), "reset_stats keeps contents");
        c.flush();
        assert!(!c.contains_address(0));
    }

    proptest! {
        #[test]
        fn fully_associative_never_self_evicts_small_working_sets(
            blocks in proptest::collection::vec(0u64..64, 1..16),
        ) {
            // 16-way fully associative (1 set): once ≤ 16 distinct blocks
            // are loaded, repeats always hit.
            let mut c = CacheSim::new(CacheGeometry::set_associative(1, 16, 16));
            for &b in &blocks {
                c.access_block(b);
            }
            for &b in &blocks {
                prop_assert_eq!(c.access_block(b), AccessOutcome::Hit);
            }
        }

        #[test]
        fn misses_bounded_by_accesses_and_distinct_lower_bound(
            trace in proptest::collection::vec(0u64..256, 0..128),
        ) {
            let mut c = CacheSim::new(CacheGeometry::direct_mapped(8, 4));
            let mut distinct = trace.clone();
            distinct.sort_unstable();
            distinct.dedup();
            let stats = c.run_trace(trace.iter().map(|&b| b * 4));
            prop_assert_eq!(stats.accesses, trace.len() as u64);
            prop_assert!(stats.misses >= distinct.len() as u64 || trace.is_empty());
            prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        }

        #[test]
        fn bigger_cache_never_misses_more_direct_mapped_power_of_two(
            trace in proptest::collection::vec(0u64..512, 0..200),
        ) {
            // For direct-mapped caches with power-of-two sets and modulo
            // placement, doubling the sets splits each set: misses cannot
            // increase.
            let mut small = CacheSim::new(CacheGeometry::direct_mapped(8, 4));
            let mut big = CacheSim::new(CacheGeometry::direct_mapped(16, 4));
            let s = small.run_trace(trace.iter().map(|&b| b * 4));
            let b = big.run_trace(trace.iter().map(|&b| b * 4));
            prop_assert!(b.misses <= s.misses);
        }
    }
}
