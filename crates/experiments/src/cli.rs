//! Minimal shared argument parsing for the workspace binaries.
//!
//! All CLIs here follow the same `--flag value` convention; this module
//! centralizes the boilerplate the binaries used to hand-roll separately:
//! pulling a flag's value, parsing it with a contextualized error, and
//! formatting unknown-flag/usage errors consistently.
//!
//! # Example
//!
//! ```
//! use cpa_experiments::cli::Args;
//!
//! let mut args = Args::new(["--sets", "100", "fig2"].map(String::from), "usage: demo");
//! let mut sets = 10u32;
//! let mut rest = Vec::new();
//! while let Some(arg) = args.next_arg() {
//!     match arg.as_str() {
//!         "--sets" => sets = args.value_for("--sets").unwrap(),
//!         other => rest.push(other.to_string()),
//!     }
//! }
//! assert_eq!(sets, 100);
//! assert_eq!(rest, ["fig2"]);
//! ```

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// A CLI parsing failure: carries the message to print before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    msg: String,
}

impl CliError {
    fn new(msg: impl fmt::Display) -> Self {
        CliError {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for CliError {}

/// A stream of command-line arguments with flag-value helpers.
#[derive(Debug)]
pub struct Args {
    args: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl Args {
    /// Wraps an explicit argument list (mainly for tests).
    pub fn new(args: impl IntoIterator<Item = String>, usage: &'static str) -> Self {
        Args {
            args: args.into_iter().collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// Wraps the process arguments (without the program name).
    #[must_use]
    pub fn from_env(usage: &'static str) -> Self {
        Args::new(std::env::args().skip(1), usage)
    }

    /// The usage string passed at construction.
    #[must_use]
    pub fn usage(&self) -> &'static str {
        self.usage
    }

    /// The next raw argument, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        self.args.next()
    }

    /// Takes and parses the value following `flag`.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming `flag` when the value is missing or
    /// fails to parse.
    pub fn value_for<T: FromStr>(&mut self, flag: &str) -> Result<T, CliError>
    where
        T::Err: fmt::Display,
    {
        let raw = self
            .args
            .next()
            .ok_or_else(|| CliError::new(format!("{flag} needs a value\n{}", self.usage)))?;
        raw.parse()
            .map_err(|e| CliError::new(format!("{flag}: {e} (got `{raw}`)")))
    }

    /// The error to report for an unrecognized flag.
    #[must_use]
    pub fn unknown_flag(&self, flag: &str) -> CliError {
        CliError::new(format!("unknown flag `{flag}`\n{}", self.usage))
    }

    /// The error to report for a `--help` request (the usage text itself).
    #[must_use]
    pub fn help(&self) -> CliError {
        CliError::new(self.usage)
    }
}

/// Applies one sweep-related flag to `opts`, consuming its value from
/// `args`. Returns `Ok(true)` when `flag` was one of the shared sweep
/// flags (`--quick`, `--sets`, `--seed`, `--threads`, `--chunk`) and
/// `Ok(false)` when the caller should handle it itself.
///
/// Binaries that run sweeps share this so `--threads`/`--chunk` reach
/// [`SweepOptions`](crate::SweepOptions) — and therefore
/// [`cpa_pool`](cpa_pool::PoolOptions) — identically everywhere.
///
/// # Errors
///
/// Returns a [`CliError`] when the flag's value is missing or malformed.
pub fn apply_sweep_flag(
    args: &mut Args,
    flag: &str,
    opts: &mut crate::SweepOptions,
) -> Result<bool, CliError> {
    match flag {
        "--quick" => *opts = crate::SweepOptions::quick(),
        "--sets" => opts.sets_per_point = args.value_for("--sets")?,
        "--seed" => opts.seed = args.value_for("--seed")?,
        "--threads" => opts.threads = args.value_for("--threads")?,
        "--chunk" => opts.chunk = args.value_for("--chunk")?,
        _ => return Ok(false),
    }
    Ok(true)
}

/// The shared `--trace FILE` / `--metrics FILE` observability sinks.
///
/// Every binary that exposes these flags (`run_experiments`, `cpa-validate`,
/// `cpa-optimize run`) routes them through this one helper so the semantics
/// cannot drift: `--trace` enables the full `cpa-obs` subscriber and writes
/// the deterministic JSON-lines event stream; `--metrics` enables timing
/// collection only and writes the counters + span-profile JSON document.
#[derive(Debug, Clone, Default)]
pub struct ObsSinks {
    /// Destination for the JSON-lines event stream, when requested.
    pub trace_path: Option<PathBuf>,
    /// Destination for the metrics + profile document, when requested.
    pub metrics_path: Option<PathBuf>,
}

impl ObsSinks {
    /// Applies one sink flag, consuming its value from `args`. Returns
    /// `Ok(true)` when `flag` was `--trace` or `--metrics`, `Ok(false)` when
    /// the caller should handle it itself.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] when the flag's value is missing.
    pub fn apply_flag(&mut self, args: &mut Args, flag: &str) -> Result<bool, CliError> {
        match flag {
            "--trace" => self.trace_path = Some(args.value_for("--trace")?),
            "--metrics" => self.metrics_path = Some(args.value_for("--metrics")?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Enables the `cpa-obs` layers the requested sinks need: the full
    /// subscriber for `--trace`, timing-only for `--metrics` alone.
    pub fn enable(&self) {
        if self.trace_path.is_some() {
            cpa_obs::enable();
        } else if self.metrics_path.is_some() {
            cpa_obs::enable_metrics();
        }
    }

    /// Drains the event buffer and writes the requested sink files.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the destination on any write failure.
    pub fn write(&self) -> Result<(), CliError> {
        self.write_events(&cpa_obs::take_events())
    }

    /// Writes the requested sink files from an already-drained event buffer
    /// (for callers that also feed the events to an exporter).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the destination on any write failure.
    pub fn write_events(&self, events: &[cpa_obs::Event]) -> Result<(), CliError> {
        if let Some(path) = &self.trace_path {
            let lines = cpa_obs::events_to_json_lines(events);
            std::fs::write(path, lines)
                .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))?;
            eprintln!("wrote {}", path.display());
        }
        if let Some(path) = &self.metrics_path {
            let doc = format!(
                "{{\"metrics\":{},\"profile\":{}}}\n",
                cpa_obs::metrics_snapshot().to_json(),
                cpa_obs::profile_snapshot().to_json()
            );
            std::fs::write(path, doc)
                .map_err(|e| CliError::new(format!("cannot write {}: {e}", path.display())))?;
            eprintln!("wrote {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()), "usage: test")
    }

    #[test]
    fn parses_flag_values_in_order() {
        let mut a = args(&["--sets", "25", "--ratio", "0.5"]);
        assert_eq!(a.next_arg().as_deref(), Some("--sets"));
        assert_eq!(a.value_for::<u32>("--sets").unwrap(), 25);
        assert_eq!(a.next_arg().as_deref(), Some("--ratio"));
        assert_eq!(a.value_for::<f64>("--ratio").unwrap(), 0.5);
        assert!(a.next_arg().is_none());
    }

    #[test]
    fn missing_value_names_the_flag_and_usage() {
        let mut a = args(&["--seed"]);
        a.next_arg();
        let err = a.value_for::<u64>("--seed").unwrap_err();
        assert!(err.to_string().contains("--seed needs a value"), "{err}");
        assert!(err.to_string().contains("usage: test"), "{err}");
    }

    #[test]
    fn bad_value_includes_flag_and_input() {
        let mut a = args(&["--sets", "many"]);
        a.next_arg();
        let err = a.value_for::<u32>("--sets").unwrap_err();
        assert!(err.to_string().contains("--sets:"), "{err}");
        assert!(err.to_string().contains("`many`"), "{err}");
    }

    #[test]
    fn unknown_flag_and_help_carry_usage() {
        let a = args(&[]);
        assert!(a.unknown_flag("--bogus").to_string().contains("`--bogus`"));
        assert!(a.help().to_string().contains("usage: test"));
    }

    #[test]
    fn sweep_flags_reach_the_options() {
        let mut a = args(&["3", "2", "9", "77"]);
        let mut opts = crate::SweepOptions::paper();
        for flag in ["--threads", "--chunk", "--sets", "--seed"] {
            assert_eq!(apply_sweep_flag(&mut a, flag, &mut opts), Ok(true));
        }
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.chunk, 2);
        assert_eq!(opts.sets_per_point, 9);
        assert_eq!(opts.seed, 77);
    }

    #[test]
    fn quick_resets_and_unshared_flags_fall_through() {
        let mut a = args(&[]);
        let mut opts = crate::SweepOptions::paper().with_sets_per_point(500);
        assert_eq!(apply_sweep_flag(&mut a, "--quick", &mut opts), Ok(true));
        assert_eq!(
            opts.sets_per_point,
            crate::SweepOptions::quick().sets_per_point
        );
        assert_eq!(apply_sweep_flag(&mut a, "--out", &mut opts), Ok(false));
    }

    #[test]
    fn obs_sinks_claim_their_flags_only() {
        let mut a = args(&["t.jsonl", "m.json", "ignored"]);
        let mut sinks = ObsSinks::default();
        assert_eq!(sinks.apply_flag(&mut a, "--trace"), Ok(true));
        assert_eq!(sinks.apply_flag(&mut a, "--metrics"), Ok(true));
        assert_eq!(sinks.apply_flag(&mut a, "--out"), Ok(false));
        assert_eq!(
            sinks.trace_path.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(
            sinks.metrics_path.as_deref(),
            Some(std::path::Path::new("m.json"))
        );
    }

    #[test]
    fn obs_sinks_missing_value_is_an_error() {
        let mut a = args(&[]);
        let mut sinks = ObsSinks::default();
        let err = sinks.apply_flag(&mut a, "--trace").unwrap_err();
        assert!(err.to_string().contains("--trace needs a value"), "{err}");
    }

    #[test]
    fn obs_sinks_report_unwritable_destinations() {
        let sinks = ObsSinks {
            trace_path: Some(PathBuf::from("/nonexistent-dir/trace.jsonl")),
            metrics_path: None,
        };
        let err = sinks.write_events(&[]).unwrap_err();
        assert!(err.to_string().contains("cannot write"), "{err}");
    }

    #[test]
    fn sweep_flag_errors_name_the_flag() {
        let mut a = args(&["lots"]);
        let mut opts = crate::SweepOptions::paper();
        let err = apply_sweep_flag(&mut a, "--threads", &mut opts).unwrap_err();
        assert!(err.to_string().contains("--threads"), "{err}");
    }
}
