//! Ablation studies over the analysis's internal design choices.
//!
//! The paper fixes two ingredients it inherits from prior work: the
//! **ECB-union CRPD** bound (Eq. (2)) and the **CPRO-union** persistence
//! reload bound (Eq. (14)). The ablations here quantify how much those
//! choices matter on the paper's own workload:
//!
//! * [`crpd_ablation`] — schedulability under the three CRPD bounds of
//!   [`cpa_analysis::CrpdApproach`] (ECB-union vs UCB-union vs the
//!   victim-blind ECB-only baseline), for a fixed bus policy;
//! * [`persistence_gain`] — the per-policy schedulability *gain* of
//!   persistence awareness (aware − oblivious), the quantity behind the
//!   paper's "up to 70 percentage points" headline.

use cpa_analysis::{AnalysisConfig, BusPolicy, CrpdApproach, PersistenceMode};
use cpa_workload::GeneratorConfig;

use crate::runner::{
    evaluate_point, evaluate_point_with, CurvePoint, ExperimentResult, Series, SweepOptions,
};

/// Schedulable task sets vs utilization under each CRPD approach
/// (persistence-aware FP bus; the ordering among approaches is
/// workload-dependent, which is exactly what the ablation shows).
#[must_use]
pub fn crpd_ablation(opts: &SweepOptions) -> ExperimentResult {
    let approaches = [
        CrpdApproach::EcbUnion,
        CrpdApproach::UcbUnion,
        CrpdApproach::EcbOnly,
    ];
    let configs = [AnalysisConfig::new(
        BusPolicy::FixedPriority,
        PersistenceMode::Aware,
    )];
    let mut series: Vec<Series> = approaches
        .iter()
        .map(|a| Series {
            label: format!("FP aware / {}", a.label()),
            points: Vec::with_capacity(opts.utilization_grid.len()),
        })
        .collect();
    for (ui, &utilization) in opts.utilization_grid.iter().enumerate() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(utilization);
        for (si, &approach) in approaches.iter().enumerate() {
            let stats = evaluate_point_with(&gen, &configs, opts, ui as u64, approach);
            let acc = stats.config(0);
            series[si].points.push(CurvePoint {
                x: utilization,
                schedulable: acc.schedulable_count(),
                total: acc.samples(),
                weighted: acc.value(),
            });
        }
    }
    ExperimentResult {
        id: "ablation_crpd".to_string(),
        title: "Ablation — CRPD approach (FP bus, persistence-aware)".to_string(),
        x_label: "per-core utilization".to_string(),
        y_label: "schedulable task sets".to_string(),
        series,
    }
}

/// The persistence *gain* per bus policy: schedulable-set difference
/// between the aware analysis and its oblivious counterpart, per
/// utilization point. The curve's maximum is the paper's headline number.
#[must_use]
pub fn persistence_gain(opts: &SweepOptions) -> ExperimentResult {
    let buses: Vec<(&str, BusPolicy)> = ["FP", "RR", "TDMA"]
        .into_iter()
        .zip(BusPolicy::paper_buses(opts.slots))
        .collect();
    let mut series: Vec<Series> = buses
        .iter()
        .map(|(name, _)| Series {
            label: format!("{name} gain (aware − oblivious)"),
            points: Vec::with_capacity(opts.utilization_grid.len()),
        })
        .collect();
    for (ui, &utilization) in opts.utilization_grid.iter().enumerate() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(utilization);
        for (si, &(_, bus)) in buses.iter().enumerate() {
            let configs = [
                AnalysisConfig::new(bus, PersistenceMode::Aware),
                AnalysisConfig::new(bus, PersistenceMode::Oblivious),
            ];
            let stats = evaluate_point(&gen, &configs, opts, ui as u64);
            let aware = stats.config(0).schedulable_count();
            let oblivious = stats.config(1).schedulable_count();
            let total = stats.config(0).samples();
            series[si].points.push(CurvePoint {
                x: utilization,
                schedulable: aware - oblivious, // dominance guarantees ≥ 0
                total,
                weighted: if total == 0 {
                    0.0
                } else {
                    (aware - oblivious) as f64 / total as f64
                },
            });
        }
    }
    ExperimentResult {
        id: "ablation_gain".to_string(),
        title: "Persistence gain per bus policy (percentage points of task sets)".to_string(),
        x_label: "per-core utilization".to_string(),
        y_label: "schedulable task sets".to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepOptions {
        SweepOptions::quick()
            .with_sets_per_point(6)
            .with_utilization_grid(vec![0.2, 0.35])
    }

    #[test]
    fn crpd_ablation_shapes() {
        let r = crpd_ablation(&tiny());
        assert_eq!(r.series.len(), 3);
        for s in &r.series {
            assert_eq!(s.points.len(), 2);
            for p in &s.points {
                assert_eq!(p.total, 6);
                assert!(p.schedulable <= p.total);
            }
        }
        // (No cross-approach dominance assertion: the CRPD bounds are
        // pairwise incomparable; the experiment exists to measure them.)
    }

    #[test]
    fn gain_is_nonnegative_and_bounded() {
        let r = persistence_gain(&tiny());
        assert_eq!(r.series.len(), 3);
        for s in &r.series {
            for p in &s.points {
                assert!(p.schedulable <= p.total);
                assert!((0.0..=1.0).contains(&p.weighted));
            }
        }
    }
}
