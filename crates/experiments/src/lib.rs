//! Experiment harness regenerating every table and figure of the paper.
//!
//! One function per experiment of §V:
//!
//! | Paper artefact | Function |
//! |---|---|
//! | Table I (benchmark parameters) | [`table1::table1_markdown`] |
//! | Fig. 2a/2b/2c (schedulable sets vs core utilization, FP/RR/TDMA) | [`fig2::fig2`] |
//! | Fig. 3a (weighted schedulability vs cores) | [`fig3::fig3a`] |
//! | Fig. 3b (vs `d_mem`) | [`fig3::fig3b`] |
//! | Fig. 3c (vs cache size) | [`fig3::fig3c`] |
//! | Fig. 3d (vs RR/TDMA slot size) | [`fig3::fig3d`] |
//!
//! Every experiment returns an [`ExperimentResult`]: a set of labelled
//! series over a swept x-axis, with raw schedulable counts and the
//! utilization-weighted measure per point. [`report`] renders results as
//! CSV or Markdown; the `run_experiments` binary drives the whole battery.
//!
//! All randomness is seeded: the same [`SweepOptions::seed`] reproduces the
//! same task sets (and therefore the same numbers) regardless of thread
//! count.
//!
//! # Example
//!
//! ```
//! use cpa_experiments::{fig2, SweepOptions};
//!
//! // A miniature Fig. 2 (3 utilization points × 5 sets) for CI purposes.
//! let opts = SweepOptions::quick().with_sets_per_point(5)
//!     .with_utilization_grid(vec![0.2, 0.5, 0.8]);
//! let results = fig2::fig2(&opts);
//! assert_eq!(results.len(), 3); // FP, RR, TDMA
//! assert!(results[0].series.iter().any(|s| s.label.contains("aware")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ablation;
pub mod cli;
pub mod fig2;
pub mod fig3;
pub mod report;
pub mod runner;
pub mod table1;

pub use runner::{CurvePoint, ExperimentResult, Series, SweepOptions};
