//! Renderers for experiment results: CSV and Markdown.

use std::fmt::Write as _;

use crate::runner::ExperimentResult;

/// Renders a result as CSV with one row per (series, point):
/// `experiment,series,x,schedulable,total,weighted`.
///
/// # Example
///
/// ```
/// use cpa_experiments::report::to_csv;
/// use cpa_experiments::{CurvePoint, ExperimentResult, Series};
///
/// let r = ExperimentResult {
///     id: "demo".into(),
///     title: "demo".into(),
///     x_label: "x".into(),
///     y_label: "y".into(),
///     series: vec![Series {
///         label: "a".into(),
///         points: vec![CurvePoint { x: 0.5, schedulable: 3, total: 4, weighted: 0.75 }],
///     }],
/// };
/// let csv = to_csv(&r);
/// assert!(csv.contains("demo,a,0.5,3,4,0.75"));
/// ```
#[must_use]
pub fn to_csv(result: &ExperimentResult) -> String {
    let mut out = String::from("experiment,series,x,schedulable,total,weighted\n");
    for series in &result.series {
        for p in &series.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{}",
                result.id,
                escape_csv(&series.label),
                trim_float(p.x),
                p.schedulable,
                p.total,
                trim_float(p.weighted),
            );
        }
    }
    out
}

/// Renders a result as a Markdown table: one column per series, one row per
/// x value. Fig. 2 results show raw schedulable counts, Fig. 3 results the
/// weighted measure (selected by `y_label`).
#[must_use]
pub fn to_markdown(result: &ExperimentResult) -> String {
    let mut out = format!("### {}\n\n", result.title);
    let counts = result.y_label.contains("task sets");
    let _ = write!(out, "| {} |", result.x_label);
    for s in &result.series {
        let _ = write!(out, " {} |", s.label);
    }
    out.push('\n');
    let _ = write!(out, "|---|");
    for _ in &result.series {
        let _ = write!(out, "---|");
    }
    out.push('\n');

    let xs: Vec<f64> = result
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for (row, &x) in xs.iter().enumerate() {
        let _ = write!(out, "| {} |", trim_float(x));
        for s in &result.series {
            match s.points.get(row) {
                Some(p) if counts => {
                    let _ = write!(out, " {}/{} |", p.schedulable, p.total);
                }
                Some(p) => {
                    let _ = write!(out, " {:.4} |", p.weighted);
                }
                None => {
                    let _ = write!(out, " — |");
                }
            }
        }
        out.push('\n');
    }
    out
}

fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Prints floats without trailing zeros (`0.5` not `0.5000`).
fn trim_float(x: f64) -> String {
    let s = format!("{x:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{CurvePoint, Series};

    fn demo() -> ExperimentResult {
        ExperimentResult {
            id: "fig9z".into(),
            title: "demo figure".into(),
            x_label: "utilization".into(),
            y_label: "schedulable task sets".into(),
            series: vec![
                Series {
                    label: "aware".into(),
                    points: vec![
                        CurvePoint {
                            x: 0.1,
                            schedulable: 10,
                            total: 10,
                            weighted: 1.0,
                        },
                        CurvePoint {
                            x: 0.2,
                            schedulable: 7,
                            total: 10,
                            weighted: 0.68,
                        },
                    ],
                },
                Series {
                    label: "oblivious, baseline".into(),
                    points: vec![
                        CurvePoint {
                            x: 0.1,
                            schedulable: 9,
                            total: 10,
                            weighted: 0.9,
                        },
                        CurvePoint {
                            x: 0.2,
                            schedulable: 4,
                            total: 10,
                            weighted: 0.35,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&demo());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "experiment,series,x,schedulable,total,weighted");
        assert_eq!(lines[1], "fig9z,aware,0.1,10,10,1");
        // Labels containing commas are quoted.
        assert!(lines[3].starts_with("fig9z,\"oblivious, baseline\""));
    }

    #[test]
    fn markdown_counts_mode() {
        let md = to_markdown(&demo());
        assert!(md.contains("### demo figure"));
        assert!(md.contains("| utilization | aware | oblivious, baseline |"));
        assert!(md.contains("| 0.1 | 10/10 | 9/10 |"));
    }

    #[test]
    fn markdown_weighted_mode() {
        let mut r = demo();
        r.y_label = "weighted schedulability".into();
        let md = to_markdown(&r);
        assert!(md.contains("| 0.2 | 0.6800 | 0.3500 |"));
    }

    #[test]
    fn trim_float_behaviour() {
        assert_eq!(trim_float(0.5), "0.5");
        assert_eq!(trim_float(2.0), "2");
        assert_eq!(trim_float(0.0), "0");
        assert_eq!(trim_float(0.050000), "0.05");
    }
}
