//! Fig. 2: schedulable task sets vs per-core utilization, per bus policy.
//!
//! For each of the FP, RR and TDMA buses the paper plots, over a per-core
//! utilization sweep from 0.05 to 1.0, the number of task sets (out of
//! 1000) deemed schedulable by the persistence-aware analysis, its
//! persistence-oblivious counterpart, and the "perfect bus" reference line
//! (no bus interference as long as total bus utilization ≤ 1).

use cpa_analysis::{AnalysisConfig, BusPolicy, PersistenceMode};
use cpa_workload::GeneratorConfig;

use crate::runner::{
    evaluate_point_chained, ChainState, CurvePoint, ExperimentResult, Series, SweepOptions,
};
use cpa_analysis::CrpdApproach;

/// The three panels of Fig. 2 in paper order (a: FP, b: RR, c: TDMA).
#[must_use]
pub fn fig2(opts: &SweepOptions) -> Vec<ExperimentResult> {
    [
        ("fig2a", "FP bus", BusPolicy::FixedPriority),
        (
            "fig2b",
            "RR bus",
            BusPolicy::RoundRobin { slots: opts.slots },
        ),
        ("fig2c", "TDMA bus", BusPolicy::Tdma { slots: opts.slots }),
    ]
    .into_iter()
    .enumerate()
    .map(|(panel, (id, name, bus))| fig2_panel(opts, id, name, bus, panel as u64))
    .collect()
}

/// One Fig. 2 panel for an arbitrary bus policy.
#[must_use]
pub fn fig2_panel(
    opts: &SweepOptions,
    id: &str,
    name: &str,
    bus: BusPolicy,
    panel: u64,
) -> ExperimentResult {
    let configs = [
        AnalysisConfig::new(bus, PersistenceMode::Aware),
        AnalysisConfig::new(bus, PersistenceMode::Oblivious),
        AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
    ];
    let labels = [
        format!("{name} persistence-aware"),
        format!("{name} oblivious"),
        "perfect bus".to_string(),
    ];

    let mut series: Vec<Series> = labels
        .iter()
        .map(|label| Series {
            label: label.clone(),
            points: Vec::with_capacity(opts.utilization_grid.len()),
        })
        .collect();

    // One warm chain per panel: worker scratches persist across the
    // utilization points, so allocations and certified cache entries
    // carry from point to point (results identical to unchained).
    let mut chain = ChainState::default();
    for (ui, &utilization) in opts.utilization_grid.iter().enumerate() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(utilization);
        // Same point id across panels ⇒ same task sets for FP/RR/TDMA,
        // exactly as one generated population evaluated under each policy.
        let stats = evaluate_point_chained(
            &gen,
            &configs,
            opts,
            ui as u64,
            CrpdApproach::EcbUnion,
            &mut chain,
        );
        for (si, s) in series.iter_mut().enumerate() {
            let acc = stats.config(si);
            s.points.push(CurvePoint {
                x: utilization,
                schedulable: acc.schedulable_count(),
                total: acc.samples(),
                weighted: acc.value(),
            });
        }
    }
    let _ = panel; // panel kept for API stability / future per-panel seeding

    ExperimentResult {
        id: id.to_string(),
        title: format!("Fig. 2 — schedulable task sets vs core utilization ({name})"),
        x_label: "per-core utilization".to_string(),
        y_label: "schedulable task sets".to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepOptions {
        SweepOptions::quick()
            .with_sets_per_point(8)
            .with_utilization_grid(vec![0.2, 0.6])
    }

    #[test]
    fn produces_three_panels_with_three_series() {
        let results = fig2(&tiny());
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.series.len(), 3);
            for s in &r.series {
                assert_eq!(s.points.len(), 2);
                for p in &s.points {
                    assert_eq!(p.total, 8);
                    assert!(p.schedulable <= p.total);
                }
            }
        }
    }

    #[test]
    fn aware_dominates_oblivious_pointwise() {
        let results = fig2(&tiny());
        for r in &results {
            let aware = &r.series[0];
            let oblivious = &r.series[1];
            for (a, o) in aware.points.iter().zip(&oblivious.points) {
                assert!(
                    a.schedulable >= o.schedulable,
                    "{}: {} < {} at U={}",
                    r.id,
                    a.schedulable,
                    o.schedulable,
                    a.x
                );
            }
        }
    }

    #[test]
    fn schedulability_declines_with_utilization() {
        let opts = SweepOptions::quick()
            .with_sets_per_point(10)
            .with_utilization_grid(vec![0.1, 0.9]);
        for r in fig2(&opts) {
            for s in &r.series {
                assert!(
                    s.points[0].schedulable >= s.points[1].schedulable,
                    "{} / {}",
                    r.id,
                    s.label
                );
            }
        }
    }
}
