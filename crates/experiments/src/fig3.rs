//! Fig. 3: weighted schedulability sweeps over platform parameters.
//!
//! Each sub-figure varies one parameter while integrating out the per-core
//! utilization dimension with the weighted schedulability measure
//! (Bastoni et al.; see [`cpa_analysis::weighted_schedulability`]):
//!
//! * **3a** — number of cores (2..10, step 2);
//! * **3b** — memory latency `d_mem` (2..10 µs, step 2);
//! * **3c** — cache size (32..1024 sets, powers of two);
//! * **3d** — RR/TDMA slot size `s` (1..6).

use cpa_analysis::{AnalysisConfig, BusPolicy, PersistenceMode, WeightedAccumulator};
use cpa_model::Time;
use cpa_workload::GeneratorConfig;

use crate::runner::{
    evaluate_point_chained, ChainState, CurvePoint, ExperimentResult, Series, SweepOptions,
};
use cpa_analysis::CrpdApproach;

/// Cycles per microsecond in the evaluation timebase. One benchmark-table
/// cycle is interpreted as 1 µs (see `cpa_workload::GeneratorConfig::d_mem`
/// and DESIGN.md §4), so the paper's 2–10 µs sweep is 2–10 time units.
pub const CYCLES_PER_US: u64 = 1;

/// Fig. 3a: weighted schedulability vs number of cores (2, 4, 6, 8, 10).
#[must_use]
pub fn fig3a(opts: &SweepOptions) -> ExperimentResult {
    sweep(
        opts,
        "fig3a",
        "number of cores",
        &[2.0, 4.0, 6.0, 8.0, 10.0],
        |x| GeneratorConfig::paper_default().with_cores(x as usize),
    )
}

/// Fig. 3b: weighted schedulability vs memory latency `d_mem`
/// (2, 4, 6, 8, 10 µs).
#[must_use]
pub fn fig3b(opts: &SweepOptions) -> ExperimentResult {
    sweep(
        opts,
        "fig3b",
        "d_mem (µs)",
        &[2.0, 4.0, 6.0, 8.0, 10.0],
        |x| {
            // Periods stay sized for the default 5 µs latency; only the
            // analysed latency varies, so larger d_mem means genuinely
            // heavier memory load (the paper's observed decline).
            let reference = GeneratorConfig::paper_default().d_mem;
            GeneratorConfig::paper_default()
                .with_d_mem(Time::from_cycles(x as u64 * CYCLES_PER_US))
                .with_period_d_mem(reference)
        },
    )
}

/// Fig. 3c: weighted schedulability vs cache size (32..1024 sets).
#[must_use]
pub fn fig3c(opts: &SweepOptions) -> ExperimentResult {
    sweep(
        opts,
        "fig3c",
        "cache sets",
        &[32.0, 64.0, 128.0, 256.0, 512.0, 1024.0],
        |x| GeneratorConfig::paper_default().with_cache_sets(x as usize),
    )
}

/// Fig. 3d: weighted schedulability vs RR/TDMA slot size `s` (1..6).
///
/// The same task-set population is evaluated at every slot count (only the
/// analysis parameter changes), so the FP curves — which have no slot
/// parameter — are exactly flat references, as in the paper.
#[must_use]
pub fn fig3d(opts: &SweepOptions) -> ExperimentResult {
    let xs: Vec<f64> = (1..=6).map(f64::from).collect();
    let (_, labels) = paper_configs(opts.slots);
    let mut series: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: l.clone(),
            points: Vec::with_capacity(xs.len()),
        })
        .collect();
    let mut chain = ChainState::default();
    for &x in &xs {
        let (configs, _) = paper_configs(x as u64);
        let base = GeneratorConfig::paper_default();
        let accs = integrate_utilization(opts, &(|| base.clone()), &configs, &mut chain);
        for (s, acc) in series.iter_mut().zip(&accs) {
            s.points.push(point(x, acc));
        }
    }
    ExperimentResult {
        id: "fig3d".to_string(),
        title: "Fig. 3d — weighted schedulability vs RR/TDMA slot size".to_string(),
        x_label: "slots per core (s)".to_string(),
        y_label: "weighted schedulability".to_string(),
        series,
    }
}

/// The six policy × persistence configurations of the paper at slot
/// count `s`.
fn paper_configs(slots: u64) -> ([AnalysisConfig; 6], [String; 6]) {
    let [fp, rr, tdma] = BusPolicy::paper_buses(slots);
    // Aware-first per bus (the plotting order of the figure), unlike
    // `AnalysisConfig::paper_matrix`'s oblivious-first order.
    let configs = [
        AnalysisConfig::new(fp, PersistenceMode::Aware),
        AnalysisConfig::new(fp, PersistenceMode::Oblivious),
        AnalysisConfig::new(rr, PersistenceMode::Aware),
        AnalysisConfig::new(rr, PersistenceMode::Oblivious),
        AnalysisConfig::new(tdma, PersistenceMode::Aware),
        AnalysisConfig::new(tdma, PersistenceMode::Oblivious),
    ];
    let labels = [
        "FP aware".to_string(),
        "FP oblivious".to_string(),
        "RR aware".to_string(),
        "RR oblivious".to_string(),
        "TDMA aware".to_string(),
        "TDMA oblivious".to_string(),
    ];
    (configs, labels)
}

fn point(x: f64, acc: &WeightedAccumulator) -> CurvePoint {
    CurvePoint {
        x,
        schedulable: acc.schedulable_count(),
        total: acc.samples(),
        weighted: acc.value(),
    }
}

/// Integrates one parameter point over the utilization grid, returning one
/// accumulator per analysis configuration. The point id depends only on
/// the utilization index, so sweeps that keep the generator fixed (e.g.
/// the slot-size sweep) see the same task-set population at every
/// parameter value.
///
/// Worker state chains across the utilization points (and, because the
/// callers hoist the [`ChainState`], across adjacent parameter values
/// too); a parameter change that touches the engine's retention key
/// (d_mem, cores) simply disables carry-over at the boundary.
fn integrate_utilization(
    opts: &SweepOptions,
    base: &dyn Fn() -> GeneratorConfig,
    configs: &[AnalysisConfig],
    chain: &mut ChainState,
) -> Vec<WeightedAccumulator> {
    let mut totals = vec![WeightedAccumulator::new(); configs.len()];
    for (ui, &u) in opts.utilization_grid.iter().enumerate() {
        let gen = base().with_per_core_utilization(u);
        let stats = evaluate_point_chained(
            &gen,
            configs,
            opts,
            ui as u64,
            CrpdApproach::EcbUnion,
            chain,
        );
        for (t, i) in totals.iter_mut().zip(0..) {
            t.merge(stats.config(i));
        }
    }
    totals
}

/// Generic Fig. 3 sweep over a platform parameter.
fn sweep(
    opts: &SweepOptions,
    id: &str,
    x_label: &str,
    xs: &[f64],
    config_of: impl Fn(f64) -> GeneratorConfig,
) -> ExperimentResult {
    let (configs, labels) = paper_configs(opts.slots);
    let mut series: Vec<Series> = labels
        .iter()
        .map(|l| Series {
            label: l.clone(),
            points: Vec::with_capacity(xs.len()),
        })
        .collect();
    let mut chain = ChainState::default();
    for &x in xs {
        let base = config_of(x);
        let accs = integrate_utilization(opts, &(|| base.clone()), &configs, &mut chain);
        for (s, acc) in series.iter_mut().zip(&accs) {
            s.points.push(point(x, acc));
        }
    }
    ExperimentResult {
        id: id.to_string(),
        title: format!("Fig. 3 — weighted schedulability vs {x_label}"),
        x_label: x_label.to_string(),
        y_label: "weighted schedulability".to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepOptions {
        SweepOptions::quick()
            .with_sets_per_point(4)
            .with_utilization_grid(vec![0.3, 0.7])
    }

    #[test]
    fn fig3a_shape_and_dominance() {
        let opts = tiny();
        let r = fig3a(&opts);
        assert_eq!(r.series.len(), 6);
        for s in &r.series {
            assert_eq!(s.points.len(), 5);
        }
        // Pairwise dominance: aware ≥ oblivious for the same bus.
        for pair in [(0, 1), (2, 3), (4, 5)] {
            for (a, o) in r.series[pair.0].points.iter().zip(&r.series[pair.1].points) {
                assert!(
                    a.weighted >= o.weighted - 1e-12,
                    "{} vs {}",
                    a.weighted,
                    o.weighted
                );
            }
        }
    }

    #[test]
    fn fig3b_uses_microsecond_axis() {
        let r = fig3b(&tiny().with_utilization_grid(vec![0.4]));
        assert_eq!(
            r.series[0].points.iter().map(|p| p.x).collect::<Vec<_>>(),
            vec![2.0, 4.0, 6.0, 8.0, 10.0]
        );
    }

    #[test]
    fn fig3d_has_six_slot_values() {
        let r = fig3d(&tiny().with_utilization_grid(vec![0.4]));
        assert_eq!(r.series.len(), 6);
        for s in &r.series {
            assert_eq!(s.points.len(), 6);
        }
        // FP does not depend on s: its curve is flat.
        let fp = &r.series[0];
        for p in &fp.points[1..] {
            assert!((p.weighted - fp.points[0].weighted).abs() < 1e-12);
        }
    }
}
