//! CLI driver regenerating the paper's tables and figures.
//!
//! ```text
//! run_experiments [--quick] [--sets N] [--seed S] [--threads T] [--chunk C]
//!                 [--out DIR] [--trace FILE] [--metrics FILE] [EXPERIMENT...]
//! ```
//!
//! `EXPERIMENT` is any of `table1`, `fig2`, `fig3a`, `fig3b`, `fig3c`,
//! `fig3d`, or `all` (default). Results are printed as Markdown and written
//! as CSV files under `--out` (default `results/`).
//!
//! `--trace FILE` enables the `cpa-obs` event subscriber and writes the
//! deterministic JSON-lines event stream when every experiment has run;
//! `--metrics FILE` enables timing collection only and writes counters,
//! histograms, and the span-tree self-profile as one JSON document.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use cpa_experiments::cli::{self, Args, ObsSinks};
use cpa_experiments::{ablation, fig2, fig3, report, table1, ExperimentResult, SweepOptions};

struct Cli {
    opts: SweepOptions,
    out_dir: PathBuf,
    experiments: Vec<String>,
    sinks: ObsSinks,
}

fn parse_args() -> Result<Cli, String> {
    let mut opts = SweepOptions::paper();
    let mut out_dir = PathBuf::from("results");
    let mut experiments: Vec<String> = Vec::new();
    let mut sinks = ObsSinks::default();
    let mut args = Args::from_env(USAGE);
    while let Some(arg) = args.next_arg() {
        if cli::apply_sweep_flag(&mut args, arg.as_str(), &mut opts).map_err(|e| e.to_string())? {
            continue;
        }
        if sinks
            .apply_flag(&mut args, arg.as_str())
            .map_err(|e| e.to_string())?
        {
            continue;
        }
        match arg.as_str() {
            "--out" => out_dir = args.value_for("--out").map_err(|e| e.to_string())?,
            "--help" | "-h" => return Err(args.help().to_string()),
            other if other.starts_with('-') => return Err(args.unknown_flag(other).to_string()),
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    Ok(Cli {
        opts,
        out_dir,
        experiments,
        sinks,
    })
}

const USAGE: &str = "usage: run_experiments [--quick] [--sets N] [--seed S] [--threads T] \
[--chunk C] [--out DIR] [--trace FILE] [--metrics FILE] \
[table1|fig2|fig3a|fig3b|fig3c|fig3d|ablation|gain|all]...";

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&cli.out_dir) {
        eprintln!("cannot create {}: {e}", cli.out_dir.display());
        return ExitCode::FAILURE;
    }
    cli.sinks.enable();

    let all = cli.experiments.iter().any(|e| e == "all");
    let wants = |name: &str| all || cli.experiments.iter().any(|e| e == name);
    let mut ran_any = false;

    if wants("table1") {
        ran_any = true;
        println!("{}", table1::table1_markdown(false));
        write_out(&cli.out_dir, "table1.csv", &table1::table1_csv(false));
    }
    if wants("fig2") {
        ran_any = true;
        let start = Instant::now();
        for result in fig2::fig2(&cli.opts) {
            emit(&cli.out_dir, &result);
        }
        eprintln!("fig2 done in {:.1?}", start.elapsed());
    }
    for (name, f) in [
        (
            "fig3a",
            fig3::fig3a as fn(&SweepOptions) -> ExperimentResult,
        ),
        ("fig3b", fig3::fig3b),
        ("fig3c", fig3::fig3c),
        ("fig3d", fig3::fig3d),
        ("ablation", ablation::crpd_ablation),
        ("gain", ablation::persistence_gain),
    ] {
        if wants(name) {
            ran_any = true;
            let start = Instant::now();
            let result = f(&cli.opts);
            emit(&cli.out_dir, &result);
            eprintln!("{name} done in {:.1?}", start.elapsed());
        }
    }

    if !ran_any {
        eprintln!("no experiment matched {:?}\n{USAGE}", cli.experiments);
        return ExitCode::FAILURE;
    }
    if let Err(e) = cli.sinks.write() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn emit(out_dir: &std::path::Path, result: &ExperimentResult) {
    println!("{}", report::to_markdown(result));
    write_out(
        out_dir,
        &format!("{}.csv", result.id),
        &report::to_csv(result),
    );
}

fn write_out(out_dir: &std::path::Path, name: &str, contents: &str) {
    let path = out_dir.join(name);
    if let Err(e) = fs::write(&path, contents) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}
