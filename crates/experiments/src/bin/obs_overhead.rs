//! CI guard: the disabled `cpa-obs` subscriber must stay within the
//! overhead budget on the WCRT hot path.
//!
//! ```text
//! obs_overhead [--out FILE] [--budget FRACTION]
//! ```
//!
//! Every `event!`/`span!`/`histogram!` call site costs one relaxed atomic
//! load and a predictable branch when the subscriber is disabled. This
//! binary bounds that cost against the `analysis_micro` workload
//! (`wcrt_full_fp_aware`: one full `analyze()` on the paper-default
//! 4x8-task set at utilization 0.3):
//!
//! 1. time `analyze()` with the subscriber disabled (the production path);
//! 2. time one disabled gate check in a tight loop;
//! 3. count the gate checks one `analyze()` actually reaches, by enabling
//!    the subscriber once and counting emitted events and span calls;
//! 4. assert `gate_cost x gates / analyze_time < budget` (default 2%).
//!
//! The measured numbers are written as JSON (default `BENCH_obs.json`) so
//! CI archives the evidence; the process exits non-zero past the budget.

use std::hint::black_box;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use cpa_analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa_experiments::cli::Args;
use cpa_experiments::runner::platform_for;
use cpa_telemetry::BenchRecord;
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "usage: obs_overhead [--out FILE] [--budget FRACTION]";

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_obs.json");
    let mut budget = 0.02f64;
    let mut args = Args::from_env(USAGE);
    while let Some(arg) = args.next_arg() {
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--out" => out = args.value_for("--out").map_err(|e| e.to_string())?,
                "--budget" => budget = args.value_for("--budget").map_err(|e| e.to_string())?,
                "--help" | "-h" => return Err(args.help().to_string()),
                other => return Err(args.unknown_flag(other).to_string()),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    }

    let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
    let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
    let platform = platform_for(&gen);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(11))
        .expect("task set");
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let cfg = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);

    // 1. The production path: subscriber disabled.
    cpa_obs::disable();
    let analyze_ns = time_per_iter(200, || {
        black_box(analyze(black_box(&ctx), black_box(&cfg)));
    });

    // 2. One disabled gate: the exact check every macro call site pays.
    let gate_iters = 10_000_000u32;
    let gate_ns = time_per_iter(gate_iters, || {
        black_box(cpa_obs::events_enabled());
    });

    // 3. Gate checks reached by one analyze() call: with the subscriber
    // enabled, every reached event!/span! site records exactly once.
    cpa_obs::reset();
    cpa_obs::enable();
    let _ = analyze(&ctx, &cfg);
    cpa_obs::disable();
    let events = cpa_obs::take_events().len() as u64;
    let span_calls = total_calls(&cpa_obs::profile_snapshot());
    // Spans pay two checks (enter + drop), and give the estimate 2x head
    // room on top for field-expression branches the count cannot see.
    let gates = (events + 2 * span_calls) * 2;

    let overhead_ns = gate_ns * gates as f64;
    let fraction = overhead_ns / analyze_ns;
    let pass = fraction < budget;

    let mut record = BenchRecord::new("obs_overhead", "analysis_micro/wcrt_full_fp_aware");
    record.push_config("budget_fraction", budget);
    record.push_metric("analyze_ns", analyze_ns);
    record.push_metric("gate_ns", gate_ns);
    record.push_metric("gates_per_analyze", gates);
    record.push_metric("overhead_ns", overhead_ns);
    record.push_metric("overhead_fraction", fraction);
    record.push_throughput("analyzes_per_sec", 1e9 / analyze_ns);
    // The gate bounds overhead from above, so "value below gate" passes.
    record.push_gate("overhead_fraction", fraction, budget, pass);
    if let Err(e) = record.write_json_file(&out.to_string_lossy()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    if let Err(e) = record.append_history("results/bench_history.jsonl") {
        eprintln!("cannot append results/bench_history.jsonl: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "obs overhead: analyze {analyze_ns:.0} ns, {gates} gates x {gate_ns:.2} ns = \
         {overhead_ns:.0} ns ({:.3}% of budget {:.1}%)",
        fraction * 100.0,
        budget * 100.0
    );
    eprintln!("wrote {}", out.display());
    if pass {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: disabled-subscriber overhead {:.3}% exceeds the {:.1}% budget",
            fraction * 100.0,
            budget * 100.0
        );
        ExitCode::FAILURE
    }
}

/// Median-of-three per-iteration wall time in nanoseconds.
fn time_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut runs = [0.0f64; 3];
    for run in &mut runs {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *run = start.elapsed().as_nanos() as f64 / f64::from(iters);
    }
    runs.sort_by(f64::total_cmp);
    runs[1]
}

fn total_calls(node: &cpa_obs::ProfileNode) -> u64 {
    node.calls + node.children.iter().map(total_calls).sum::<u64>()
}
