//! Generates one paper-style task set and prints it as JSON — a quick way
//! to export workloads to other tools (the JSON round-trips through the
//! validated `cpa_model::TaskSet` deserializer).
//!
//! ```text
//! gen_taskset [--seed S] [--utilization U] [--cores M] [--tasks-per-core N]
//!             [--cache-sets C] [--summary]
//! ```

use std::process::ExitCode;

use cpa_model::Time;
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut config = GeneratorConfig::paper_default();
    let mut summary = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--seed" => seed = take("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--utilization" => {
                    config.per_core_utilization =
                        take("--utilization")?.parse().map_err(|e| format!("{e}"))?;
                }
                "--cores" => config.cores = take("--cores")?.parse().map_err(|e| format!("{e}"))?,
                "--tasks-per-core" => {
                    config.tasks_per_core =
                        take("--tasks-per-core")?.parse().map_err(|e| format!("{e}"))?;
                }
                "--cache-sets" => {
                    config.cache_sets =
                        take("--cache-sets")?.parse().map_err(|e| format!("{e}"))?;
                }
                "--d-mem" => {
                    config.d_mem = Time::from_cycles(
                        take("--d-mem")?.parse().map_err(|e| format!("{e}"))?,
                    );
                }
                "--summary" => summary = true,
                other => return Err(format!(
                    "unknown flag `{other}`\nusage: gen_taskset [--seed S] [--utilization U] \
                     [--cores M] [--tasks-per-core N] [--cache-sets C] [--d-mem D] [--summary]"
                )),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }

    let generator = match TaskSetGenerator::new(config.clone()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = match generator.generate(&mut rng) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if summary {
        print!("{tasks}");
        eprintln!(
            "total utilization {:.3}, bus utilization {:.3}",
            tasks.total_utilization(config.d_mem),
            tasks.bus_utilization(config.d_mem)
        );
        return ExitCode::SUCCESS;
    }
    match serde_json::to_string_pretty(&tasks) {
        Ok(json) => {
            println!("{json}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serialization failed: {e}");
            ExitCode::FAILURE
        }
    }
}
