//! Generates one paper-style task set and prints it as JSON — a quick way
//! to export workloads to other tools (the JSON round-trips through the
//! validated `cpa_model::TaskSet` deserializer).
//!
//! ```text
//! gen_taskset [--seed S] [--utilization U] [--cores M] [--tasks-per-core N]
//!             [--cache-sets C] [--summary]
//! ```

use std::process::ExitCode;

use cpa_experiments::cli::Args;
use cpa_model::Time;
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const USAGE: &str = "usage: gen_taskset [--seed S] [--utilization U] [--cores M] \
[--tasks-per-core N] [--cache-sets C] [--d-mem D] [--summary]";

fn main() -> ExitCode {
    let mut seed = 1u64;
    let mut config = GeneratorConfig::paper_default();
    let mut summary = false;
    let mut args = Args::from_env(USAGE);
    while let Some(arg) = args.next_arg() {
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--seed" => seed = args.value_for("--seed").map_err(|e| e.to_string())?,
                "--utilization" => {
                    config.per_core_utilization =
                        args.value_for("--utilization").map_err(|e| e.to_string())?;
                }
                "--cores" => config.cores = args.value_for("--cores").map_err(|e| e.to_string())?,
                "--tasks-per-core" => {
                    config.tasks_per_core = args
                        .value_for("--tasks-per-core")
                        .map_err(|e| e.to_string())?;
                }
                "--cache-sets" => {
                    config.cache_sets =
                        args.value_for("--cache-sets").map_err(|e| e.to_string())?;
                }
                "--d-mem" => {
                    config.d_mem =
                        Time::from_cycles(args.value_for("--d-mem").map_err(|e| e.to_string())?);
                }
                "--summary" => summary = true,
                "--help" | "-h" => return Err(args.help().to_string()),
                other => return Err(args.unknown_flag(other).to_string()),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }

    let generator = match TaskSetGenerator::new(config.clone()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("invalid configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = match generator.generate(&mut rng) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("generation failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if summary {
        print!("{tasks}");
        eprintln!(
            "total utilization {:.3}, bus utilization {:.3}",
            tasks.total_utilization(config.d_mem),
            tasks.bus_utilization(config.d_mem)
        );
        return ExitCode::SUCCESS;
    }
    println!("{}", tasks.to_json());
    ExitCode::SUCCESS
}
