//! Shared sweep machinery: deterministic seeding, parallel evaluation,
//! result containers.

use cpa_analysis::{analyze, AnalysisConfig, AnalysisContext, CrpdApproach, WeightedAccumulator};
use cpa_model::{CacheGeometry, Platform};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Options shared by every experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepOptions {
    /// Random task sets per (x-value, utilization) point.
    pub sets_per_point: usize,
    /// Base seed; everything downstream derives deterministically from it.
    pub seed: u64,
    /// RR/TDMA memory access slots per core (`s`, paper default 2).
    pub slots: u64,
    /// Worker threads (0 = use all available cores).
    pub threads: usize,
    /// Core-utilization grid (paper: 0.05 to 1.0 in steps of 0.05).
    pub utilization_grid: Vec<f64>,
}

impl SweepOptions {
    /// Paper-scale options: 1000 sets per point, the full utilization grid.
    #[must_use]
    pub fn paper() -> Self {
        SweepOptions {
            sets_per_point: 1_000,
            seed: 0x0DA7_E202_0000,
            slots: 2,
            threads: 0,
            utilization_grid: default_grid(),
        }
    }

    /// Reduced options for smoke tests and Criterion benches: 50 sets per
    /// point on the full grid.
    #[must_use]
    pub fn quick() -> Self {
        SweepOptions {
            sets_per_point: 50,
            ..SweepOptions::paper()
        }
    }

    /// Returns a copy with a different number of sets per point.
    #[must_use]
    pub fn with_sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Returns a copy with a different utilization grid.
    #[must_use]
    pub fn with_utilization_grid(mut self, grid: Vec<f64>) -> Self {
        self.utilization_grid = grid;
        self
    }

    /// Returns a copy with a different base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions::paper()
    }
}

/// The paper's utilization grid: 0.05 to 1.0 in steps of 0.05.
#[must_use]
pub fn default_grid() -> Vec<f64> {
    (1..=20).map(|i| f64::from(i) * 0.05).collect()
}

/// One point of one experiment series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CurvePoint {
    /// Swept x-value (core utilization, cores, `d_mem` µs, ...).
    pub x: f64,
    /// Task sets deemed schedulable at this point.
    pub schedulable: u64,
    /// Task sets evaluated at this point.
    pub total: u64,
    /// Utilization-weighted schedulability at this point.
    pub weighted: f64,
}

/// A labelled experiment curve (e.g. "FP aware").
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Human-readable curve label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<CurvePoint>,
}

/// One regenerated figure or table panel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentResult {
    /// Stable experiment id (`fig2a`, `fig3c`, ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// All curves of the panel.
    pub series: Vec<Series>,
}

/// Per-configuration tallies for one evaluated point.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    accumulators: Vec<WeightedAccumulator>,
}

impl PointStats {
    fn new(configs: usize) -> Self {
        PointStats {
            accumulators: vec![WeightedAccumulator::new(); configs],
        }
    }

    fn merge(&mut self, other: &PointStats) {
        for (a, b) in self.accumulators.iter_mut().zip(&other.accumulators) {
            a.merge(b);
        }
    }

    /// Accumulator of the `i`-th analysis configuration.
    #[must_use]
    pub fn config(&self, i: usize) -> &WeightedAccumulator {
        &self.accumulators[i]
    }
}

/// SplitMix64-style seed derivation: decorrelates per-set RNG streams from
/// `(base seed, point id, set index)` without any cross-thread state.
#[must_use]
pub fn derive_seed(base: u64, point: u64, set: u64) -> u64 {
    let mut z = base
        .wrapping_add(point.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(set.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the [`Platform`] matching a generator configuration (32-byte
/// lines, direct-mapped, as in the paper).
#[must_use]
pub fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("generator configs always map to valid platforms")
}

/// Evaluates `sets_per_point` random task sets drawn from `gen_config`
/// against every analysis configuration in `configs`, in parallel,
/// deterministically in `opts.seed` and `point_id`.
///
/// # Panics
///
/// Panics if `gen_config` is invalid (the experiment definitions in this
/// crate only produce valid ones).
#[must_use]
pub fn evaluate_point(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
) -> PointStats {
    evaluate_point_with(gen_config, configs, opts, point_id, CrpdApproach::EcbUnion)
}

/// [`evaluate_point`] with a selectable CRPD approach (the CRPD ablation
/// of [`crate::ablation`]).
///
/// # Panics
///
/// Panics if `gen_config` is invalid.
#[must_use]
pub fn evaluate_point_with(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
    crpd: CrpdApproach,
) -> PointStats {
    let generator = TaskSetGenerator::new(gen_config.clone()).expect("valid generator config");
    let platform = platform_for(gen_config);
    let d_mem = gen_config.d_mem;
    let threads = opts.worker_threads().max(1);
    let sets = opts.sets_per_point;

    let _span = cpa_obs::span!("experiments.evaluate_point");
    let evaluated = cpa_obs::counter("experiments.sets_evaluated");
    // Evaluations run sequentially from the driver, so a process-wide epoch
    // gives each call a scope block of its own even when point ids repeat
    // across experiments (fig2 reuses one id per panel to share task sets).
    static EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let epoch = EPOCH.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut partials: Vec<PointStats> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let generator = &generator;
            let platform = &platform;
            let opts_seed = opts.seed;
            let handle = scope.spawn(move || {
                let mut stats = PointStats::new(configs.len());
                let mut set = worker;
                while set < sets {
                    let set_seed = derive_seed(opts_seed, point_id, set as u64);
                    // Scope events by (epoch, set) so traces sort into one
                    // canonical order regardless of the thread count.
                    cpa_obs::set_scope(epoch.wrapping_mul(1 << 32).wrapping_add(set as u64));
                    let mut rng = ChaCha8Rng::seed_from_u64(set_seed);
                    let tasks = generator.generate(&mut rng).expect("generation succeeds");
                    let ctx = AnalysisContext::with_crpd_approach(platform, &tasks, crpd)
                        .expect("task set fits platform");
                    let utilization = tasks.total_utilization(d_mem);
                    for (i, cfg) in configs.iter().enumerate() {
                        let result = analyze(&ctx, cfg);
                        stats.accumulators[i].record(utilization, result.is_schedulable());
                    }
                    evaluated.incr();
                    set += threads;
                }
                stats
            });
            handles.push(handle);
        }
        for handle in handles {
            partials.push(handle.join().expect("worker panicked"));
        }
    });

    let mut total = PointStats::new(configs.len());
    for partial in &partials {
        total.merge(partial);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_analysis::{BusPolicy, PersistenceMode};

    #[test]
    fn default_grid_matches_paper() {
        let g = default_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 2, 3);
        assert_ne!(a, derive_seed(1, 2, 4));
        assert_ne!(a, derive_seed(1, 3, 3));
        assert_ne!(a, derive_seed(2, 2, 3));
        assert_eq!(a, derive_seed(1, 2, 3));
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
        let configs = [
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        ];
        let base = SweepOptions::quick().with_sets_per_point(6);
        let mut one = base.clone();
        one.threads = 1;
        let mut four = base;
        four.threads = 4;
        let a = evaluate_point(&gen, &configs, &one, 7);
        let b = evaluate_point(&gen, &configs, &four, 7);
        for i in 0..configs.len() {
            assert_eq!(a.config(i).samples(), 6);
            assert_eq!(
                a.config(i).schedulable_count(),
                b.config(i).schedulable_count()
            );
            assert!((a.config(i).value() - b.config(i).value()).abs() < 1e-12);
        }
    }

    #[test]
    fn aware_dominates_oblivious_in_aggregate() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.5);
        let configs = [
            AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware),
            AnalysisConfig::new(
                BusPolicy::RoundRobin { slots: 2 },
                PersistenceMode::Oblivious,
            ),
        ];
        let opts = SweepOptions::quick().with_sets_per_point(10);
        let stats = evaluate_point(&gen, &configs, &opts, 1);
        assert!(stats.config(0).schedulable_count() >= stats.config(1).schedulable_count());
    }
}
