//! Shared sweep machinery: deterministic seeding, parallel evaluation,
//! result containers.

use cpa_analysis::{
    analyze_with, AnalysisConfig, AnalysisContext, AnalysisScratch, ContextBuffers, CrpdApproach,
    WeightedAccumulator,
};
use cpa_model::{CacheGeometry, Platform};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Options shared by every experiment sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepOptions {
    /// Random task sets per (x-value, utilization) point.
    pub sets_per_point: usize,
    /// Base seed; everything downstream derives deterministically from it.
    pub seed: u64,
    /// RR/TDMA memory access slots per core (`s`, paper default 2).
    pub slots: u64,
    /// Worker threads (0 = auto-detect, capped at
    /// [`cpa_pool::MAX_AUTO_THREADS`]; the one shared policy of
    /// [`cpa_pool::resolve_threads`]).
    pub threads: usize,
    /// Pool chunk size (0 = pool default). Results are byte-identical at
    /// any chunk size; the knob exists for benchmarks and tests.
    pub chunk: usize,
    /// Core-utilization grid (paper: 0.05 to 1.0 in steps of 0.05).
    pub utilization_grid: Vec<f64>,
}

impl SweepOptions {
    /// Paper-scale options: 1000 sets per point, the full utilization grid.
    #[must_use]
    pub fn paper() -> Self {
        SweepOptions {
            sets_per_point: 1_000,
            seed: 0x0DA7_E202_0000,
            slots: 2,
            threads: 0,
            chunk: 0,
            utilization_grid: default_grid(),
        }
    }

    /// Reduced options for smoke tests and Criterion benches: 50 sets per
    /// point on the full grid.
    #[must_use]
    pub fn quick() -> Self {
        SweepOptions {
            sets_per_point: 50,
            ..SweepOptions::paper()
        }
    }

    /// Returns a copy with a different number of sets per point.
    #[must_use]
    pub fn with_sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Returns a copy with a different utilization grid.
    #[must_use]
    pub fn with_utilization_grid(mut self, grid: Vec<f64>) -> Self {
        self.utilization_grid = grid;
        self
    }

    /// Returns a copy with a different base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different worker thread count (0 = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy with a different pool chunk size (0 = default).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    fn pool_options(&self) -> cpa_pool::PoolOptions {
        cpa_pool::PoolOptions::new()
            .with_threads(self.threads)
            .with_chunk(self.chunk)
    }
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions::paper()
    }
}

/// The paper's utilization grid: 0.05 to 1.0 in steps of 0.05.
#[must_use]
pub fn default_grid() -> Vec<f64> {
    (1..=20).map(|i| f64::from(i) * 0.05).collect()
}

/// One point of one experiment series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CurvePoint {
    /// Swept x-value (core utilization, cores, `d_mem` µs, ...).
    pub x: f64,
    /// Task sets deemed schedulable at this point.
    pub schedulable: u64,
    /// Task sets evaluated at this point.
    pub total: u64,
    /// Utilization-weighted schedulability at this point.
    pub weighted: f64,
}

/// A labelled experiment curve (e.g. "FP aware").
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Human-readable curve label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<CurvePoint>,
}

/// One regenerated figure or table panel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExperimentResult {
    /// Stable experiment id (`fig2a`, `fig3c`, ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// All curves of the panel.
    pub series: Vec<Series>,
}

/// Per-configuration tallies for one evaluated point.
#[derive(Debug, Clone, Default)]
pub struct PointStats {
    accumulators: Vec<WeightedAccumulator>,
}

impl PointStats {
    fn new(configs: usize) -> Self {
        PointStats {
            accumulators: vec![WeightedAccumulator::new(); configs],
        }
    }

    fn merge(&mut self, other: &PointStats) {
        for (a, b) in self.accumulators.iter_mut().zip(&other.accumulators) {
            a.merge(b);
        }
    }

    /// Accumulator of the `i`-th analysis configuration.
    #[must_use]
    pub fn config(&self, i: usize) -> &WeightedAccumulator {
        &self.accumulators[i]
    }
}

/// Per-worker engine state chained across adjacent sweep points.
///
/// A driver that owns one of these and calls
/// [`evaluate_point_chained`] per point keeps each worker's
/// [`AnalysisScratch`] and [`ContextBuffers`] alive from one
/// utilization point to the next: allocations survive, and the engine's
/// certified warm retention decides per solve what may carry over.
/// Results are bitwise identical to the unchained path — retention only
/// ever reuses cache entries certified byte-equal to what a cold run
/// would re-derive — so chaining is purely a throughput lever.
#[derive(Debug, Default)]
pub struct ChainState {
    states: Vec<(AnalysisScratch, ContextBuffers)>,
}

/// SplitMix64-style seed derivation: decorrelates per-set RNG streams from
/// `(base seed, point id, set index)` without any cross-thread state.
#[must_use]
pub fn derive_seed(base: u64, point: u64, set: u64) -> u64 {
    let mut z = base
        .wrapping_add(point.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(set.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the [`Platform`] matching a generator configuration (32-byte
/// lines, direct-mapped, as in the paper).
#[must_use]
pub fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("generator configs always map to valid platforms")
}

/// Evaluates `sets_per_point` random task sets drawn from `gen_config`
/// against every analysis configuration in `configs`, in parallel,
/// deterministically in `opts.seed` and `point_id`.
///
/// # Panics
///
/// Panics if `gen_config` is invalid (the experiment definitions in this
/// crate only produce valid ones).
#[must_use]
pub fn evaluate_point(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
) -> PointStats {
    evaluate_point_with(gen_config, configs, opts, point_id, CrpdApproach::EcbUnion)
}

/// [`evaluate_point`] with a selectable CRPD approach (the CRPD ablation
/// of [`crate::ablation`]).
///
/// Work is scheduled on the deterministic [`cpa_pool`] chunk-claiming
/// pool; each worker keeps one [`AnalysisScratch`] plus recycled
/// [`ContextBuffers`] for all its sets (and all of each set's
/// configurations), and the per-set outcomes are folded into the
/// [`PointStats`] in set-index order — so every tally, including the
/// non-associative `f64` utilization sums, is byte-identical at any
/// thread count and chunk size.
///
/// Warm-start retention is strictly *item-local*: the scratch forgets its
/// previous fingerprint at the start of every set, so the engine only
/// carries cached segments across the configurations of one set (which
/// are identical task sets) and never across sets — whose assignment to
/// workers depends on thread count and chunk size. The sweep drivers
/// use [`evaluate_point_chained`] instead, which lets chains run freely.
///
/// # Panics
///
/// Panics if `gen_config` is invalid (the experiment definitions in this
/// crate only produce valid ones) or if `configs` has more than 64
/// entries (per-set outcomes travel as a schedulability bitmask).
#[must_use]
pub fn evaluate_point_with(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
    crpd: CrpdApproach,
) -> PointStats {
    let mut chain = ChainState::default();
    evaluate_point_impl(gen_config, configs, opts, point_id, crpd, &mut chain, false)
}

/// [`evaluate_point_with`] over a caller-owned [`ChainState`]: worker
/// states persist across calls, and warm chains run freely — across the
/// sets of one point *and* across adjacent points — instead of being
/// severed per set. The engine's retention certificates keep every
/// analysis result (and the deterministic hit/miss meters) bitwise
/// identical to the unchained path at any thread count; only the warm
/// bookkeeping meters (`engine.warm_starts` et al.) and the
/// `experiments.chain_*` meters vary with scheduling, and all of those
/// are classified as scheduling meters in `cpa-telemetry`.
///
/// # Panics
///
/// Same conditions as [`evaluate_point_with`].
#[must_use]
pub fn evaluate_point_chained(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
    crpd: CrpdApproach,
    chain: &mut ChainState,
) -> PointStats {
    if !chain.states.is_empty() {
        // How many points linked into an existing chain, and over how
        // many worker states: scheduling meters (the chain shape depends
        // on --threads), not workload meters.
        cpa_obs::counter("experiments.chain_points_linked").incr();
        cpa_obs::counter("experiments.chain_workers").add(chain.states.len() as u64);
    }
    evaluate_point_impl(gen_config, configs, opts, point_id, crpd, chain, true)
}

fn evaluate_point_impl(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
    crpd: CrpdApproach,
    chain: &mut ChainState,
    link: bool,
) -> PointStats {
    assert!(configs.len() <= 64, "schedulability mask is 64 bits");
    let generator = TaskSetGenerator::new(gen_config.clone()).expect("valid generator config");
    let platform = platform_for(gen_config);
    let d_mem = gen_config.d_mem;

    let _span = cpa_obs::span!("experiments.evaluate_point");
    let evaluated = cpa_obs::counter("experiments.sets_evaluated");
    // Evaluations run sequentially from the driver, so a process-wide epoch
    // gives each call a scope block of its own even when point ids repeat
    // across experiments (fig2 reuses one id per panel to share task sets).
    let epoch = cpa_obs::next_scope_epoch();
    let outcomes: Vec<(f64, u64)> = cpa_pool::map_with(
        opts.sets_per_point,
        opts.pool_options(),
        epoch,
        |_worker| (AnalysisScratch::new(), ContextBuffers::new()),
        &mut chain.states,
        |(scratch, buffers), set| {
            // Unchained mode severs the warm chain per set so the warm
            // bookkeeping meters stay independent of which sets a worker
            // happened to process back to back. Chained mode skips the
            // sever: retention is certificate-gated in the engine, so
            // per-set *outcomes* are identical either way.
            if !link {
                scratch.forget_warm();
            }
            let set_seed = derive_seed(opts.seed, point_id, set as u64);
            let mut rng = ChaCha8Rng::seed_from_u64(set_seed);
            let tasks = generator.generate(&mut rng).expect("generation succeeds");
            let ctx = AnalysisContext::with_crpd_approach_buffers(&platform, &tasks, crpd, buffers)
                .expect("task set fits platform");
            let utilization = tasks.total_utilization(d_mem);
            let mut schedulable_mask = 0u64;
            for (i, cfg) in configs.iter().enumerate() {
                if analyze_with(&ctx, cfg, scratch).is_schedulable() {
                    schedulable_mask |= 1 << i;
                }
            }
            ctx.recycle(buffers);
            evaluated.incr();
            (utilization, schedulable_mask)
        },
    );

    let mut total = PointStats::new(configs.len());
    for (utilization, mask) in outcomes {
        for (i, acc) in total.accumulators.iter_mut().enumerate() {
            acc.record(utilization, mask & (1 << i) != 0);
        }
    }
    total
}

/// The pre-pool evaluation path, kept verbatim as the performance and
/// semantics baseline: statically striped workers (`set += threads`), a
/// fresh [`AnalysisContext`] built with the per-pair reference table fill,
/// and a fresh engine scratch for every `analyze` call. The `sweep_e2e`
/// bench times [`evaluate_point`] against this, and the
/// `pool_determinism` suite pins the two to identical tallies.
///
/// # Panics
///
/// Panics if `gen_config` is invalid.
#[must_use]
pub fn evaluate_point_reference(
    gen_config: &GeneratorConfig,
    configs: &[AnalysisConfig],
    opts: &SweepOptions,
    point_id: u64,
    crpd: CrpdApproach,
) -> PointStats {
    let generator = TaskSetGenerator::new(gen_config.clone()).expect("valid generator config");
    let platform = platform_for(gen_config);
    let d_mem = gen_config.d_mem;
    let threads = cpa_pool::resolve_threads(opts.threads);
    let sets = opts.sets_per_point;

    let evaluated = cpa_obs::counter("experiments.sets_evaluated");
    let epoch = cpa_obs::next_scope_epoch();
    let mut partials: Vec<PointStats> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let generator = &generator;
            let platform = &platform;
            let opts_seed = opts.seed;
            let handle = scope.spawn(move || {
                let mut stats = PointStats::new(configs.len());
                let mut set = worker;
                while set < sets {
                    let set_seed = derive_seed(opts_seed, point_id, set as u64);
                    cpa_obs::set_scope(cpa_pool::scope_key(epoch, set as u64));
                    let mut rng = ChaCha8Rng::seed_from_u64(set_seed);
                    let tasks = generator.generate(&mut rng).expect("generation succeeds");
                    let ctx = AnalysisContext::with_crpd_approach_reference(platform, &tasks, crpd)
                        .expect("task set fits platform");
                    let utilization = tasks.total_utilization(d_mem);
                    for (i, cfg) in configs.iter().enumerate() {
                        let result = cpa_analysis::analyze(&ctx, cfg);
                        stats.accumulators[i].record(utilization, result.is_schedulable());
                    }
                    evaluated.incr();
                    set += threads;
                }
                stats
            });
            handles.push(handle);
        }
        for handle in handles {
            partials.push(handle.join().expect("worker panicked"));
        }
    });

    let mut total = PointStats::new(configs.len());
    for partial in &partials {
        total.merge(partial);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_analysis::{BusPolicy, PersistenceMode};

    #[test]
    fn default_grid_matches_paper() {
        let g = default_grid();
        assert_eq!(g.len(), 20);
        assert!((g[0] - 0.05).abs() < 1e-12);
        assert!((g[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, 2, 3);
        assert_ne!(a, derive_seed(1, 2, 4));
        assert_ne!(a, derive_seed(1, 3, 3));
        assert_ne!(a, derive_seed(2, 2, 3));
        assert_eq!(a, derive_seed(1, 2, 3));
    }

    #[test]
    fn evaluation_is_thread_count_invariant() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.3);
        let configs = [
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        ];
        let base = SweepOptions::quick().with_sets_per_point(6);
        let mut one = base.clone();
        one.threads = 1;
        let mut four = base;
        four.threads = 4;
        let a = evaluate_point(&gen, &configs, &one, 7);
        let b = evaluate_point(&gen, &configs, &four, 7);
        for i in 0..configs.len() {
            assert_eq!(a.config(i).samples(), 6);
            assert_eq!(
                a.config(i).schedulable_count(),
                b.config(i).schedulable_count()
            );
            // Outcomes fold in set-index order on every thread count, so
            // even the f64 sums are bit-identical, not merely close.
            assert_eq!(a.config(i).value().to_bits(), b.config(i).value().to_bits());
        }
    }

    #[test]
    fn chained_evaluation_matches_unchained_bitwise() {
        let configs = [
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        ];
        let grid = [0.3, 0.5, 0.7];
        for threads in [1usize, 3] {
            let opts = SweepOptions::quick()
                .with_sets_per_point(5)
                .with_threads(threads);
            let mut chain = ChainState::default();
            for (ui, _) in grid.iter().enumerate() {
                let gen = GeneratorConfig::paper_default().with_per_core_utilization(grid[ui]);
                let chained = evaluate_point_chained(
                    &gen,
                    &configs,
                    &opts,
                    ui as u64,
                    CrpdApproach::EcbUnion,
                    &mut chain,
                );
                let cold = evaluate_point(&gen, &configs, &opts, ui as u64);
                for i in 0..configs.len() {
                    assert_eq!(
                        chained.config(i).schedulable_count(),
                        cold.config(i).schedulable_count(),
                        "threads {threads} point {ui} config {i}"
                    );
                    // Warm retention is certificate-gated, so even the
                    // f64 sums are bit-identical, not merely close.
                    assert_eq!(
                        chained.config(i).value().to_bits(),
                        cold.config(i).value().to_bits(),
                        "threads {threads} point {ui} config {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_evaluation_matches_reference_path() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.5);
        let configs = [
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
            AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
            AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
        ];
        let mut opts = SweepOptions::quick().with_sets_per_point(8);
        opts.threads = 2;
        let pooled = evaluate_point(&gen, &configs, &opts, 3);
        let reference = evaluate_point_reference(&gen, &configs, &opts, 3, CrpdApproach::EcbUnion);
        for i in 0..configs.len() {
            assert_eq!(pooled.config(i).samples(), reference.config(i).samples());
            assert_eq!(
                pooled.config(i).schedulable_count(),
                reference.config(i).schedulable_count(),
                "config {i}"
            );
            // The reference merges per-worker f64 partials, so only the
            // schedulability tallies are exact; the weighted sums agree
            // to rounding.
            assert!((pooled.config(i).value() - reference.config(i).value()).abs() < 1e-9);
        }
    }

    #[test]
    fn aware_dominates_oblivious_in_aggregate() {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.5);
        let configs = [
            AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware),
            AnalysisConfig::new(
                BusPolicy::RoundRobin { slots: 2 },
                PersistenceMode::Oblivious,
            ),
        ];
        let opts = SweepOptions::quick().with_sets_per_point(10);
        let stats = evaluate_point(&gen, &configs, &opts, 1);
        assert!(stats.config(0).schedulable_count() >= stats.config(1).schedulable_count());
    }
}
