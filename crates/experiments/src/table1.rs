//! Table I: per-benchmark task parameters.

use std::fmt::Write as _;

use cpa_workload::{benchmarks, published_benchmarks, Provenance};

/// Renders the benchmark parameter table as Markdown.
///
/// With `published_only`, reproduces exactly the six rows the paper prints
/// as Table I; otherwise the full generator pool is listed with its
/// provenance column.
#[must_use]
pub fn table1_markdown(published_only: bool) -> String {
    let rows = if published_only {
        published_benchmarks()
    } else {
        benchmarks()
    };
    let mut out = String::from(
        "### Table I — task parameters (Mälardalen suite, 256-set direct-mapped I-cache)\n\n",
    );
    out.push_str("| Name | PD_i | MD_i | MD_i^r | ECB_i | PCB_i | UCB_i | provenance |\n");
    out.push_str("|---|---|---|---|---|---|---|---|\n");
    for b in rows {
        let provenance = match b.provenance {
            Provenance::PublishedTable1 => "Table I",
            Provenance::Synthesized => "synthesized",
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            b.name, b.pd, b.md, b.md_r, b.ecb, b.pcb, b.ucb, provenance
        );
    }
    out
}

/// Renders the benchmark table as CSV.
#[must_use]
pub fn table1_csv(published_only: bool) -> String {
    let rows = if published_only {
        published_benchmarks()
    } else {
        benchmarks()
    };
    let mut out = String::from("name,pd,md,md_r,ecb,pcb,ucb,provenance\n");
    for b in rows {
        let provenance = match b.provenance {
            Provenance::PublishedTable1 => "published",
            Provenance::Synthesized => "synthesized",
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            b.name, b.pd, b.md, b.md_r, b.ecb, b.pcb, b.ucb, provenance
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_table_matches_paper_rows() {
        let md = table1_markdown(true);
        assert!(md.contains("| lcdnum | 984 | 1440 | 192 | 20 | 20 | 20 | Table I |"));
        assert!(md.contains("| nsichneu | 22009 | 147200 | 147200 | 256 | 0 | 256 | Table I |"));
        assert_eq!(md.lines().filter(|l| l.ends_with("Table I |")).count(), 6);
    }

    #[test]
    fn full_pool_lists_synthesized_rows() {
        let md = table1_markdown(false);
        assert!(md.contains("synthesized"));
        assert_eq!(md.lines().filter(|l| l.starts_with("| ")).count(), 16 + 1); // + header
    }

    #[test]
    fn csv_form() {
        let csv = table1_csv(true);
        assert!(csv.starts_with("name,pd,md"));
        assert!(csv.contains("statemate,10586,18257,3891,256,36,256,published"));
    }
}
