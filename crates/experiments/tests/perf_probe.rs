//! Throwaway timing probe (not a correctness test): splits the
//! end-to-end per-set cost of a Fig. 2 FP-panel sweep into generation,
//! context construction, and the three per-config analyses. Run with
//! `cargo test --release -p cpa-experiments --test perf_probe -- --ignored --nocapture`.

use std::hint::black_box;
use std::time::Instant;

use cpa_analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa_experiments::runner::{derive_seed, platform_for};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
#[ignore]
fn probe() {
    let configs = [
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
    ];
    let utils = [0.3, 0.5, 0.7, 0.9];
    let sets_per_util = 50u64;
    let (mut gen_ns, mut ctx_ns, mut analyze_ns) = (0u128, 0u128, 0u128);
    let mut sets = 0u64;
    for &util in &utils {
        let gen = GeneratorConfig::paper_default().with_per_core_utilization(util);
        let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
        let platform = platform_for(&gen);
        for set in 0..sets_per_util {
            let seed = derive_seed(1, 0, set);
            let start = Instant::now();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let tasks = generator.generate(&mut rng).expect("task set");
            gen_ns += start.elapsed().as_nanos();

            let start = Instant::now();
            let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
            ctx_ns += start.elapsed().as_nanos();

            let start = Instant::now();
            for cfg in &configs {
                black_box(analyze(&ctx, cfg));
            }
            analyze_ns += start.elapsed().as_nanos();
            sets += 1;
        }
    }
    let per = |ns: u128| ns as f64 / sets as f64 / 1000.0;
    let total = gen_ns + ctx_ns + analyze_ns;
    eprintln!("sets          : {sets}");
    eprintln!(
        "generation    : {:8.1} us/set ({:4.1}%)",
        per(gen_ns),
        gen_ns as f64 / total as f64 * 100.0
    );
    eprintln!(
        "context build : {:8.1} us/set ({:4.1}%)",
        per(ctx_ns),
        ctx_ns as f64 / total as f64 * 100.0
    );
    eprintln!(
        "3x analyze    : {:8.1} us/set ({:4.1}%)",
        per(analyze_ns),
        analyze_ns as f64 / total as f64 * 100.0
    );
}
