//! The traced event stream of a pooled sweep is byte-identical across
//! worker counts: every event is stamped with a `(scope, seq)` key where
//! the scope is `cpa_pool::scope_key(epoch, set)` — assigned per task set,
//! not per worker — so the drained, canonically-sorted stream does not
//! depend on how the pool interleaved its chunks.
//!
//! This lives in its own integration-test binary (single test) because it
//! toggles the process-wide `cpa-obs` subscriber and rewinds the global
//! scope-epoch allocator with `cpa_obs::reset()`.

use cpa_analysis::{AnalysisConfig, BusPolicy, PersistenceMode};
use cpa_experiments::runner::evaluate_point;
use cpa_experiments::SweepOptions;
use cpa_workload::GeneratorConfig;

fn traced_sweep(threads: usize) -> String {
    cpa_obs::reset();
    cpa_obs::enable();
    let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.4);
    let configs = [
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
    ];
    let opts = SweepOptions::quick()
        .with_sets_per_point(8)
        .with_seed(0xFEED)
        .with_threads(threads);
    let point = evaluate_point(&gen, &configs, &opts, 1);
    cpa_obs::disable();
    assert_eq!(point.config(0).samples(), 8);
    cpa_obs::events_to_json_lines(&cpa_obs::take_events())
}

#[test]
fn sweep_event_stream_bytes_are_worker_count_invariant() {
    let single = traced_sweep(1);
    let parallel = traced_sweep(4);
    assert!(!single.is_empty(), "traced sweep produced no events");
    assert!(
        single.lines().any(|l| l.contains("wcrt.")),
        "expected per-analysis events in the stream"
    );
    assert_eq!(
        single, parallel,
        "same seed must produce byte-identical traces across worker counts"
    );
}
