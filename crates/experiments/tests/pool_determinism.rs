//! Thread-count invariance of the experiment sweeps, end to end: the
//! serialized experiment artifacts (CSV and Markdown) must be
//! byte-identical no matter how many workers the [`cpa_pool`] pool uses or
//! how the work is chunked. The pool returns per-set outcomes in set-index
//! order and the runner folds them sequentially, so even the non-
//! associative `f64` accumulations cannot drift.

use cpa_analysis::BusPolicy;
use cpa_experiments::{fig2, report, SweepOptions};

fn tiny(threads: usize, chunk: usize) -> SweepOptions {
    SweepOptions::quick()
        .with_sets_per_point(6)
        .with_utilization_grid(vec![0.3, 0.6, 0.9])
        .with_seed(0xBEEF)
        .with_threads(threads)
        .with_chunk(chunk)
}

fn panel_bytes(threads: usize, chunk: usize) -> (String, String) {
    let result = fig2::fig2_panel(
        &tiny(threads, chunk),
        "fig2a",
        "FP bus",
        BusPolicy::FixedPriority,
        0,
    );
    (report::to_csv(&result), report::to_markdown(&result))
}

#[test]
fn artifacts_are_byte_identical_across_thread_counts() {
    // The always-on counter proves the warm-start path was live while
    // the bytes were compared: each sweep item chains its configurations
    // on one scratch, so retention must fire — and must not show up in
    // any artifact byte.
    let warm_before = cpa_obs::counter("engine.warm_starts").get();
    let (csv_1, md_1) = panel_bytes(1, 0);
    assert!(
        cpa_obs::counter("engine.warm_starts").get() > warm_before,
        "sweep items must chain their configs on a warm scratch"
    );
    for threads in [2, 4, 8] {
        let (csv_n, md_n) = panel_bytes(threads, 0);
        assert_eq!(csv_1, csv_n, "CSV diverged at {threads} threads");
        assert_eq!(md_1, md_n, "Markdown diverged at {threads} threads");
    }
}

#[test]
fn artifacts_are_byte_identical_across_chunk_sizes() {
    let (csv_default, _) = panel_bytes(3, 0);
    for chunk in [1, 2, 7, 64] {
        let (csv_c, _) = panel_bytes(3, chunk);
        assert_eq!(csv_default, csv_c, "CSV diverged at chunk size {chunk}");
    }
}
