//! Design-space optimization over the persistence-aware analysis.
//!
//! The analysis of *Cache Persistence-Aware Memory Bus Contention Analysis
//! for Multicore Systems* (Rashid, Nelissen, Tovar — DATE 2020) answers
//! "is this configuration schedulable?". This crate asks the inverse
//! question: given the tasks, *which* configuration — task-to-core
//! partitioning, priority assignment and cache coloring — maximizes the
//! schedulability margin? All three dimensions interact through the
//! analysis: partitioning moves tasks between the per-core CRPD/CPRO
//! interference sets (γ and ρ̂ of Eq. (2)/(14)), priorities reshape the
//! hp/lp relations of Eq. (19), and coloring rotates ECB/UCB/PCB
//! footprints to shrink the inter-task overlaps those terms are built on.
//!
//! # Pieces
//!
//! * [`Candidate`] — one point in the space; applying it rebuilds a
//!   concrete task set ([`candidate`]).
//! * [`Score`] — a totally ordered schedulability margin ([`score`]).
//! * [`optimize`] — exhaustive enumeration on small spaces, Audsley-seeded
//!   deterministic local search otherwise, candidates fanned over
//!   `cpa-pool` with per-worker scratch reuse ([`search`]).
//! * [`process_batch`] — the service surface: a JSON array of
//!   [`OptimizeRequest`]s in, verdicts + optimized assignments + search
//!   statistics out ([`service`]).
//! * [`ResultCache`] — content-addressed response store keyed on the
//!   canonical request fingerprint; warm runs replay the exact cold-run
//!   bytes ([`cache`]).
//! * [`AdmissionCheck`] — O(n) sound lower bounds that reject provably
//!   unschedulable candidates before any engine call ([`prune`]).
//! * [`SolveMemo`] — batch-scoped memo of individual candidate solves,
//!   shared across candidates and requests below the response cache
//!   ([`cache`]).
//!
//! # Determinism contract
//!
//! For a fixed request batch the response document is byte-identical
//! across runs, worker-thread counts, and cache temperatures. See the
//! `optimizer_determinism` integration test and DESIGN.md §13.
//!
//! # Example
//!
//! ```
//! use cpa_optimize::{gen_batch, process_batch, GenOptions, ResultCache, ServiceOptions};
//!
//! let mut opts = GenOptions::default();
//! opts.sets = 1;
//! opts.cores = 2;
//! opts.tasks_per_core = 2;
//! opts.cache_sets = 16;
//! opts.toy = true;
//! let batch = gen_batch(&opts).unwrap();
//!
//! let mut cache = ResultCache::in_memory();
//! let service = ServiceOptions::default();
//! let (cold, stats) = process_batch(&batch, &service, &mut cache).unwrap();
//! assert_eq!(stats.cache_misses, 1);
//! // A second run over the same batch is served entirely from the cache,
//! // byte for byte.
//! let (warm, stats) = process_batch(&batch, &service, &mut cache).unwrap();
//! assert_eq!(stats.cache_hits, 1);
//! assert_eq!(cold, warm);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cache;
pub mod candidate;
pub mod prune;
pub mod score;
pub mod search;
pub mod service;

pub use cache::{ResultCache, SolveMemo};
pub use candidate::Candidate;
pub use prune::{Admission, AdmissionCheck, AdmissionScratch};
pub use score::{evaluate_result, Evaluation, Score};
pub use search::{optimize, optimize_with_memo, SearchKnobs, SearchOutcome, SearchStats};
pub use service::{
    gen_batch, process_batch, request_key, BatchStats, GenOptions, OptimizeRequest,
    OptimizeResponse, ServiceOptions, TaskAssignment,
};
