//! `cpa-optimize`: the design-space optimization service, as a CLI.
//!
//! ```text
//! cpa-optimize run --requests FILE [--out FILE] [--cache DIR]
//!                  [--threads N] [--chunk N] [--stats FILE]
//!                  [--trace FILE] [--metrics FILE]
//! cpa-optimize gen --sets N [--seed S] [--cores N] [--tasks-per-core N]
//!                  [--cache-sets N] [--util F] [--d-mem N] [--bus P]
//!                  [--slots N] [--mode M] [--toy] [--out FILE]
//! ```
//!
//! `run` processes a JSON batch of optimization requests and writes the
//! response array to `--out` (or stdout). The response bytes depend only
//! on the batch content: `--threads`, `--chunk` and cache temperature are
//! invisible in the output. Batch statistics (cache hits, candidates
//! evaluated, improvements) go to stderr and optionally to `--stats` as
//! JSON. `gen` emits a seeded batch of generator-drawn requests.

use std::process::ExitCode;

use cpa_experiments::cli::{Args, ObsSinks};
use cpa_optimize::{gen_batch, process_batch, GenOptions, ResultCache, ServiceOptions};

const USAGE: &str = "usage:
  cpa-optimize run --requests FILE [--out FILE] [--cache DIR]
                   [--threads N] [--chunk N] [--stats FILE]
                   [--trace FILE] [--metrics FILE]
  cpa-optimize gen --sets N [--seed S] [--cores N] [--tasks-per-core N]
                   [--cache-sets N] [--util F] [--d-mem N] [--bus P]
                   [--slots N] [--mode M] [--toy] [--out FILE]

run processes a JSON array of optimization requests (see `gen` for the
format) and writes a JSON array of verdicts: schedulability before and
after, the optimized core/priority/coloring assignment, and search
statistics. Results are served from a content-addressed cache when one is
configured; --threads never changes the output bytes.";

fn main() -> ExitCode {
    let mut args = Args::from_env(USAGE);
    let outcome = match args.next_arg().as_deref() {
        Some("run") => run(args),
        Some("gen") => gen(args),
        Some("--help" | "-h") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn write_out(path: Option<&str>, body: &str) -> Result<(), String> {
    match path {
        Some(path) => std::fs::write(path, body).map_err(|e| format!("write {path}: {e}")),
        None => {
            print!("{body}");
            Ok(())
        }
    }
}

fn run(mut args: Args) -> Result<(), String> {
    let mut requests_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut service = ServiceOptions::default();
    let mut sinks = ObsSinks::default();
    while let Some(arg) = args.next_arg() {
        if sinks
            .apply_flag(&mut args, arg.as_str())
            .map_err(|e| e.to_string())?
        {
            continue;
        }
        match arg.as_str() {
            "--requests" => {
                requests_path = Some(args.value_for("--requests").map_err(|e| e.to_string())?);
            }
            "--out" => out = Some(args.value_for("--out").map_err(|e| e.to_string())?),
            "--cache" => cache_dir = Some(args.value_for("--cache").map_err(|e| e.to_string())?),
            "--stats" => stats_path = Some(args.value_for("--stats").map_err(|e| e.to_string())?),
            "--threads" => {
                service.threads = args.value_for("--threads").map_err(|e| e.to_string())?
            }
            "--chunk" => service.chunk = args.value_for("--chunk").map_err(|e| e.to_string())?,
            "--help" | "-h" => return Err(args.help().to_string()),
            other => return Err(args.unknown_flag(other).to_string()),
        }
    }
    let requests_path = requests_path.ok_or_else(|| format!("run needs --requests\n{USAGE}"))?;
    let batch = std::fs::read_to_string(&requests_path)
        .map_err(|e| format!("read {requests_path}: {e}"))?;
    let mut cache = match &cache_dir {
        Some(dir) => ResultCache::persistent(dir).map_err(|e| format!("open cache {dir}: {e}"))?,
        None => ResultCache::in_memory(),
    };
    sinks.enable();
    let (body, stats) = process_batch(&batch, &service, &mut cache)?;
    write_out(out.as_deref(), &body)?;
    sinks.write().map_err(|e| e.to_string())?;
    let stats_doc = serde_json::to_string(&stats).map_err(|e| format!("stats: {e}"))?;
    eprintln!("{stats_doc}");
    if let Some(path) = stats_path {
        std::fs::write(&path, format!("{stats_doc}\n"))
            .map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn gen(mut args: Args) -> Result<(), String> {
    let mut opts = GenOptions::default();
    let mut out: Option<String> = None;
    while let Some(arg) = args.next_arg() {
        match arg.as_str() {
            "--sets" => opts.sets = args.value_for("--sets").map_err(|e| e.to_string())?,
            "--seed" => opts.seed = args.value_for("--seed").map_err(|e| e.to_string())?,
            "--cores" => opts.cores = args.value_for("--cores").map_err(|e| e.to_string())?,
            "--tasks-per-core" => {
                opts.tasks_per_core = args
                    .value_for("--tasks-per-core")
                    .map_err(|e| e.to_string())?;
            }
            "--cache-sets" => {
                opts.cache_sets = args.value_for("--cache-sets").map_err(|e| e.to_string())?;
            }
            "--util" => opts.util = args.value_for("--util").map_err(|e| e.to_string())?,
            "--d-mem" => opts.d_mem = args.value_for("--d-mem").map_err(|e| e.to_string())?,
            "--bus" => opts.bus = args.value_for("--bus").map_err(|e| e.to_string())?,
            "--slots" => opts.slots = args.value_for("--slots").map_err(|e| e.to_string())?,
            "--mode" => opts.mode = args.value_for("--mode").map_err(|e| e.to_string())?,
            "--toy" => opts.toy = true,
            "--out" => out = Some(args.value_for("--out").map_err(|e| e.to_string())?),
            "--help" | "-h" => return Err(args.help().to_string()),
            other => return Err(args.unknown_flag(other).to_string()),
        }
    }
    let batch = gen_batch(&opts)?;
    write_out(out.as_deref(), &format!("{batch}\n"))
}
