//! Admission pruning: O(n) sound lower bounds that reject provably
//! unschedulable candidates before any engine call.
//!
//! Both bounds under-approximate what *every* analysis configuration
//! (bus policy × persistence mode) charges, so a pruned candidate can
//! never be schedulable — see DESIGN.md §16 for the argument:
//!
//! 1. **Demand floor** — the inner recurrence starts from, and never
//!    drops below, `PD_i + MD_i · d_mem` (§IV initial estimates; even the
//!    perfect bus charges every own access). If that floor already
//!    exceeds `D_i` for some task, no configuration converges within the
//!    deadline. The floor is invariant under every optimizer move —
//!    partitioning, priorities and coloring touch none of its inputs —
//!    so it is computed once per base set.
//! 2. **Core utilization** — on a core whose members' residual demand
//!    `Σ_k (PD_k + MD^r_k · d_mem) / T_k` exceeds 1, the lowest-priority
//!    member's recurrence right-hand side is at least `t · U > t` for
//!    every `t ≤ D ≤ T` (constrained deadlines and `MD^r ≤ MD` are
//!    builder-enforced, and the persistence-aware bounds charge at least
//!    the residual demand per job), so it diverges past its deadline.
//!    Only the partition matters: ranks pick *which* member diverges,
//!    colors shift footprints but not demands.
//!
//! The utilization sum is accumulated as an exact gcd-reduced `u128`
//! fraction; on overflow the core is conservatively admitted. The
//! soundness obligation — *no pruned candidate is actually schedulable* —
//! is re-checked empirically by the campaign oracle in `cpa-validate`
//! and by the property test below.

use cpa_model::{TaskSet, Time};

/// Why a candidate was (not) admitted to full evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// No bound fired; the candidate must be evaluated for real.
    Admitted,
    /// Some task's `PD + MD · d_mem` floor exceeds its deadline
    /// (independent of the candidate, so the whole space is pruned).
    DemandExceedsDeadline,
    /// Some core's residual utilization provably exceeds 1 under this
    /// partition.
    CoreOverUtilized,
}

/// Precomputed per-task columns of the admission bounds for one base set.
///
/// Construction is O(n); [`AdmissionCheck::admit`] is O(n + cores) per
/// candidate with no allocation beyond one reusable per-core accumulator.
#[derive(Debug, Clone)]
pub struct AdmissionCheck {
    /// `PD_k + MD^r_k · d_mem` per base task (saturating).
    residual: Vec<u64>,
    /// Task periods in cycles.
    period: Vec<u64>,
    /// `Some` iff some task's demand floor `PD + MD · d_mem` exceeds its
    /// own deadline — a candidate-invariant verdict.
    infeasible_task: Option<usize>,
}

/// Exact fraction accumulator: `num / den`. `None` marks an overflowed
/// (unknown) sum that must never prune.
type Fraction = Option<(u128, u128)>;

/// Reusable per-core accumulator buffer for [`AdmissionCheck::admit_with`].
/// One instance per driver amortizes the allocation over every candidate.
#[derive(Debug, Default, Clone)]
pub struct AdmissionScratch {
    load: Vec<Fraction>,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// `acc + add/per`, exactly, or `None` on overflow.
///
/// The sum is kept *unreduced* — u128 headroom covers any realistic
/// period product, and skipping the gcd pass keeps the per-candidate
/// admission loop division-free. Only when a checked multiply would
/// overflow is the accumulator gcd-reduced and the add retried; the
/// represented rational (and thus every verdict) is identical either way.
fn add_fraction(acc: Fraction, add: u64, per: u64) -> Fraction {
    fn raw(num: u128, den: u128, add: u128, per: u128) -> Fraction {
        let num = num.checked_mul(per)?.checked_add(add.checked_mul(den)?)?;
        let den = den.checked_mul(per)?;
        Some((num, den))
    }
    let (num, den) = acc?;
    if per == 0 {
        return None;
    }
    let (add, per) = (u128::from(add), u128::from(per));
    raw(num, den, add, per).or_else(|| {
        let g = gcd(num, den);
        raw(num / g, den / g, add, per)
    })
}

impl AdmissionCheck {
    /// Builds the columns for `base` under memory latency `d_mem`.
    #[must_use]
    pub fn new(base: &TaskSet, d_mem: Time) -> AdmissionCheck {
        let d_mem = d_mem.cycles();
        let mut residual = Vec::with_capacity(base.len());
        let mut period = Vec::with_capacity(base.len());
        let mut infeasible_task = None;
        for (k, t) in base.iter().enumerate() {
            let pd = t.processing_demand().cycles();
            let floor = pd.saturating_add(t.memory_demand().saturating_mul(d_mem));
            if infeasible_task.is_none() && floor > t.deadline().cycles() {
                infeasible_task = Some(k);
            }
            residual.push(pd.saturating_add(t.residual_memory_demand().saturating_mul(d_mem)));
            period.push(t.period().cycles());
        }
        AdmissionCheck {
            residual,
            period,
            infeasible_task,
        }
    }

    /// The task whose demand floor exceeds its deadline, if any.
    #[must_use]
    pub fn infeasible_task(&self) -> Option<usize> {
        self.infeasible_task
    }

    /// Judges one candidate partition (`cores[k]` is the core of base
    /// task `k`). Ranks and colorings are deliberately not inputs: the
    /// bounds are invariant in both. Allocates a fresh accumulator; hot
    /// callers should use [`AdmissionCheck::admit_with`].
    #[must_use]
    pub fn admit(&self, cores: &[usize], num_cores: usize) -> Admission {
        self.admit_with(cores, num_cores, &mut AdmissionScratch::default())
    }

    /// [`AdmissionCheck::admit`] against a caller-owned scratch buffer:
    /// allocation-free after the first call with a given core count.
    #[must_use]
    pub fn admit_with(
        &self,
        cores: &[usize],
        num_cores: usize,
        scratch: &mut AdmissionScratch,
    ) -> Admission {
        if self.infeasible_task.is_some() {
            return Admission::DemandExceedsDeadline;
        }
        debug_assert_eq!(cores.len(), self.residual.len());
        scratch.load.clear();
        scratch.load.resize(num_cores, Some((0, 1)));
        for (k, &core) in cores.iter().enumerate() {
            let acc = &mut scratch.load[core];
            *acc = add_fraction(*acc, self.residual[k], self.period[k]);
            if let Some((num, den)) = *acc {
                if num > den {
                    return Admission::CoreOverUtilized;
                }
            }
        }
        Admission::Admitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_analysis::{analyze, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
    use cpa_model::{CacheBlockSet, CacheGeometry, CoreId, Platform, Priority, Task};
    use proptest::prelude::*;

    fn task(name: &str, prio: u32, core: usize, pd: u64, md: u64, md_r: u64, period: u64) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(16, 0, 8))
            .ucb(CacheBlockSet::contiguous(16, 0, 4))
            .pcb(CacheBlockSet::contiguous(16, 2, 3))
            .build()
            .expect("valid task")
    }

    fn platform(cores: usize, d_mem: u64) -> Platform {
        Platform::builder()
            .cores(cores)
            .cache(CacheGeometry::direct_mapped(16, 32))
            .memory_latency(Time::from_cycles(d_mem))
            .build()
            .expect("valid platform")
    }

    #[test]
    fn feasible_partition_is_admitted() {
        let ts = TaskSet::new(vec![
            task("a", 0, 0, 100, 10, 2, 10_000),
            task("b", 1, 1, 100, 10, 2, 10_000),
        ])
        .expect("set");
        let check = AdmissionCheck::new(&ts, Time::from_cycles(10));
        assert_eq!(check.infeasible_task(), None);
        assert_eq!(check.admit(&[0, 1], 2), Admission::Admitted);
    }

    #[test]
    fn demand_floor_prunes_every_partition() {
        // pd + md·d_mem = 500 + 60·10 = 1100 > D = 1000.
        let ts = TaskSet::new(vec![
            task("tight", 0, 0, 500, 60, 2, 1_000),
            task("easy", 1, 1, 100, 10, 2, 10_000),
        ])
        .expect("set");
        let check = AdmissionCheck::new(&ts, Time::from_cycles(10));
        assert_eq!(check.infeasible_task(), Some(0));
        for cores in [[0, 0], [0, 1], [1, 0], [1, 1]] {
            assert_eq!(check.admit(&cores, 2), Admission::DemandExceedsDeadline);
        }
    }

    #[test]
    fn over_utilized_core_is_pruned_and_split_is_admitted() {
        // Each task loads (600 + 2·10)/1000 = 0.62; together 1.24 > 1.
        let ts = TaskSet::new(vec![
            task("a", 0, 0, 600, 30, 2, 1_000),
            task("b", 1, 0, 600, 30, 2, 1_000),
        ])
        .expect("set");
        let check = AdmissionCheck::new(&ts, Time::from_cycles(10));
        assert_eq!(check.admit(&[0, 0], 2), Admission::CoreOverUtilized);
        assert_eq!(check.admit(&[1, 1], 2), Admission::CoreOverUtilized);
        assert_eq!(check.admit(&[0, 1], 2), Admission::Admitted);
    }

    #[test]
    fn exactly_full_core_is_not_pruned() {
        // Utilization exactly 1 is not provably divergent within D = T:
        // residual load (990 + 1·10)/1000 = 1 must not trip the bound
        // (and the demand floor 990 + 1·10 = D does not fire either).
        let ts = TaskSet::new(vec![task("a", 0, 0, 990, 1, 1, 1_000)]).expect("set");
        let check = AdmissionCheck::new(&ts, Time::from_cycles(10));
        assert_eq!(check.admit(&[0], 1), Admission::Admitted);
    }

    #[test]
    fn overflowing_fraction_admits_conservatively() {
        // Three tiny loads over huge pairwise-coprime periods: the true
        // utilization is ≈ 0, but the exact denominator product exceeds
        // u128, so the accumulator overflows and must admit, never prune
        // on a guess.
        let p1 = (1u64 << 62) - 57; // odd, pairwise no small common factor
        let p2 = (1u64 << 62) - 87;
        let p3 = (1u64 << 62) - 117;
        let ts = TaskSet::new(vec![
            task("a", 0, 0, 1, 1, 1, p1),
            task("b", 1, 0, 1, 1, 1, p2),
            task("c", 2, 0, 1, 1, 1, p3),
        ])
        .expect("set");
        let check = AdmissionCheck::new(&ts, Time::from_cycles(1));
        assert_eq!(check.admit(&[0, 0, 0], 1), Admission::Admitted);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The soundness obligation itself: whenever a random partition of
        /// a random set is pruned, the full analysis must agree that the
        /// partitioned set is unschedulable, under every bus policy and
        /// persistence mode.
        #[test]
        fn pruned_partitions_are_never_schedulable(
            pds in proptest::collection::vec(50u64..2_000, 2..5),
            mds in proptest::collection::vec(1u64..64, 4..5),
            periods in proptest::collection::vec(500u64..4_000, 4..5),
            assignment in proptest::collection::vec(0usize..2, 4..5),
            d_mem in 1u64..30,
        ) {
            let n = pds.len();
            let tasks: Vec<Task> = (0..n)
                .map(|k| {
                    let md = mds[k];
                    task(
                        &format!("t{k}"),
                        k as u32,
                        assignment[k] % 2,
                        pds[k],
                        md,
                        md / 3,
                        periods[k].max(pds[k] + 1),
                    )
                })
                .collect();
            let ts = TaskSet::new(tasks).expect("set");
            let platform = platform(2, d_mem);
            let check = AdmissionCheck::new(&ts, Time::from_cycles(d_mem));
            let cores: Vec<usize> = ts.iter().map(|t| t.core().index()).collect();
            if check.admit(&cores, 2) == Admission::Admitted {
                return Ok(());
            }
            let ctx = AnalysisContext::new(&platform, &ts).expect("context");
            for bus in [
                BusPolicy::FixedPriority,
                BusPolicy::RoundRobin { slots: 2 },
                BusPolicy::Tdma { slots: 2 },
                BusPolicy::Perfect,
            ] {
                for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                    let result = analyze(&ctx, &AnalysisConfig::new(bus, mode));
                    prop_assert!(
                        !result.is_schedulable(),
                        "pruned but schedulable under {bus:?}/{mode:?}"
                    );
                }
            }
        }
    }
}
