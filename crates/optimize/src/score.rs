//! Candidate quality: a totally ordered schedulability margin.
//!
//! The optimizer compares design-space candidates by a lexicographic
//! [`Score`]: schedulability first, then how many tasks converged within
//! their deadline, then the worst-case margin (minimum slack), then the
//! aggregate margin (total slack). The derived `Ord` on the struct *is*
//! the comparison — field order matters and is part of the contract.

use cpa_analysis::AnalysisResult;
use cpa_model::TaskSet;
use serde::Serialize;

/// Lexicographic schedulability margin of one candidate configuration.
///
/// Ordering (via the derived `Ord`, field by field):
///
/// 1. `schedulable` — a schedulable candidate beats any unschedulable one;
/// 2. `converged` — more tasks with a converged WCRT within deadline;
/// 3. `min_slack` — larger worst-case margin `min_i (D_i − R_i)`;
/// 4. `total_slack` — larger aggregate margin `Σ_i (D_i − R_i)`.
///
/// For unschedulable candidates `min_slack` is forced to 0 so the partial
/// slack of the tasks that did converge still provides a search gradient
/// through `total_slack` without ever outranking a schedulable candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Score {
    /// Whether every task's WCRT converged within its deadline.
    pub schedulable: bool,
    /// Number of tasks whose response-time estimate converged within its
    /// deadline (equals the task count iff `schedulable`).
    pub converged: u32,
    /// Minimum slack `D_i − R_i` over converged tasks, in cycles; 0 when
    /// the candidate is unschedulable.
    pub min_slack: u64,
    /// Total slack over converged tasks, in cycles.
    pub total_slack: u64,
}

impl Score {
    /// The score of a candidate no analysis ever produced: loses to
    /// everything a real evaluation can return.
    #[must_use]
    pub fn worst() -> Score {
        Score {
            schedulable: false,
            converged: 0,
            min_slack: 0,
            total_slack: 0,
        }
    }
}

/// One evaluated candidate: its [`Score`] plus a per-priority-level
/// convergence mask used by the Audsley seeding pass.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// The candidate's schedulability margin.
    pub score: Score,
    /// Bit `r` is set iff the task at priority rank `r` (= `TaskId` `r` in
    /// the rebuilt set) converged within its deadline. Only the first 128
    /// ranks are tracked; larger sets simply skip Audsley seeding.
    pub converged_mask: u128,
}

/// Folds an [`AnalysisResult`] into an [`Evaluation`] of the analysed set.
///
/// On unschedulable results the engine reports `Some` estimates for tasks
/// it had not yet disproved; those are counted (and contribute slack) only
/// when the estimate is within the deadline, and can never make an
/// unschedulable candidate outrank a schedulable one because
/// `Score::schedulable` is the leading key.
#[must_use]
pub fn evaluate_result(tasks: &TaskSet, result: &AnalysisResult) -> Evaluation {
    let mut converged = 0u32;
    let mut mask = 0u128;
    let mut min_slack = u64::MAX;
    let mut total_slack = 0u64;
    for i in tasks.ids() {
        let deadline = tasks.get(i).expect("id from this set").deadline();
        if let Some(r) = result.response_time(i) {
            if r <= deadline {
                converged += 1;
                let slack = deadline.cycles() - r.cycles();
                min_slack = min_slack.min(slack);
                total_slack = total_slack.saturating_add(slack);
                if i.index() < 128 {
                    mask |= 1u128 << i.index();
                }
            }
        }
    }
    let schedulable = result.is_schedulable();
    if !schedulable || min_slack == u64::MAX {
        min_slack = 0;
    }
    Evaluation {
        score: Score {
            schedulable,
            converged,
            min_slack,
            total_slack,
        },
        converged_mask: mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let sched = Score {
            schedulable: true,
            converged: 4,
            min_slack: 1,
            total_slack: 10,
        };
        let sched_wider = Score {
            schedulable: true,
            converged: 4,
            min_slack: 2,
            total_slack: 4,
        };
        let unsched_fat = Score {
            schedulable: false,
            converged: 3,
            min_slack: 0,
            total_slack: u64::MAX,
        };
        assert!(sched > unsched_fat, "schedulability dominates slack");
        assert!(sched_wider > sched, "min slack breaks schedulable ties");
        assert!(unsched_fat > Score::worst());
    }
}
