//! Content-addressed result cache.
//!
//! Keys are 64-bit fingerprints of the *canonical* request content (task
//! set, bus, persistence mode, platform shape, seed, search knobs — see
//! `service::request_key`); values are the exact serialized response
//! documents. Because the stored bytes are replayed verbatim, a warm run
//! is byte-identical to the cold run that populated the cache — which is
//! what makes cache hits indistinguishable in the output and observable
//! only through the `optimize.cache_{hits,misses}` counters and the batch
//! stats.
//!
//! The cache is two-level: a process-local map, optionally backed by a
//! directory with one `<key:016x>.json` file per entry so separate
//! invocations share results.
//!
//! Below the response cache sits the [`SolveMemo`]: a batch-scoped memo
//! of individual *candidate solves*, keyed on the exact analysis problem
//! (base-set content, analysis environment, candidate vectors). Where the
//! response cache deduplicates whole requests, the memo deduplicates the
//! solve fragments shared *across* candidates and requests within one
//! batch — repeated search points, identical neighbours, Audsley probes
//! that re-derive the same configuration.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

use cpa_model::Time;

use crate::score::Evaluation;

/// A content-addressed store of serialized response documents.
#[derive(Debug, Default)]
pub struct ResultCache {
    memory: HashMap<u64, String>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// A cache that lives only as long as this process.
    #[must_use]
    pub fn in_memory() -> ResultCache {
        ResultCache::default()
    }

    /// A cache backed by `dir` (created if missing); entries persist
    /// across invocations.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn persistent(dir: impl AsRef<Path>) -> io::Result<ResultCache> {
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            memory: HashMap::new(),
            dir: Some(dir.as_ref().to_path_buf()),
        })
    }

    fn path_for(&self, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{key:016x}.json")))
    }

    /// Looks up `key`, bumping `optimize.cache_hits` or
    /// `optimize.cache_misses`. Disk hits are promoted into memory.
    pub fn get(&mut self, key: u64) -> Option<String> {
        if let Some(doc) = self.memory.get(&key) {
            cpa_obs::counter("optimize.cache_hits").incr();
            return Some(doc.clone());
        }
        if let Some(path) = self.path_for(key) {
            if let Ok(doc) = std::fs::read_to_string(&path) {
                cpa_obs::counter("optimize.cache_hits").incr();
                self.memory.insert(key, doc.clone());
                return Some(doc);
            }
        }
        cpa_obs::counter("optimize.cache_misses").incr();
        None
    }

    /// Stores `doc` under `key`, writing through to disk when persistent.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the write-through fails; the in-memory
    /// entry is only inserted after a successful write.
    pub fn put(&mut self, key: u64, doc: &str) -> io::Result<()> {
        if let Some(path) = self.path_for(key) {
            std::fs::write(&path, doc)?;
        }
        self.memory.insert(key, doc.to_string());
        Ok(())
    }

    /// Number of entries currently resident in memory.
    #[must_use]
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// `true` when no entries are resident in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }
}

/// One memoized candidate solve: its [`Evaluation`] and, when the solve
/// tracked them, the per-task response-time vector.
#[derive(Debug)]
struct MemoEntry {
    eval: Evaluation,
    responses: Option<Vec<Time>>,
}

/// A batch-scoped, content-addressed memo of candidate solves, shared
/// across every candidate and request in one `process_batch` call.
///
/// Consulted and updated only on the search driver thread, in candidate
/// order, so its hit pattern — and therefore every solve the pool runs —
/// is invariant in the worker-thread count. Entries are never evicted;
/// the memo lives exactly as long as its batch.
#[derive(Debug, Default)]
pub struct SolveMemo {
    entries: HashMap<u64, MemoEntry>,
}

impl SolveMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> SolveMemo {
        SolveMemo::default()
    }

    /// Number of memoized solves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a solve. When `need_responses` is set, an entry without a
    /// response vector counts as a miss so the caller re-solves (and
    /// upgrades the entry via [`SolveMemo::insert`]).
    pub(crate) fn get(&self, key: u64, need_responses: bool) -> Option<(Evaluation, Vec<Time>)> {
        let entry = self.entries.get(&key)?;
        if need_responses {
            entry.responses.clone().map(|resp| (entry.eval, resp))
        } else {
            Some((entry.eval, Vec::new()))
        }
    }

    /// Stores (or upgrades) a solve. An existing entry's response vector
    /// is never downgraded to `None`.
    pub(crate) fn insert(&mut self, key: u64, eval: Evaluation, responses: Option<Vec<Time>>) {
        match self.entries.get_mut(&key) {
            Some(entry) => {
                if entry.responses.is_none() {
                    entry.responses = responses;
                }
            }
            None => {
                self.entries.insert(key, MemoEntry { eval, responses });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Score;

    #[test]
    fn memory_round_trip() {
        let mut cache = ResultCache::in_memory();
        assert!(cache.get(7).is_none());
        cache.put(7, "{\"x\":1}").unwrap();
        assert_eq!(cache.get(7).as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn persistent_entries_survive_a_new_handle() {
        let dir = std::env::temp_dir().join(format!("cpa-optimize-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ResultCache::persistent(&dir).unwrap();
            cache.put(0xdead_beef, "{\"y\":2}").unwrap();
        }
        let mut fresh = ResultCache::persistent(&dir).unwrap();
        assert_eq!(fresh.get(0xdead_beef).as_deref(), Some("{\"y\":2}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memo_misses_when_responses_are_required_but_absent() {
        let eval = Evaluation {
            score: Score::worst(),
            converged_mask: 0,
        };
        let mut memo = SolveMemo::new();
        memo.insert(3, eval, None);
        assert!(memo.get(3, false).is_some());
        assert!(memo.get(3, true).is_none(), "responseless entry is a miss");
        // Upgrading fills the responses; a later insert never clears them.
        memo.insert(3, eval, Some(vec![Time::from_cycles(9)]));
        let (_, resp) = memo.get(3, true).expect("upgraded entry hits");
        assert_eq!(resp, vec![Time::from_cycles(9)]);
        memo.insert(3, eval, None);
        assert!(memo.get(3, true).is_some(), "no downgrade on re-insert");
        assert_eq!(memo.len(), 1);
    }
}
