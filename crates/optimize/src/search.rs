//! The design-space search: exhaustive on small spaces, seeded local
//! search otherwise, with candidate evaluations fanned over `cpa-pool`.
//!
//! # Search space
//!
//! For an `n`-task set the space is the product of the enabled dimensions:
//! `cores^n` partitionings × `n!` priority orders × `colors^n` cache
//! colorings. When the product fits under
//! [`SearchKnobs::exhaustive_limit`] every point is enumerated in a fixed
//! mixed-radix order (coloring digits, then partitioning digits, then a
//! Lehmer-coded permutation) and evaluated in one pool batch — ties break
//! to the earliest index, so the result is a pure function of the input.
//!
//! Otherwise a steepest-ascent hill climb runs `restarts` times: restart 0
//! starts from the default configuration refined by an Audsley-style
//! priority seeding pass, later restarts perturb the default with a
//! ChaCha-seeded random walk. Each round samples `neighbors` single moves
//! (core reassignment, core swap, rank swap, recolor) *on the driver
//! thread* — the pool only ever evaluates fully formed candidates, so the
//! outcome is invariant in the worker count.
//!
//! # Delta-scoped candidate evaluation
//!
//! Before any engine call, every batch runs a driver-side admission
//! pipeline (see DESIGN.md §16):
//!
//! 1. **Admission pruning** ([`crate::prune`]) — candidates a cheap O(n)
//!    lower bound proves unschedulable are assigned the canonical worst
//!    evaluation without ever being solved. Pruning is part of the search
//!    semantics (it applies to exhaustive enumeration and local-search
//!    walks, never to the default configuration or Audsley probes), so it
//!    is active in *every* evaluation mode.
//! 2. **Solve memo** ([`crate::cache::SolveMemo`]) — admitted candidates
//!    are looked up in a batch-scoped content-addressed memo keyed on
//!    (base set, analysis environment, candidate vectors); repeats within
//!    and across requests replay their evaluation instead of re-solving.
//!    Within one batch, duplicate keys collapse onto a single solve.
//! 3. **Partial re-solve** — the surviving solves run on the pool; local
//!    search passes the current point's captured [`ParentSolution`] so
//!    the engine can certify untouched tasks instead of re-deriving them
//!    (`cpa_analysis::analyze_with_parent`).
//!
//! All three stages decide on the driver thread in candidate order, so
//! the set of engine calls — and the response bytes — are invariant in
//! the worker-thread count. The `full_eval` escape hatch disables the
//! memo, warm chaining, seeding and parent certification (each candidate
//! solves independently on a cold scratch; pruning stays), which is what
//! the byte-identity acceptance in `cpa-bench` compares against.
//!
//! # Determinism
//!
//! All randomness flows from `ChaCha8Rng::seed_from_u64(derive_seed(seed,
//! restart, 0))` and is consumed on the driver; `cpa_pool::map` returns
//! results in item order regardless of threading; every fold over batch
//! results is sequential with first-wins ties. Same seed + same request ⇒
//! identical best candidate at any `--threads`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use cpa_analysis::{
    analyze_with, analyze_with_parent, analyze_with_seed, AnalysisConfig, AnalysisContext,
    AnalysisScratch, ContextBuffers, CrpdApproach, ParentSolution,
};
use cpa_experiments::runner::derive_seed;
use cpa_model::{ContentHasher, CoreId, Platform, Priority, Task, TaskSet, Time};
use cpa_pool::PoolOptions;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cache::SolveMemo;
use crate::candidate::Candidate;
use crate::prune::{Admission, AdmissionCheck, AdmissionScratch};
use crate::score::{evaluate_result, Evaluation, Score};

/// Tuning knobs of one optimization run. Part of the request format (all
/// fields are required in JSON — the vendored serde has no `default`) and
/// of the content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchKnobs {
    /// Local-search restarts (restart 0 is the Audsley-seeded one).
    pub restarts: u32,
    /// Maximum hill-climbing rounds per restart.
    pub max_rounds: u32,
    /// Neighbour candidates sampled and batch-evaluated per round.
    pub neighbors: u32,
    /// Rounds without strict improvement before a restart gives up.
    pub patience: u32,
    /// Cache colors: footprint rotations are multiples of
    /// `cache_sets / colors` (clamped to at least one set).
    pub colors: u32,
    /// Largest design-space size still enumerated exhaustively.
    pub exhaustive_limit: u64,
    /// Search over task-to-core partitionings.
    pub partitioning: bool,
    /// Search over priority orders.
    pub priorities: bool,
    /// Search over cache colorings.
    pub coloring: bool,
}

impl SearchKnobs {
    /// Sensible service defaults: all three dimensions on, a few seeded
    /// restarts, exhaustive only for genuinely tiny spaces.
    #[must_use]
    pub fn standard() -> SearchKnobs {
        SearchKnobs {
            restarts: 3,
            max_rounds: 32,
            neighbors: 16,
            patience: 4,
            colors: 8,
            exhaustive_limit: 1_024,
            partitioning: true,
            priorities: true,
            coloring: true,
        }
    }

    /// Small knobs for smoke tests and toy sets.
    #[must_use]
    pub fn toy() -> SearchKnobs {
        SearchKnobs {
            restarts: 2,
            max_rounds: 12,
            neighbors: 8,
            patience: 3,
            colors: 4,
            exhaustive_limit: 512,
            partitioning: true,
            priorities: true,
            coloring: true,
        }
    }

    /// Feeds every knob into the request fingerprint: two requests that
    /// differ only in search effort must not share a cache entry.
    pub fn hash_content(&self, hasher: &mut ContentHasher) {
        hasher.write_u64(u64::from(self.restarts));
        hasher.write_u64(u64::from(self.max_rounds));
        hasher.write_u64(u64::from(self.neighbors));
        hasher.write_u64(u64::from(self.patience));
        hasher.write_u64(u64::from(self.colors));
        hasher.write_u64(self.exhaustive_limit);
        hasher.write_u64(u64::from(self.partitioning));
        hasher.write_u64(u64::from(self.priorities));
        hasher.write_u64(u64::from(self.coloring));
    }
}

/// What one search run did, for the response document and the
/// `optimize.*` counters.
#[derive(Debug, Clone, Serialize)]
pub struct SearchStats {
    /// `"exhaustive"` or `"local-search"`.
    pub strategy: String,
    /// Candidates evaluated (including the default and Audsley probes).
    pub candidates: u64,
    /// Accepted strict-improvement moves across all restarts.
    pub moves_accepted: u64,
    /// Evaluated neighbours that did not become the current point.
    pub moves_rejected: u64,
    /// Restarts actually run (0 for exhaustive).
    pub restarts: u32,
    /// Hill-climbing rounds actually run (0 for exhaustive).
    pub rounds: u32,
    /// Candidates rejected by admission pruning without an engine call.
    /// Counted inside `candidates`; identical across evaluation modes
    /// and thread counts (pruning decides on the driver).
    pub pruned: u64,
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found; never scores below the default.
    pub best: Candidate,
    /// Score of `best`.
    pub best_score: Score,
    /// Score of the unmodified (identity) configuration.
    pub default_score: Score,
    /// Search accounting.
    pub stats: SearchStats,
}

/// Per-worker reusable state: one analysis scratch plus recycled context
/// tables, so a worker allocates only on its first candidate. Owned by
/// the [`Searcher`] and threaded through [`cpa_pool::map_with`], so the
/// state — including the engine's warm-start caches — chains across
/// *every* evaluation batch of one search, not just within one batch.
#[derive(Debug)]
struct EvalScratch {
    scratch: AnalysisScratch,
    buffers: ContextBuffers,
    /// Built tasks of this search's base set, keyed by
    /// `(base index, core, rank, shift)` with their content hashes.
    /// A candidate differs from its parent in one or two tasks, so
    /// nearly every per-task build is a repeat; caching them turns
    /// [`Candidate::apply`]'s full rebuild (rotate three block sets,
    /// re-validate, re-hash every task) into a few map hits and clones.
    /// Keyed per worker — never shared — so results cannot depend on
    /// claim order.
    assembled: HashMap<(usize, usize, u32, usize), (Task, u64)>,
    /// Parts of the set this worker assembled last, handed back through
    /// [`EvalScratch::recycle_set`]. Successive candidates on one worker
    /// differ in a slot or two, so patching the kept parts beats cloning
    /// every task again.
    cur: Option<(Vec<Task>, Vec<u64>)>,
    /// The build key each slot of `cur` was assembled from.
    cur_keys: Vec<(usize, usize, u32, usize)>,
}

impl EvalScratch {
    fn new() -> EvalScratch {
        EvalScratch {
            scratch: AnalysisScratch::new(),
            buffers: ContextBuffers::new(),
            assembled: HashMap::new(),
            cur: None,
            cur_keys: Vec::new(),
        }
    }

    /// [`Candidate::apply`] through the per-worker build cache: bitwise
    /// the same `TaskSet` (same task order, same content hashes), built
    /// by patching the slots that differ from this worker's previous
    /// candidate. The delta-scoped fast path uses this; full evaluation
    /// rebuilds from scratch like an independent solver would.
    fn assemble(&mut self, base: &TaskSet, c: &Candidate) -> TaskSet {
        let n = base.len();
        let (mut tasks, mut hashes) = match self.cur.take() {
            Some(cur) if cur.0.len() == n && self.cur_keys.len() == n => cur,
            _ => {
                // First candidate on this worker: placeholder-fill, then
                // let the sentinel keys force every slot to be patched.
                self.cur_keys.clear();
                self.cur_keys.resize(n, (usize::MAX, 0, 0, 0));
                let seed_task = base.iter().next().expect("sets are non-empty");
                (vec![seed_task.clone(); n], vec![0u64; n])
            }
        };
        for (k, t) in base.iter().enumerate() {
            let key = (k, c.cores[k], c.ranks[k], c.shifts[k]);
            // Ranks are a permutation, so rank r is priority r is index r
            // after the sort `TaskSet::new` would have done.
            let r = c.ranks[k] as usize;
            if self.cur_keys[r] == key {
                continue;
            }
            let (task, hash) = self.assembled.entry(key).or_insert_with(|| {
                let task = Task::builder(t.name())
                    .processing_demand(t.processing_demand())
                    .memory_demand(t.memory_demand())
                    .residual_memory_demand(t.residual_memory_demand())
                    .period(t.period())
                    .deadline(t.deadline())
                    .core(CoreId::new(c.cores[k]))
                    .priority(Priority::new(c.ranks[k]))
                    .ecb(t.ecb().rotated(c.shifts[k]))
                    .ucb(t.ucb().rotated(c.shifts[k]))
                    .pcb(t.pcb().rotated(c.shifts[k]))
                    .build()
                    .expect("rotation and reassignment preserve task invariants");
                let mut h = ContentHasher::new();
                task.hash_content(&mut h);
                (task, h.finish())
            });
            tasks[r].clone_from(task);
            hashes[r] = *hash;
            self.cur_keys[r] = key;
        }
        TaskSet::from_sorted_parts(tasks, hashes)
    }

    /// Returns an assembled set's parts for the next [`EvalScratch::
    /// assemble`] to patch. Skipping this (a panic, a code path that
    /// drops the set) only costs the next candidate a full rebuild.
    fn recycle_set(&mut self, set: TaskSet) {
        self.cur = Some(set.into_parts());
    }
}

/// One evaluated candidate as the driver sees it: its evaluation, the
/// per-task response vector (empty unless tracked), and — for freshly
/// solved, schedulable local-search points — a captured [`ParentSolution`]
/// the next round can certify against.
type EvalRow = (Evaluation, Vec<Time>, Option<ParentSolution>);

struct Searcher<'a> {
    base: &'a TaskSet,
    platform: &'a Platform,
    config: &'a AnalysisConfig,
    knobs: &'a SearchKnobs,
    pool: PoolOptions,
    /// Cores available for partitioning.
    cores: usize,
    /// The shift values the coloring dimension ranges over (always
    /// contains 0, the identity coloring).
    shifts: Vec<usize>,
    /// Candidates evaluated so far.
    evaluated: u64,
    /// Candidates rejected by admission pruning.
    pruned: u64,
    /// Batch-scoped solve memo, shared across requests by the service.
    memo: &'a mut SolveMemo,
    /// Persistent per-worker evaluation states ([`cpa_pool::map_with`]):
    /// warm-start scratches, context buffers and build caches survive
    /// across evaluation batches for the whole search.
    states: Vec<EvalScratch>,
    /// Reused driver-side batch buffers (cleared per batch): memo keys,
    /// solve worklist, within-batch duplicates, first-seen keys.
    batch_keys: Vec<u64>,
    batch_need: Vec<usize>,
    batch_dups: Vec<(usize, usize)>,
    batch_first: HashMap<u64, usize>,
    /// Admission bounds of the base set (candidate-independent columns).
    admission: AdmissionCheck,
    /// Reused per-core accumulator for the admission loop.
    admit_scratch: AdmissionScratch,
    /// Fingerprint of (base set, analysis environment); prefix of every
    /// memo key, so fragments of different requests never collide.
    env_key: u64,
    /// Evaluate every admitted candidate independently: no memo, no warm
    /// chaining, no seeding, no parent certification.
    full_eval: bool,
}

impl<'a> Searcher<'a> {
    fn new(
        base: &'a TaskSet,
        platform: &'a Platform,
        config: &'a AnalysisConfig,
        knobs: &'a SearchKnobs,
        pool: PoolOptions,
        memo: &'a mut SolveMemo,
        full_eval: bool,
    ) -> Searcher<'a> {
        let cache_sets = base.cache_sets();
        let colors = (knobs.colors.max(1) as usize).min(cache_sets.max(1));
        let step = (cache_sets / colors).max(1);
        let env_key = {
            let mut h = ContentHasher::new();
            base.hash_content(&mut h);
            // The engine config and platform shape pin the analysis
            // environment; the CRPD approach is fixed (EcbUnion) below.
            h.write_str(&format!("{config:?}"));
            h.write_usize(platform.cores());
            h.write_u64(platform.memory_latency().cycles());
            h.finish()
        };
        Searcher {
            base,
            platform,
            config,
            knobs,
            pool,
            cores: platform.cores(),
            shifts: (0..colors).map(|c| c * step).collect(),
            evaluated: 0,
            pruned: 0,
            memo,
            states: Vec::new(),
            batch_keys: Vec::new(),
            batch_need: Vec::new(),
            batch_dups: Vec::new(),
            batch_first: HashMap::new(),
            admission: AdmissionCheck::new(base, platform.memory_latency()),
            admit_scratch: AdmissionScratch::default(),
            env_key,
            full_eval,
        }
    }

    /// Evaluates a batch of candidates over the pool; results come back in
    /// candidate order whatever the thread count. `prune` admits the
    /// batch through the admission bounds first — on for exhaustive
    /// enumeration, off for the default configuration and Audsley probes.
    fn evaluate_batch(&mut self, candidates: &[Candidate], prune: bool) -> Vec<Evaluation> {
        self.evaluate_batch_impl(candidates, None, None, false, prune)
            .into_iter()
            .map(|(eval, _, _)| eval)
            .collect()
    }

    /// [`Searcher::evaluate_batch`] for local-search points: pruning on,
    /// responses tracked, each solve offered `seed` (the current point's
    /// converged response times) as a warm-start hint and `parent` (the
    /// current point's captured solution) for partial re-solve
    /// certification. Both are pure accelerators — adopted per component
    /// only when provably exact — so the search trajectory is unchanged.
    fn evaluate_batch_seeded(
        &mut self,
        candidates: &[Candidate],
        seed: Option<&[Time]>,
        parent: Option<&ParentSolution>,
    ) -> Vec<EvalRow> {
        self.evaluate_batch_impl(candidates, seed, parent, true, true)
    }

    fn evaluate_batch_impl(
        &mut self,
        candidates: &[Candidate],
        seed: Option<&[Time]>,
        parent: Option<&ParentSolution>,
        track_responses: bool,
        prune: bool,
    ) -> Vec<EvalRow> {
        let _span = cpa_obs::span!("optimize.evaluate_batch");
        self.evaluated += candidates.len() as u64;
        cpa_obs::counter("optimize.candidates").add(candidates.len() as u64);
        let n = self.base.len();

        // Stage 1+2, on the driver in candidate order: prune, then memo,
        // then collapse within-batch duplicates. Only `need` reaches the
        // pool, so the engine workload is thread-count invariant. The
        // batch buffers live on the searcher so the per-round batches of
        // a long search stop paying allocation setup.
        let Self {
            base,
            platform,
            config,
            pool,
            cores,
            pruned,
            memo,
            states,
            admission,
            admit_scratch,
            env_key,
            full_eval,
            batch_keys: keys,
            batch_need: need,
            batch_dups: dups,
            batch_first: first_by_key,
            ..
        } = &mut *self;
        let (base, platform, config, pool) = (*base, *platform, *config, *pool);
        let (cores, env_key, full_eval) = (*cores, *env_key, *full_eval);
        let mut rows: Vec<Option<EvalRow>> = Vec::with_capacity(candidates.len());
        rows.resize_with(candidates.len(), || None);
        keys.clear();
        keys.resize(candidates.len(), 0);
        need.clear();
        dups.clear();
        first_by_key.clear();
        for (k, candidate) in candidates.iter().enumerate() {
            if prune {
                match admission.admit_with(&candidate.cores, cores, admit_scratch) {
                    Admission::Admitted => {}
                    verdict => {
                        *pruned += 1;
                        cpa_obs::counter("optimize.pruned_candidates").incr();
                        cpa_obs::counter(match verdict {
                            Admission::DemandExceedsDeadline => "optimize.pruned_demand",
                            _ => "optimize.pruned_utilization",
                        })
                        .incr();
                        rows[k] = Some(pruned_row(n, track_responses));
                        continue;
                    }
                }
            }
            if full_eval {
                need.push(k);
                continue;
            }
            let key = memo_key(env_key, candidate);
            keys[k] = key;
            if let Some((eval, responses)) = memo.get(key, track_responses) {
                cpa_obs::counter("optimize.memo_hits").incr();
                rows[k] = Some((eval, responses, None));
                continue;
            }
            cpa_obs::counter("optimize.memo_misses").incr();
            match first_by_key.entry(key) {
                Entry::Occupied(first) => dups.push((k, *first.get())),
                Entry::Vacant(slot) => {
                    slot.insert(need.len());
                    need.push(k);
                }
            }
        }

        // Stage 3: solve the remainder on the pool.
        let solved: Vec<EvalRow> = if need.is_empty() {
            Vec::new()
        } else {
            let epoch = cpa_obs::next_scope_epoch();
            let need = &*need;
            cpa_pool::map_with(
                need.len(),
                pool,
                epoch,
                |_| EvalScratch::new(),
                states,
                |state, j| {
                    let k = need[j];
                    let tasks = if full_eval {
                        candidates[k].apply(base)
                    } else {
                        state.assemble(base, &candidates[k])
                    };
                    let ctx = AnalysisContext::with_crpd_approach_buffers(
                        platform,
                        &tasks,
                        CrpdApproach::EcbUnion,
                        &mut state.buffers,
                    )
                    .expect("candidates stay valid for the platform");
                    // Workers chain warm-start state across the candidates
                    // they happen to claim: neighbours differ from the
                    // parent (and thus from each other) in a handful of
                    // tasks, so the fingerprint delta certifies most cached
                    // segments. This is safe at any thread count because
                    // retention, seeding and parent certification never
                    // change results, only skip re-derivations. `full_eval`
                    // turns all of it off for independent solves.
                    let result = if full_eval {
                        state.scratch.forget_warm();
                        analyze_with(&ctx, config, &mut state.scratch)
                    } else if let Some(parent) = parent {
                        analyze_with_parent(&ctx, config, &mut state.scratch, parent)
                    } else {
                        match seed {
                            Some(seed) => analyze_with_seed(&ctx, config, &mut state.scratch, seed),
                            None => analyze_with(&ctx, config, &mut state.scratch),
                        }
                    };
                    let eval = evaluate_result(&tasks, &result);
                    let responses = if track_responses {
                        result
                            .response_times()
                            .iter()
                            .map(|r| r.unwrap_or(Time::from_cycles(u64::MAX)))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let next_parent = if track_responses && !full_eval {
                        ParentSolution::capture(&ctx, config, &result)
                    } else {
                        None
                    };
                    ctx.recycle(&mut state.buffers);
                    if !full_eval {
                        state.recycle_set(tasks);
                    }
                    (eval, responses, next_parent)
                },
            )
        };

        // Stitch, sequentially in solve order: memoize each fresh solve
        // and fan duplicates out from their solved representative.
        for &(k, j) in &*dups {
            let (eval, responses, parent) = &solved[j];
            rows[k] = Some((*eval, responses.clone(), parent.clone()));
        }
        for (j, row) in solved.into_iter().enumerate() {
            let k = need[j];
            if !full_eval {
                memo.insert(keys[k], row.0, track_responses.then(|| row.1.clone()));
            }
            rows[k] = Some(row);
        }
        rows.into_iter()
            .map(|row| row.expect("every candidate pruned, memoized, or solved"))
            .collect()
    }

    /// Index of the best evaluation, ties to the earliest — the tiebreak
    /// that makes enumeration order part of the determinism contract.
    fn argmax(evals: &[Evaluation]) -> usize {
        let mut best = 0;
        for (k, e) in evals.iter().enumerate().skip(1) {
            if e.score > evals[best].score {
                best = k;
            }
        }
        best
    }

    /// Total design-space size, `None` on overflow (treated as "too big").
    fn space_size(&self) -> Option<u64> {
        let n = u32::try_from(self.base.len()).ok()?;
        let mut size = 1u64;
        if self.knobs.partitioning {
            size = (self.cores as u64).checked_pow(n)?;
        }
        if self.knobs.priorities {
            size = size.checked_mul(factorial(n)?)?;
        }
        if self.knobs.coloring {
            size = size.checked_mul((self.shifts.len() as u64).checked_pow(n)?)?;
        }
        Some(size)
    }

    /// Decodes point `index` of the mixed-radix enumeration. Digit order:
    /// coloring (least significant), then partitioning, then the Lehmer
    /// code of the priority permutation.
    fn decode(&self, mut index: u64) -> Candidate {
        let n = self.base.len();
        let mut c = Candidate::identity(self.base);
        if self.knobs.coloring {
            let radix = self.shifts.len() as u64;
            for shift in c.shifts.iter_mut() {
                *shift = self.shifts[(index % radix) as usize];
                index /= radix;
            }
        }
        if self.knobs.partitioning {
            let radix = self.cores as u64;
            for core in c.cores.iter_mut() {
                *core = (index % radix) as usize;
                index /= radix;
            }
        }
        if self.knobs.priorities {
            c.ranks = ranks_from_lehmer(index, n);
        }
        c
    }

    /// Applies one random move to `c`. Move kinds are drawn uniformly from
    /// the enabled, non-degenerate dimensions in a fixed order.
    fn mutate(&self, c: &mut Candidate, rng: &mut ChaCha8Rng) {
        #[derive(Clone, Copy)]
        enum Move {
            Reassign,
            SwapCores,
            SwapRanks,
            Recolor,
        }
        let n = c.cores.len();
        let mut moves = Vec::with_capacity(4);
        if self.knobs.partitioning && self.cores > 1 {
            moves.push(Move::Reassign);
            if n > 1 {
                moves.push(Move::SwapCores);
            }
        }
        if self.knobs.priorities && n > 1 {
            moves.push(Move::SwapRanks);
        }
        if self.knobs.coloring && self.shifts.len() > 1 {
            moves.push(Move::Recolor);
        }
        if moves.is_empty() {
            return;
        }
        match moves[rng.gen_range(0..moves.len())] {
            Move::Reassign => {
                let k = rng.gen_range(0..n);
                let mut core = rng.gen_range(0..self.cores);
                if core == c.cores[k] {
                    core = (core + 1) % self.cores;
                }
                c.cores[k] = core;
            }
            Move::SwapCores => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                c.cores.swap(a, b);
            }
            Move::SwapRanks => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                c.ranks.swap(a, b);
            }
            Move::Recolor => {
                let k = rng.gen_range(0..n);
                c.shifts[k] = self.shifts[rng.gen_range(0..self.shifts.len())];
            }
        }
    }

    /// Audsley-style priority seeding on top of the default partitioning
    /// and coloring: assign levels lowest-first, at each level batching one
    /// probe per still-unassigned task and keeping the first whose task
    /// converges there. Quadratic in task count, so only run for seeding.
    fn audsley(&mut self, default: &Candidate) -> Candidate {
        let _span = cpa_obs::span!("optimize.audsley");
        let n = self.base.len();
        let mut ranks = vec![u32::MAX; n];
        let mut unassigned: Vec<usize> = (0..n).collect();
        for level in (0..n).rev() {
            let probes: Vec<Candidate> = unassigned
                .iter()
                .map(|&u| {
                    let mut c = default.clone();
                    let mut next = 0u32;
                    for (k, slot) in c.ranks.iter_mut().enumerate() {
                        *slot = if ranks[k] != u32::MAX {
                            ranks[k]
                        } else if k == u {
                            level as u32
                        } else {
                            let r = next;
                            next += 1;
                            r
                        };
                    }
                    c
                })
                .collect();
            // Probes are never pruned: they share the default partition,
            // and the seeding pass must stay a pure function of real
            // evaluations.
            let evals = self.evaluate_batch(&probes, false);
            let pick = evals
                .iter()
                .position(|e| (e.converged_mask >> level) & 1 == 1)
                .unwrap_or(0);
            let u = unassigned.remove(pick);
            ranks[u] = level as u32;
        }
        Candidate {
            cores: default.cores.clone(),
            ranks,
            shifts: default.shifts.clone(),
        }
    }
}

/// The memo key of one candidate: environment prefix plus the three
/// candidate vectors. Equal keys rebuild identical task sets, so the
/// memoized evaluation is exact.
fn memo_key(env_key: u64, c: &Candidate) -> u64 {
    let mut h = ContentHasher::new();
    h.write_u64(env_key);
    for &core in &c.cores {
        h.write_usize(core);
    }
    for &rank in &c.ranks {
        h.write_u64(u64::from(rank));
    }
    for &shift in &c.shifts {
        h.write_usize(shift);
    }
    h.finish()
}

/// The canonical row of a pruned candidate in an `n`-task set: the worst
/// score any real evaluation loses to, no converged tasks, sentinel
/// responses.
fn pruned_row(n: usize, track_responses: bool) -> EvalRow {
    let eval = Evaluation {
        score: Score::worst(),
        converged_mask: 0,
    };
    let responses = if track_responses {
        vec![Time::from_cycles(u64::MAX); n]
    } else {
        Vec::new()
    };
    (eval, responses, None)
}

fn factorial(n: u32) -> Option<u64> {
    (1..=u64::from(n)).try_fold(1u64, u64::checked_mul)
}

/// Decodes a Lehmer code into a rank vector: `ranks[k]` is the priority
/// rank of base task `k`. Code 0 is the identity.
fn ranks_from_lehmer(mut code: u64, n: usize) -> Vec<u32> {
    let mut fact = vec![1u64; n.max(1)];
    for i in 1..n {
        fact[i] = fact[i - 1].saturating_mul(i as u64);
    }
    let mut available: Vec<u32> = (0..n as u32).collect();
    let mut ranks = Vec::with_capacity(n);
    for k in 0..n {
        let f = fact[n - 1 - k];
        let pos = ((code / f) as usize).min(available.len() - 1);
        code %= f;
        ranks.push(available.remove(pos));
    }
    ranks
}

/// Runs the full design-space search for `base` on `platform` under
/// `config`, deterministically in `seed` and invariant in `pool`'s thread
/// and chunk settings. The returned best never scores below the default
/// configuration, which is always evaluated first and kept as fallback.
#[must_use]
pub fn optimize(
    base: &TaskSet,
    platform: &Platform,
    config: &AnalysisConfig,
    knobs: &SearchKnobs,
    seed: u64,
    pool: PoolOptions,
) -> SearchOutcome {
    optimize_with_memo(
        base,
        platform,
        config,
        knobs,
        seed,
        pool,
        &mut SolveMemo::new(),
        false,
    )
}

/// [`optimize`] with a caller-owned [`SolveMemo`] — the service passes
/// one memo per batch so solve fragments are shared across requests —
/// and the `full_eval` escape hatch, which evaluates every admitted
/// candidate independently (no memo, no warm chaining, no seeding, no
/// parent certification; admission pruning stays because it defines the
/// search semantics). Both knobs accelerate or de-accelerate the same
/// deterministic trajectory: the outcome is byte-identical either way.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn optimize_with_memo(
    base: &TaskSet,
    platform: &Platform,
    config: &AnalysisConfig,
    knobs: &SearchKnobs,
    seed: u64,
    pool: PoolOptions,
    memo: &mut SolveMemo,
    full_eval: bool,
) -> SearchOutcome {
    let _span = cpa_obs::span!("optimize.search");
    let mut s = Searcher::new(base, platform, config, knobs, pool, memo, full_eval);
    let default = Candidate::identity(base);
    let default_eval = s.evaluate_batch(std::slice::from_ref(&default), false)[0];
    let mut best = default.clone();
    let mut best_eval = default_eval;
    let mut stats = SearchStats {
        strategy: String::new(),
        candidates: 0,
        moves_accepted: 0,
        moves_rejected: 0,
        restarts: 0,
        rounds: 0,
        pruned: 0,
    };

    let space = s.space_size();
    if let Some(size) = space.filter(|&size| size <= knobs.exhaustive_limit) {
        stats.strategy = "exhaustive".to_string();
        cpa_obs::counter("optimize.exhaustive_runs").incr();
        // One batch over the whole space; ties break to the lowest index.
        let candidates: Vec<Candidate> = (0..size).map(|ix| s.decode(ix)).collect();
        let evals = s.evaluate_batch(&candidates, true);
        if !evals.is_empty() {
            let bi = Searcher::argmax(&evals);
            if evals[bi].score > best_eval.score {
                best = candidates[bi].clone();
                best_eval = evals[bi];
            }
        }
    } else {
        stats.strategy = "local-search".to_string();
        let n = base.len();
        // One reused neighbour buffer for every round of every restart;
        // `clone_from` refills the existing allocations.
        let mut neighbors: Vec<Candidate> = Vec::new();
        for restart in 0..knobs.restarts.max(1) {
            stats.restarts += 1;
            cpa_obs::counter("optimize.restarts").incr();
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, u64::from(restart), 0));
            let mut current = if restart == 0 {
                if knobs.priorities && (2..=128).contains(&n) {
                    s.audsley(&default)
                } else {
                    default.clone()
                }
            } else {
                // Later restarts walk away from the default at random.
                let mut c = default.clone();
                for _ in 0..n.max(2) {
                    s.mutate(&mut c, &mut rng);
                }
                c
            };
            let (mut current_eval, mut current_resp, mut current_parent) = s
                .evaluate_batch_seeded(std::slice::from_ref(&current), None, None)
                .pop()
                .expect("one candidate in, one evaluation out");
            if current_eval.score > best_eval.score {
                best = current.clone();
                best_eval = current_eval;
            }
            let mut stale = 0u32;
            for _ in 0..knobs.max_rounds {
                stats.rounds += 1;
                neighbors.resize_with(knobs.neighbors as usize, || current.clone());
                for c in &mut neighbors {
                    c.cores.clone_from(&current.cores);
                    c.ranks.clone_from(&current.ranks);
                    c.shifts.clone_from(&current.shifts);
                    s.mutate(c, &mut rng);
                }
                if neighbors.is_empty() {
                    break;
                }
                // The parent's converged response times seed every
                // neighbour solve, and its captured solution certifies
                // their untouched tasks (pure accelerators — adopted per
                // component only when provably exact, so outcomes match
                // the unassisted search bit for bit).
                let mut evals = s.evaluate_batch_seeded(
                    &neighbors,
                    Some(&current_resp),
                    current_parent.as_ref(),
                );
                let bi = {
                    let mut bi = 0;
                    for (k, (e, _, _)) in evals.iter().enumerate().skip(1) {
                        if e.score > evals[bi].0.score {
                            bi = k;
                        }
                    }
                    bi
                };
                if evals[bi].0.score > current_eval.score {
                    stats.moves_accepted += 1;
                    stats.moves_rejected += (neighbors.len() - 1) as u64;
                    current = neighbors[bi].clone();
                    current_eval = evals[bi].0;
                    current_resp = std::mem::take(&mut evals[bi].1);
                    current_parent = evals[bi].2.take();
                    stale = 0;
                    if current_eval.score > best_eval.score {
                        best = current.clone();
                        best_eval = current_eval;
                    }
                } else {
                    stats.moves_rejected += neighbors.len() as u64;
                    stale += 1;
                    // Sideways drift along score plateaus, seeded like
                    // everything else, to escape flat regions.
                    if evals[bi].0.score == current_eval.score && rng.gen_bool(0.5) {
                        current = neighbors[bi].clone();
                        current_eval = evals[bi].0;
                        current_resp = std::mem::take(&mut evals[bi].1);
                        current_parent = evals[bi].2.take();
                    }
                    if stale >= knobs.patience.max(1) {
                        break;
                    }
                }
            }
        }
    }

    stats.candidates = s.evaluated;
    stats.pruned = s.pruned;
    cpa_obs::counter("optimize.moves_accepted").add(stats.moves_accepted);
    cpa_obs::counter("optimize.moves_rejected").add(stats.moves_rejected);
    SearchOutcome {
        best,
        best_score: best_eval.score,
        default_score: default_eval.score,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lehmer_code_enumerates_all_permutations() {
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for code in 0..24 {
            let ranks = ranks_from_lehmer(code, n);
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "code {code} is a permutation");
            seen.insert(ranks);
        }
        assert_eq!(seen.len(), 24, "codes are distinct");
        assert_eq!(ranks_from_lehmer(0, n), [0, 1, 2, 3], "code 0 is identity");
    }

    #[test]
    fn factorial_overflow_is_none() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(30), None);
    }
}
