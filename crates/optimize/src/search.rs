//! The design-space search: exhaustive on small spaces, seeded local
//! search otherwise, with candidate evaluations fanned over `cpa-pool`.
//!
//! # Search space
//!
//! For an `n`-task set the space is the product of the enabled dimensions:
//! `cores^n` partitionings × `n!` priority orders × `colors^n` cache
//! colorings. When the product fits under
//! [`SearchKnobs::exhaustive_limit`] every point is enumerated in a fixed
//! mixed-radix order (coloring digits, then partitioning digits, then a
//! Lehmer-coded permutation) and evaluated in one pool batch — ties break
//! to the earliest index, so the result is a pure function of the input.
//!
//! Otherwise a steepest-ascent hill climb runs `restarts` times: restart 0
//! starts from the default configuration refined by an Audsley-style
//! priority seeding pass, later restarts perturb the default with a
//! ChaCha-seeded random walk. Each round samples `neighbors` single moves
//! (core reassignment, core swap, rank swap, recolor) *on the driver
//! thread* — the pool only ever evaluates fully formed candidates, so the
//! outcome is invariant in the worker count.
//!
//! # Determinism
//!
//! All randomness flows from `ChaCha8Rng::seed_from_u64(derive_seed(seed,
//! restart, 0))` and is consumed on the driver; `cpa_pool::map` returns
//! results in item order regardless of threading; every fold over batch
//! results is sequential with first-wins ties. Same seed + same request ⇒
//! identical best candidate at any `--threads`.

use cpa_analysis::{
    analyze_with, analyze_with_seed, AnalysisConfig, AnalysisContext, AnalysisScratch,
    ContextBuffers, CrpdApproach,
};
use cpa_experiments::runner::derive_seed;
use cpa_model::{ContentHasher, Platform, TaskSet, Time};
use cpa_pool::PoolOptions;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::candidate::Candidate;
use crate::score::{evaluate_result, Evaluation, Score};

/// Tuning knobs of one optimization run. Part of the request format (all
/// fields are required in JSON — the vendored serde has no `default`) and
/// of the content-addressed cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchKnobs {
    /// Local-search restarts (restart 0 is the Audsley-seeded one).
    pub restarts: u32,
    /// Maximum hill-climbing rounds per restart.
    pub max_rounds: u32,
    /// Neighbour candidates sampled and batch-evaluated per round.
    pub neighbors: u32,
    /// Rounds without strict improvement before a restart gives up.
    pub patience: u32,
    /// Cache colors: footprint rotations are multiples of
    /// `cache_sets / colors` (clamped to at least one set).
    pub colors: u32,
    /// Largest design-space size still enumerated exhaustively.
    pub exhaustive_limit: u64,
    /// Search over task-to-core partitionings.
    pub partitioning: bool,
    /// Search over priority orders.
    pub priorities: bool,
    /// Search over cache colorings.
    pub coloring: bool,
}

impl SearchKnobs {
    /// Sensible service defaults: all three dimensions on, a few seeded
    /// restarts, exhaustive only for genuinely tiny spaces.
    #[must_use]
    pub fn standard() -> SearchKnobs {
        SearchKnobs {
            restarts: 3,
            max_rounds: 32,
            neighbors: 16,
            patience: 4,
            colors: 8,
            exhaustive_limit: 1_024,
            partitioning: true,
            priorities: true,
            coloring: true,
        }
    }

    /// Small knobs for smoke tests and toy sets.
    #[must_use]
    pub fn toy() -> SearchKnobs {
        SearchKnobs {
            restarts: 2,
            max_rounds: 12,
            neighbors: 8,
            patience: 3,
            colors: 4,
            exhaustive_limit: 512,
            partitioning: true,
            priorities: true,
            coloring: true,
        }
    }

    /// Feeds every knob into the request fingerprint: two requests that
    /// differ only in search effort must not share a cache entry.
    pub fn hash_content(&self, hasher: &mut ContentHasher) {
        hasher.write_u64(u64::from(self.restarts));
        hasher.write_u64(u64::from(self.max_rounds));
        hasher.write_u64(u64::from(self.neighbors));
        hasher.write_u64(u64::from(self.patience));
        hasher.write_u64(u64::from(self.colors));
        hasher.write_u64(self.exhaustive_limit);
        hasher.write_u64(u64::from(self.partitioning));
        hasher.write_u64(u64::from(self.priorities));
        hasher.write_u64(u64::from(self.coloring));
    }
}

/// What one search run did, for the response document and the
/// `optimize.*` counters.
#[derive(Debug, Clone, Serialize)]
pub struct SearchStats {
    /// `"exhaustive"` or `"local-search"`.
    pub strategy: String,
    /// Candidates evaluated (including the default and Audsley probes).
    pub candidates: u64,
    /// Accepted strict-improvement moves across all restarts.
    pub moves_accepted: u64,
    /// Evaluated neighbours that did not become the current point.
    pub moves_rejected: u64,
    /// Restarts actually run (0 for exhaustive).
    pub restarts: u32,
    /// Hill-climbing rounds actually run (0 for exhaustive).
    pub rounds: u32,
}

/// Result of one optimization run.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best configuration found; never scores below the default.
    pub best: Candidate,
    /// Score of `best`.
    pub best_score: Score,
    /// Score of the unmodified (identity) configuration.
    pub default_score: Score,
    /// Search accounting.
    pub stats: SearchStats,
}

/// Per-worker reusable state: one analysis scratch plus recycled context
/// tables, so a worker allocates only on its first candidate.
#[derive(Debug)]
struct EvalScratch {
    scratch: AnalysisScratch,
    buffers: ContextBuffers,
}

impl EvalScratch {
    fn new() -> EvalScratch {
        EvalScratch {
            scratch: AnalysisScratch::new(),
            buffers: ContextBuffers::new(),
        }
    }
}

struct Searcher<'a> {
    base: &'a TaskSet,
    platform: &'a Platform,
    config: &'a AnalysisConfig,
    knobs: &'a SearchKnobs,
    pool: PoolOptions,
    /// Cores available for partitioning.
    cores: usize,
    /// The shift values the coloring dimension ranges over (always
    /// contains 0, the identity coloring).
    shifts: Vec<usize>,
    /// Candidates evaluated so far.
    evaluated: u64,
}

impl<'a> Searcher<'a> {
    fn new(
        base: &'a TaskSet,
        platform: &'a Platform,
        config: &'a AnalysisConfig,
        knobs: &'a SearchKnobs,
        pool: PoolOptions,
    ) -> Searcher<'a> {
        let cache_sets = base.cache_sets();
        let colors = (knobs.colors.max(1) as usize).min(cache_sets.max(1));
        let step = (cache_sets / colors).max(1);
        Searcher {
            base,
            platform,
            config,
            knobs,
            pool,
            cores: platform.cores(),
            shifts: (0..colors).map(|c| c * step).collect(),
            evaluated: 0,
        }
    }

    /// Evaluates a batch of candidates over the pool; results come back in
    /// candidate order whatever the thread count.
    fn evaluate_batch(&mut self, candidates: &[Candidate]) -> Vec<Evaluation> {
        self.evaluate_batch_impl(candidates, None, false)
            .into_iter()
            .map(|(eval, _)| eval)
            .collect()
    }

    /// [`Searcher::evaluate_batch`], seeded and response-tracking: each
    /// candidate's solve is offered `seed` (the current point's converged
    /// response times) as a warm-start hint, and each returned pair
    /// carries the candidate's own per-task response-time vector so an
    /// accepted neighbour can seed the *next* round. Results stay
    /// bitwise-identical to the unseeded path — `analyze_with_seed` only
    /// adopts provably-correct components — so the search trajectory is
    /// unchanged.
    fn evaluate_batch_seeded(
        &mut self,
        candidates: &[Candidate],
        seed: Option<&[Time]>,
    ) -> Vec<(Evaluation, Vec<Time>)> {
        self.evaluate_batch_impl(candidates, seed, true)
    }

    fn evaluate_batch_impl(
        &mut self,
        candidates: &[Candidate],
        seed: Option<&[Time]>,
        track_responses: bool,
    ) -> Vec<(Evaluation, Vec<Time>)> {
        let _span = cpa_obs::span!("optimize.evaluate_batch");
        self.evaluated += candidates.len() as u64;
        cpa_obs::counter("optimize.candidates").add(candidates.len() as u64);
        let epoch = cpa_obs::next_scope_epoch();
        let (base, platform, config) = (self.base, self.platform, self.config);
        cpa_pool::map(
            candidates.len(),
            self.pool,
            epoch,
            |_| EvalScratch::new(),
            |state, k| {
                let tasks = candidates[k].apply(base);
                let ctx = AnalysisContext::with_crpd_approach_buffers(
                    platform,
                    &tasks,
                    CrpdApproach::EcbUnion,
                    &mut state.buffers,
                )
                .expect("candidates stay valid for the platform");
                // Workers chain warm-start state across the candidates they
                // happen to claim: neighbours differ from the parent (and
                // thus from each other) in a handful of tasks, so the
                // fingerprint delta certifies most cached segments. This is
                // safe at any thread count because retention and seeding
                // never change results, only skip re-derivations.
                let result = match seed {
                    Some(seed) => analyze_with_seed(&ctx, config, &mut state.scratch, seed),
                    None => analyze_with(&ctx, config, &mut state.scratch),
                };
                let eval = evaluate_result(&tasks, &result);
                let responses = if track_responses {
                    result
                        .response_times()
                        .iter()
                        .map(|r| r.unwrap_or(Time::from_cycles(u64::MAX)))
                        .collect()
                } else {
                    Vec::new()
                };
                ctx.recycle(&mut state.buffers);
                (eval, responses)
            },
        )
    }

    /// Index of the best evaluation, ties to the earliest — the tiebreak
    /// that makes enumeration order part of the determinism contract.
    fn argmax(evals: &[Evaluation]) -> usize {
        let mut best = 0;
        for (k, e) in evals.iter().enumerate().skip(1) {
            if e.score > evals[best].score {
                best = k;
            }
        }
        best
    }

    /// Total design-space size, `None` on overflow (treated as "too big").
    fn space_size(&self) -> Option<u64> {
        let n = u32::try_from(self.base.len()).ok()?;
        let mut size = 1u64;
        if self.knobs.partitioning {
            size = (self.cores as u64).checked_pow(n)?;
        }
        if self.knobs.priorities {
            size = size.checked_mul(factorial(n)?)?;
        }
        if self.knobs.coloring {
            size = size.checked_mul((self.shifts.len() as u64).checked_pow(n)?)?;
        }
        Some(size)
    }

    /// Decodes point `index` of the mixed-radix enumeration. Digit order:
    /// coloring (least significant), then partitioning, then the Lehmer
    /// code of the priority permutation.
    fn decode(&self, mut index: u64) -> Candidate {
        let n = self.base.len();
        let mut c = Candidate::identity(self.base);
        if self.knobs.coloring {
            let radix = self.shifts.len() as u64;
            for shift in c.shifts.iter_mut() {
                *shift = self.shifts[(index % radix) as usize];
                index /= radix;
            }
        }
        if self.knobs.partitioning {
            let radix = self.cores as u64;
            for core in c.cores.iter_mut() {
                *core = (index % radix) as usize;
                index /= radix;
            }
        }
        if self.knobs.priorities {
            c.ranks = ranks_from_lehmer(index, n);
        }
        c
    }

    /// Applies one random move to `c`. Move kinds are drawn uniformly from
    /// the enabled, non-degenerate dimensions in a fixed order.
    fn mutate(&self, c: &mut Candidate, rng: &mut ChaCha8Rng) {
        #[derive(Clone, Copy)]
        enum Move {
            Reassign,
            SwapCores,
            SwapRanks,
            Recolor,
        }
        let n = c.cores.len();
        let mut moves = Vec::with_capacity(4);
        if self.knobs.partitioning && self.cores > 1 {
            moves.push(Move::Reassign);
            if n > 1 {
                moves.push(Move::SwapCores);
            }
        }
        if self.knobs.priorities && n > 1 {
            moves.push(Move::SwapRanks);
        }
        if self.knobs.coloring && self.shifts.len() > 1 {
            moves.push(Move::Recolor);
        }
        if moves.is_empty() {
            return;
        }
        match moves[rng.gen_range(0..moves.len())] {
            Move::Reassign => {
                let k = rng.gen_range(0..n);
                let mut core = rng.gen_range(0..self.cores);
                if core == c.cores[k] {
                    core = (core + 1) % self.cores;
                }
                c.cores[k] = core;
            }
            Move::SwapCores => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                c.cores.swap(a, b);
            }
            Move::SwapRanks => {
                let a = rng.gen_range(0..n);
                let b = rng.gen_range(0..n);
                c.ranks.swap(a, b);
            }
            Move::Recolor => {
                let k = rng.gen_range(0..n);
                c.shifts[k] = self.shifts[rng.gen_range(0..self.shifts.len())];
            }
        }
    }

    /// Audsley-style priority seeding on top of the default partitioning
    /// and coloring: assign levels lowest-first, at each level batching one
    /// probe per still-unassigned task and keeping the first whose task
    /// converges there. Quadratic in task count, so only run for seeding.
    fn audsley(&mut self, default: &Candidate) -> Candidate {
        let _span = cpa_obs::span!("optimize.audsley");
        let n = self.base.len();
        let mut ranks = vec![u32::MAX; n];
        let mut unassigned: Vec<usize> = (0..n).collect();
        for level in (0..n).rev() {
            let probes: Vec<Candidate> = unassigned
                .iter()
                .map(|&u| {
                    let mut c = default.clone();
                    let mut next = 0u32;
                    for (k, slot) in c.ranks.iter_mut().enumerate() {
                        *slot = if ranks[k] != u32::MAX {
                            ranks[k]
                        } else if k == u {
                            level as u32
                        } else {
                            let r = next;
                            next += 1;
                            r
                        };
                    }
                    c
                })
                .collect();
            let evals = self.evaluate_batch(&probes);
            let pick = evals
                .iter()
                .position(|e| (e.converged_mask >> level) & 1 == 1)
                .unwrap_or(0);
            let u = unassigned.remove(pick);
            ranks[u] = level as u32;
        }
        Candidate {
            cores: default.cores.clone(),
            ranks,
            shifts: default.shifts.clone(),
        }
    }
}

fn factorial(n: u32) -> Option<u64> {
    (1..=u64::from(n)).try_fold(1u64, u64::checked_mul)
}

/// Decodes a Lehmer code into a rank vector: `ranks[k]` is the priority
/// rank of base task `k`. Code 0 is the identity.
fn ranks_from_lehmer(mut code: u64, n: usize) -> Vec<u32> {
    let mut fact = vec![1u64; n.max(1)];
    for i in 1..n {
        fact[i] = fact[i - 1].saturating_mul(i as u64);
    }
    let mut available: Vec<u32> = (0..n as u32).collect();
    let mut ranks = Vec::with_capacity(n);
    for k in 0..n {
        let f = fact[n - 1 - k];
        let pos = ((code / f) as usize).min(available.len() - 1);
        code %= f;
        ranks.push(available.remove(pos));
    }
    ranks
}

/// Runs the full design-space search for `base` on `platform` under
/// `config`, deterministically in `seed` and invariant in `pool`'s thread
/// and chunk settings. The returned best never scores below the default
/// configuration, which is always evaluated first and kept as fallback.
#[must_use]
pub fn optimize(
    base: &TaskSet,
    platform: &Platform,
    config: &AnalysisConfig,
    knobs: &SearchKnobs,
    seed: u64,
    pool: PoolOptions,
) -> SearchOutcome {
    let _span = cpa_obs::span!("optimize.search");
    let mut s = Searcher::new(base, platform, config, knobs, pool);
    let default = Candidate::identity(base);
    let default_eval = s.evaluate_batch(std::slice::from_ref(&default))[0];
    let mut best = default.clone();
    let mut best_eval = default_eval;
    let mut stats = SearchStats {
        strategy: String::new(),
        candidates: 0,
        moves_accepted: 0,
        moves_rejected: 0,
        restarts: 0,
        rounds: 0,
    };

    let space = s.space_size();
    if let Some(size) = space.filter(|&size| size <= knobs.exhaustive_limit) {
        stats.strategy = "exhaustive".to_string();
        cpa_obs::counter("optimize.exhaustive_runs").incr();
        // One batch over the whole space; ties break to the lowest index.
        let candidates: Vec<Candidate> = (0..size).map(|ix| s.decode(ix)).collect();
        let evals = s.evaluate_batch(&candidates);
        if !evals.is_empty() {
            let bi = Searcher::argmax(&evals);
            if evals[bi].score > best_eval.score {
                best = candidates[bi].clone();
                best_eval = evals[bi];
            }
        }
    } else {
        stats.strategy = "local-search".to_string();
        let n = base.len();
        for restart in 0..knobs.restarts.max(1) {
            stats.restarts += 1;
            cpa_obs::counter("optimize.restarts").incr();
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, u64::from(restart), 0));
            let mut current = if restart == 0 {
                if knobs.priorities && (2..=128).contains(&n) {
                    s.audsley(&default)
                } else {
                    default.clone()
                }
            } else {
                // Later restarts walk away from the default at random.
                let mut c = default.clone();
                for _ in 0..n.max(2) {
                    s.mutate(&mut c, &mut rng);
                }
                c
            };
            let (mut current_eval, mut current_resp) = s
                .evaluate_batch_seeded(std::slice::from_ref(&current), None)
                .pop()
                .expect("one candidate in, one evaluation out");
            if current_eval.score > best_eval.score {
                best = current.clone();
                best_eval = current_eval;
            }
            let mut stale = 0u32;
            for _ in 0..knobs.max_rounds {
                stats.rounds += 1;
                let neighbors: Vec<Candidate> = (0..knobs.neighbors)
                    .map(|_| {
                        let mut c = current.clone();
                        s.mutate(&mut c, &mut rng);
                        c
                    })
                    .collect();
                if neighbors.is_empty() {
                    break;
                }
                // The parent's converged response times seed every
                // neighbour solve (pure hint — adopted per component only
                // when provably exact, so outcomes match the unseeded
                // search bit for bit).
                let mut evals = s.evaluate_batch_seeded(&neighbors, Some(&current_resp));
                let bi = {
                    let mut bi = 0;
                    for (k, (e, _)) in evals.iter().enumerate().skip(1) {
                        if e.score > evals[bi].0.score {
                            bi = k;
                        }
                    }
                    bi
                };
                if evals[bi].0.score > current_eval.score {
                    stats.moves_accepted += 1;
                    stats.moves_rejected += (neighbors.len() - 1) as u64;
                    current = neighbors[bi].clone();
                    current_eval = evals[bi].0;
                    current_resp = std::mem::take(&mut evals[bi].1);
                    stale = 0;
                    if current_eval.score > best_eval.score {
                        best = current.clone();
                        best_eval = current_eval;
                    }
                } else {
                    stats.moves_rejected += neighbors.len() as u64;
                    stale += 1;
                    // Sideways drift along score plateaus, seeded like
                    // everything else, to escape flat regions.
                    if evals[bi].0.score == current_eval.score && rng.gen_bool(0.5) {
                        current = neighbors[bi].clone();
                        current_eval = evals[bi].0;
                        current_resp = std::mem::take(&mut evals[bi].1);
                    }
                    if stale >= knobs.patience.max(1) {
                        break;
                    }
                }
            }
        }
    }

    stats.candidates = s.evaluated;
    cpa_obs::counter("optimize.moves_accepted").add(stats.moves_accepted);
    cpa_obs::counter("optimize.moves_rejected").add(stats.moves_rejected);
    SearchOutcome {
        best,
        best_score: best_eval.score,
        default_score: default_eval.score,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lehmer_code_enumerates_all_permutations() {
        let n = 4;
        let mut seen = std::collections::HashSet::new();
        for code in 0..24 {
            let ranks = ranks_from_lehmer(code, n);
            let mut sorted = ranks.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3], "code {code} is a permutation");
            seen.insert(ranks);
        }
        assert_eq!(seen.len(), 24, "codes are distinct");
        assert_eq!(ranks_from_lehmer(0, n), [0, 1, 2, 3], "code 0 is identity");
    }

    #[test]
    fn factorial_overflow_is_none() {
        assert_eq!(factorial(0), Some(1));
        assert_eq!(factorial(5), Some(120));
        assert_eq!(factorial(30), None);
    }
}
