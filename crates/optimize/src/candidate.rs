//! A point in the design space: partitioning × priorities × coloring.
//!
//! A [`Candidate`] is a cheap, plain-data description of one configuration
//! of a base task set, indexed by the base set's priority order (position
//! `k` refers to the task at `TaskId` `k` in the base set). Applying a
//! candidate rebuilds a concrete [`TaskSet`] for analysis; the base set is
//! never mutated, so candidates can be generated and evaluated in parallel.

use cpa_model::{CoreId, Priority, Task, TaskSet};

/// One design-space configuration of a base task set.
///
/// All three vectors have one entry per base task, in the base set's
/// priority order:
///
/// * `cores[k]` — the core the task is partitioned onto;
/// * `ranks[k]` — its priority rank (a permutation of `0..n`; rank 0 is
///   the highest priority, so after [`Candidate::apply`] the task occupies
///   `TaskId` `ranks[k]`);
/// * `shifts[k]` — the cache-coloring rotation, in cache sets, applied to
///   its ECB/UCB/PCB footprints (see `CacheBlockSet::rotated`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Per-task core assignment.
    pub cores: Vec<usize>,
    /// Per-task priority rank; a permutation of `0..n`.
    pub ranks: Vec<u32>,
    /// Per-task cache-set rotation.
    pub shifts: Vec<usize>,
}

impl Candidate {
    /// The configuration the base set already has: same cores, same
    /// relative priority order, no recoloring. Evaluating this candidate
    /// scores the *default* design the optimizer must beat.
    #[must_use]
    pub fn identity(base: &TaskSet) -> Candidate {
        Candidate {
            cores: base.iter().map(|t| t.core().index()).collect(),
            // The base set is priority-sorted, so position == rank.
            ranks: (0..u32::try_from(base.len()).expect("task count fits u32")).collect(),
            shifts: vec![0; base.len()],
        }
    }

    /// Rebuilds the concrete task set this candidate describes.
    ///
    /// Priority levels are renumbered to the ranks themselves; the analysis
    /// depends only on the relative order, so the identity candidate is
    /// analysis-equivalent to the base set.
    ///
    /// # Panics
    ///
    /// Panics if the candidate was corrupted (ranks not a permutation, core
    /// or shift vectors of the wrong length) — the search only constructs
    /// well-formed candidates.
    #[must_use]
    pub fn apply(&self, base: &TaskSet) -> TaskSet {
        assert_eq!(self.cores.len(), base.len(), "core vector length");
        assert_eq!(self.ranks.len(), base.len(), "rank vector length");
        assert_eq!(self.shifts.len(), base.len(), "shift vector length");
        let tasks: Vec<Task> = base
            .iter()
            .enumerate()
            .map(|(k, t)| {
                Task::builder(t.name())
                    .processing_demand(t.processing_demand())
                    .memory_demand(t.memory_demand())
                    .residual_memory_demand(t.residual_memory_demand())
                    .period(t.period())
                    .deadline(t.deadline())
                    .core(CoreId::new(self.cores[k]))
                    .priority(Priority::new(self.ranks[k]))
                    .ecb(t.ecb().rotated(self.shifts[k]))
                    .ucb(t.ucb().rotated(self.shifts[k]))
                    .pcb(t.pcb().rotated(self.shifts[k]))
                    .build()
                    .expect("rotation and reassignment preserve task invariants")
            })
            .collect();
        TaskSet::new(tasks).expect("candidate ranks form a permutation")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, Time};

    fn base() -> TaskSet {
        let mk = |name: &str, prio: u32, core: usize, start: usize| {
            Task::builder(name)
                .processing_demand(Time::from_cycles(50))
                .memory_demand(8)
                .residual_memory_demand(2)
                .period(Time::from_cycles(1_000))
                .deadline(Time::from_cycles(1_000))
                .core(CoreId::new(core))
                .priority(Priority::new(prio))
                .ecb(CacheBlockSet::contiguous(32, start, 8))
                .ucb(CacheBlockSet::contiguous(32, start, 4))
                .pcb(CacheBlockSet::contiguous(32, start + 4, 3))
                .build()
                .unwrap()
        };
        TaskSet::new(vec![mk("a", 5, 0, 0), mk("b", 7, 1, 8), mk("c", 9, 0, 16)]).unwrap()
    }

    #[test]
    fn identity_round_trips_the_base_set() {
        let set = base();
        let rebuilt = Candidate::identity(&set).apply(&set);
        assert_eq!(rebuilt.len(), set.len());
        for (a, b) in rebuilt.iter().zip(set.iter()) {
            assert_eq!(a.name(), b.name(), "priority order preserved");
            assert_eq!(a.core(), b.core());
            assert_eq!(a.ecb(), b.ecb());
        }
    }

    #[test]
    fn apply_reorders_reassigns_and_recolors() {
        let set = base();
        let candidate = Candidate {
            cores: vec![1, 0, 0],
            ranks: vec![2, 0, 1], // "a" drops to the lowest priority
            shifts: vec![16, 0, 8],
        };
        let rebuilt = candidate.apply(&set);
        // Rank r lands at TaskId r.
        let names: Vec<&str> = rebuilt.iter().map(Task::name).collect();
        assert_eq!(names, ["b", "c", "a"]);
        assert_eq!(
            rebuilt.iter().map(|t| t.core().index()).collect::<Vec<_>>(),
            [0, 0, 1]
        );
        // "a" (ECB sets 0..8, shift 16) now occupies 16..24.
        let a = rebuilt.get(rebuilt.id_of("a").unwrap()).unwrap();
        assert_eq!(a.ecb(), &CacheBlockSet::contiguous(32, 16, 8));
        assert_eq!(a.ucb(), &CacheBlockSet::contiguous(32, 16, 4));
    }
}
