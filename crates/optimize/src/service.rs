//! The batch service surface: JSON requests in, JSON verdicts out.
//!
//! A batch is a JSON array of [`OptimizeRequest`]s. Each request is
//! fingerprinted ([`request_key`]) over its *canonical* content — the
//! task set hashed in priority order (so client-side task reordering and
//! JSON round trips hit the same entry), the platform shape, the analysis
//! configuration, the seed and the search knobs — and served from the
//! [`ResultCache`] when possible. Responses are serialized compactly, one
//! per line inside the batch array, and cached as those exact bytes, so
//! warm runs are byte-identical to cold runs.
//!
//! Requests are processed sequentially in batch order; the parallelism
//! lives inside each search (see [`crate::search`]), which keeps the
//! output independent of the worker count.

use cpa_analysis::{AnalysisConfig, BusPolicy, PersistenceMode};
use cpa_experiments::runner::derive_seed;
use cpa_model::{CacheGeometry, ContentHasher, Platform, Task, TaskSet, Time};
use cpa_pool::PoolOptions;
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::cache::{ResultCache, SolveMemo};
use crate::candidate::Candidate;
use crate::score::Score;
use crate::search::{optimize_with_memo, SearchKnobs, SearchStats};

/// One design-space optimization request. Every field is required in the
/// JSON form (the vendored serde has no `#[serde(default)]`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizeRequest {
    /// Client-chosen label, echoed in the response.
    pub name: String,
    /// Seed of the (deterministic) search.
    pub seed: u64,
    /// Bus policy label: `fp`, `rr`, `tdma` or `perfect`.
    pub bus: String,
    /// RR/TDMA slot count (ignored for `fp`/`perfect`).
    pub slots: u64,
    /// Persistence mode: `aware` or `oblivious`.
    pub mode: String,
    /// Memory latency `d_mem` in cycles.
    pub d_mem: u64,
    /// Cores available for partitioning.
    pub cores: usize,
    /// Search tuning knobs.
    pub search: SearchKnobs,
    /// The tasks to optimize (any order; canonicalized on load).
    pub tasks: Vec<Task>,
}

/// Where one task ended up in the optimized configuration.
#[derive(Debug, Clone, Serialize)]
pub struct TaskAssignment {
    /// Task name, as in the request.
    pub task: String,
    /// Assigned core.
    pub core: usize,
    /// Priority rank (0 = highest).
    pub priority: u32,
    /// Cache-coloring rotation in cache sets (0 = unchanged).
    pub color_shift: usize,
}

/// The verdict for one request.
#[derive(Debug, Clone, Serialize)]
pub struct OptimizeResponse {
    /// Echoed request name.
    pub name: String,
    /// Content-addressed cache key, as 16 hex digits.
    pub key: String,
    /// Echoed bus label.
    pub bus: String,
    /// Echoed persistence mode.
    pub mode: String,
    /// Whether the unmodified configuration is schedulable.
    pub schedulable_default: bool,
    /// Whether the optimized configuration is schedulable.
    pub schedulable_optimized: bool,
    /// Whether the optimizer strictly improved on the default score.
    pub improved: bool,
    /// Score of the unmodified configuration.
    pub default_score: Score,
    /// Score of the optimized configuration (never below the default).
    pub optimized_score: Score,
    /// Optimized placement of every task, in request priority order.
    pub assignment: Vec<TaskAssignment>,
    /// Search accounting.
    pub stats: SearchStats,
}

/// Knobs of one `process_batch` invocation that must *not* influence the
/// response bytes: worker threads, pool chunking, and the full-evaluation
/// escape hatch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceOptions {
    /// Worker threads for candidate evaluation (0 = auto).
    pub threads: usize,
    /// Pool chunk size (0 = auto).
    pub chunk: usize,
    /// Evaluate every admitted candidate independently: disables the
    /// batch-level solve memo, warm chaining, seeding and parent
    /// certification (admission pruning stays — it is search semantics,
    /// not an accelerator). Slower, byte-identical output; the acceptance
    /// baseline the delta-scoped fast path is compared against.
    pub full_eval: bool,
}

/// Aggregate accounting for one batch run. Reported out-of-band (stderr /
/// `--stats`), never inside the response document, so cold and warm runs
/// stay byte-identical.
#[derive(Debug, Default, Serialize)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Requests that ran a search.
    pub cache_misses: u64,
    /// Requests whose default configuration was schedulable.
    pub schedulable_default: u64,
    /// Requests whose optimized configuration is schedulable.
    pub schedulable_optimized: u64,
    /// Requests the optimizer strictly improved.
    pub strictly_improved: u64,
    /// Candidates evaluated this run (0 for fully cached batches).
    pub candidates: u64,
}

/// Fingerprints one request over its canonical content. Tasks are hashed
/// through [`TaskSet::hash_content`] — priority order, not JSON order —
/// so serialization round trips and client-side reordering map to the
/// same key. Pool threading is deliberately *not* part of the key.
#[must_use]
pub fn request_key(request: &OptimizeRequest, tasks: &TaskSet) -> u64 {
    let mut hasher = ContentHasher::new();
    tasks.hash_content(&mut hasher);
    hasher.write_str(&request.name);
    hasher.write_u64(request.seed);
    hasher.write_str(&request.bus);
    hasher.write_u64(request.slots);
    hasher.write_str(&request.mode);
    hasher.write_u64(request.d_mem);
    hasher.write_usize(request.cores);
    request.search.hash_content(&mut hasher);
    hasher.finish()
}

/// Processes a JSON batch: parse, fingerprint, serve-or-search each
/// request in order, and return the response document plus out-of-band
/// stats. The document is a function of the batch content alone —
/// threading and cache temperature never reach it.
///
/// # Errors
///
/// Returns a message naming the offending request on parse errors,
/// unknown bus/mode labels, platform mismatches, or cache I/O failures.
pub fn process_batch(
    json: &str,
    opts: &ServiceOptions,
    cache: &mut ResultCache,
) -> Result<(String, BatchStats), String> {
    let _span = cpa_obs::span!("optimize.batch");
    let requests: Vec<OptimizeRequest> =
        serde_json::from_str(json).map_err(|e| format!("parse request batch: {e}"))?;
    cpa_obs::counter("optimize.requests").add(requests.len() as u64);
    let mut stats = BatchStats {
        requests: requests.len() as u64,
        ..BatchStats::default()
    };
    // One solve memo per batch: fragments are shared across candidates
    // *and* requests (same tasks under different seeds or knobs hit the
    // same entries), but never across batches — the memo dies here.
    let mut memo = SolveMemo::new();
    let mut docs = Vec::with_capacity(requests.len());
    for request in &requests {
        docs.push(process_request(
            request, opts, cache, &mut memo, &mut stats,
        )?);
    }
    let body = if docs.is_empty() {
        "[]\n".to_string()
    } else {
        format!("[\n{}\n]\n", docs.join(",\n"))
    };
    Ok((body, stats))
}

fn process_request(
    request: &OptimizeRequest,
    opts: &ServiceOptions,
    cache: &mut ResultCache,
    memo: &mut SolveMemo,
    stats: &mut BatchStats,
) -> Result<String, String> {
    let fail = |what: String| format!("request '{}': {what}", request.name);
    let tasks = TaskSet::new(request.tasks.clone()).map_err(|e| fail(e.to_string()))?;
    let key = request_key(request, &tasks);
    if let Some(doc) = cache.get(key) {
        stats.cache_hits += 1;
        tally(stats, &doc);
        return Ok(doc);
    }
    stats.cache_misses += 1;

    let bus = BusPolicy::parse(&request.bus, request.slots)
        .ok_or_else(|| fail(format!("unknown bus policy `{}`", request.bus)))?;
    let mode = match request.mode.as_str() {
        "aware" => PersistenceMode::Aware,
        "oblivious" => PersistenceMode::Oblivious,
        other => return Err(fail(format!("unknown persistence mode `{other}`"))),
    };
    let highest_core = tasks.iter().map(|t| t.core().index()).max().unwrap_or(0);
    if request.cores <= highest_core {
        return Err(fail(format!(
            "{} cores cannot host task on core {highest_core}",
            request.cores
        )));
    }
    let platform = Platform::builder()
        .cores(request.cores)
        .cache(CacheGeometry::direct_mapped(tasks.cache_sets(), 32))
        .memory_latency(Time::from_cycles(request.d_mem))
        .build()
        .map_err(|e| fail(e.to_string()))?;
    let config = AnalysisConfig::new(bus, mode);
    let pool = PoolOptions::new()
        .with_threads(opts.threads)
        .with_chunk(opts.chunk);

    let outcome = optimize_with_memo(
        &tasks,
        &platform,
        &config,
        &request.search,
        request.seed,
        pool,
        memo,
        opts.full_eval,
    );
    let response = OptimizeResponse {
        name: request.name.clone(),
        key: format!("{key:016x}"),
        bus: request.bus.clone(),
        mode: request.mode.clone(),
        schedulable_default: outcome.default_score.schedulable,
        schedulable_optimized: outcome.best_score.schedulable,
        improved: outcome.best_score > outcome.default_score,
        default_score: outcome.default_score,
        optimized_score: outcome.best_score,
        assignment: assignment(&tasks, &outcome.best),
        stats: outcome.stats,
    };
    let doc = serde_json::to_string(&response).map_err(|e| fail(e.to_string()))?;
    cache
        .put(key, &doc)
        .map_err(|e| fail(format!("cache write: {e}")))?;
    stats.candidates += response.stats.candidates;
    tally(stats, &doc);
    Ok(doc)
}

/// Folds one response document into the batch stats. Works on the
/// serialized form so cached and freshly computed responses are tallied
/// identically; the probed substrings are fixed by our own serializer.
fn tally(stats: &mut BatchStats, doc: &str) {
    if doc.contains("\"schedulable_default\":true") {
        stats.schedulable_default += 1;
    }
    if doc.contains("\"schedulable_optimized\":true") {
        stats.schedulable_optimized += 1;
    }
    if doc.contains("\"improved\":true") {
        stats.strictly_improved += 1;
        cpa_obs::counter("optimize.improved").incr();
    }
}

fn assignment(tasks: &TaskSet, best: &Candidate) -> Vec<TaskAssignment> {
    tasks
        .iter()
        .enumerate()
        .map(|(k, t)| TaskAssignment {
            task: t.name().to_string(),
            core: best.cores[k],
            priority: best.ranks[k],
            color_shift: best.shifts[k],
        })
        .collect()
}

/// Options for [`gen_batch`]: a seeded batch of generator-drawn requests,
/// mirroring the experiment generator's paper defaults at small scale.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Number of requests to generate.
    pub sets: usize,
    /// Base seed; task sets and search seeds are derived per request.
    pub seed: u64,
    /// Cores per request.
    pub cores: usize,
    /// Tasks per core.
    pub tasks_per_core: usize,
    /// Cache sets of the generated footprints.
    pub cache_sets: usize,
    /// Per-core utilization target.
    pub util: f64,
    /// Memory latency in cycles.
    pub d_mem: u64,
    /// Bus policy label.
    pub bus: String,
    /// RR/TDMA slots.
    pub slots: u64,
    /// Persistence mode label.
    pub mode: String,
    /// Use [`SearchKnobs::toy`] instead of [`SearchKnobs::standard`].
    pub toy: bool,
}

impl Default for GenOptions {
    fn default() -> GenOptions {
        GenOptions {
            sets: 1,
            seed: 42,
            cores: 2,
            tasks_per_core: 4,
            cache_sets: 64,
            util: 0.6,
            d_mem: 5,
            bus: "fp".to_string(),
            slots: 2,
            mode: "aware".to_string(),
            toy: false,
        }
    }
}

/// Generates a pretty-printed batch of requests, deterministic in the
/// options. Request `s` draws its task set from
/// `derive_seed(seed, 0, s)` and searches with `derive_seed(seed, 1, s)`.
///
/// # Errors
///
/// Returns a message when the generator configuration is invalid.
pub fn gen_batch(opts: &GenOptions) -> Result<String, String> {
    let mut config = GeneratorConfig::paper_default()
        .with_cores(opts.cores)
        .with_cache_sets(opts.cache_sets)
        .with_per_core_utilization(opts.util)
        .with_d_mem(Time::from_cycles(opts.d_mem));
    config.tasks_per_core = opts.tasks_per_core;
    let generator = TaskSetGenerator::new(config).map_err(|e| e.to_string())?;
    let mut requests = Vec::with_capacity(opts.sets);
    for s in 0..opts.sets {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(opts.seed, 0, s as u64));
        let set = generator.generate(&mut rng).map_err(|e| e.to_string())?;
        requests.push(OptimizeRequest {
            name: format!("req-{s:03}"),
            seed: derive_seed(opts.seed, 1, s as u64),
            bus: opts.bus.clone(),
            slots: opts.slots,
            mode: opts.mode.clone(),
            d_mem: opts.d_mem,
            cores: opts.cores,
            search: if opts.toy {
                SearchKnobs::toy()
            } else {
                SearchKnobs::standard()
            },
            tasks: set.into(),
        });
    }
    serde_json::to_string_pretty(&requests).map_err(|e| e.to_string())
}
