//! The optimizer's determinism contract, end to end:
//!
//! * same seed + same batch ⇒ byte-identical response JSON at 1 worker
//!   thread and at N;
//! * a repeated batch is served entirely from the result cache, byte for
//!   byte;
//! * local search agrees with exhaustive enumeration on a toy space;
//! * on a misconfigured seeded set the optimizer strictly improves on the
//!   default configuration, flipping it to schedulable;
//! * the delta-scoped fast path (solve memo + partial re-solve + warm
//!   chaining) and the independent full-evaluation path produce
//!   byte-identical responses, and admission pruning decides identically
//!   in both.

use cpa_analysis::{AnalysisConfig, BusPolicy, PersistenceMode};
use cpa_model::{CacheBlockSet, CacheGeometry, CoreId, Platform, Priority, Task, TaskSet, Time};
use cpa_optimize::{
    gen_batch, optimize, process_batch, GenOptions, ResultCache, SearchKnobs, ServiceOptions,
};
use cpa_pool::PoolOptions;

fn toy_batch() -> String {
    let opts = GenOptions {
        sets: 3,
        seed: 42,
        cores: 2,
        tasks_per_core: 3,
        cache_sets: 32,
        util: 0.5,
        toy: true,
        ..GenOptions::default()
    };
    gen_batch(&opts).expect("toy batch generates")
}

#[test]
fn responses_are_invariant_in_the_thread_count() {
    let batch = toy_batch();
    let run = |threads: usize| {
        let mut cache = ResultCache::in_memory();
        let opts = ServiceOptions {
            threads,
            ..ServiceOptions::default()
        };
        process_batch(&batch, &opts, &mut cache).expect("batch processes")
    };
    let warm_before = cpa_obs::counter("engine.warm_starts").get();
    let (single, single_stats) = run(1);
    // Optimizer workers chain their scratches across candidates, so the
    // warm path must have been live while the bytes below were produced.
    assert!(
        cpa_obs::counter("engine.warm_starts").get() > warm_before,
        "optimizer candidates must warm-chain on per-worker scratches"
    );
    let (parallel, parallel_stats) = run(4);
    assert_eq!(single, parallel, "1-thread and 4-thread bytes must match");
    assert_eq!(single_stats.cache_misses, 3);
    assert_eq!(parallel_stats.cache_misses, 3);
    // And a different chunking must not matter either.
    let mut cache = ResultCache::in_memory();
    let odd_chunk = ServiceOptions {
        threads: 3,
        chunk: 5,
        ..ServiceOptions::default()
    };
    let (chunked, _) = process_batch(&batch, &odd_chunk, &mut cache).expect("batch processes");
    assert_eq!(single, chunked, "chunk size must not reach the output");
}

#[test]
fn repeated_batches_are_served_from_the_cache() {
    let batch = toy_batch();
    let opts = ServiceOptions::default();
    let mut cache = ResultCache::in_memory();
    let (cold, cold_stats) = process_batch(&batch, &opts, &mut cache).expect("cold run");
    assert_eq!(cold_stats.cache_hits, 0);
    assert_eq!(cold_stats.cache_misses, cold_stats.requests);
    assert!(cold_stats.candidates > 0, "cold run searches");

    let (warm, warm_stats) = process_batch(&batch, &opts, &mut cache).expect("warm run");
    assert_eq!(
        warm_stats.cache_hits, warm_stats.requests,
        "every request must hit the cache on the second run"
    );
    assert_eq!(warm_stats.cache_misses, 0);
    assert_eq!(warm_stats.candidates, 0, "warm run does no search");
    assert_eq!(cold, warm, "cached replay must be byte-identical");
    // Verdict tallies are recomputed from the cached documents.
    assert_eq!(warm_stats.strictly_improved, cold_stats.strictly_improved);
    assert_eq!(
        warm_stats.schedulable_optimized,
        cold_stats.schedulable_optimized
    );
}

/// A 3-task fixture on a 16-set cache, small enough that the full space
/// (2³ partitionings × 3! orders × 2³ colorings = 384 points) enumerates
/// quickly.
fn tiny_set() -> (TaskSet, Platform) {
    let mk = |name: &str, prio: u32, core: usize, pd: u64, md: u64, deadline: u64, start| {
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md / 4)
            .period(Time::from_cycles(deadline))
            .deadline(Time::from_cycles(deadline))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(16, start, 8))
            .ucb(CacheBlockSet::contiguous(16, start, 4))
            .pcb(CacheBlockSet::contiguous(16, start + 4, 3))
            .build()
            .unwrap()
    };
    // Deliberately misordered: the urgent task sits at the lowest
    // priority behind two heavy tasks sharing its core and footprint.
    let tasks = TaskSet::new(vec![
        mk("heavy-a", 0, 0, 4_000, 24, 40_000, 0),
        mk("heavy-b", 1, 0, 4_000, 24, 40_000, 0),
        mk("urgent", 2, 0, 500, 8, 5_000, 0),
    ])
    .unwrap();
    let platform = Platform::builder()
        .cores(2)
        .cache(CacheGeometry::direct_mapped(16, 32))
        .memory_latency(Time::from_cycles(50))
        .build()
        .unwrap();
    (tasks, platform)
}

#[test]
fn local_search_agrees_with_exhaustive_on_a_toy_space() {
    let (tasks, platform) = tiny_set();
    let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
    let mut knobs = SearchKnobs::toy();
    knobs.colors = 2;

    knobs.exhaustive_limit = 1_000; // 2³·3!·2³ = 384 < 1000: forced exhaustive
    let exhaustive = optimize(&tasks, &platform, &config, &knobs, 42, PoolOptions::new());
    assert_eq!(exhaustive.stats.strategy, "exhaustive");

    knobs.exhaustive_limit = 0; // forced local search
    knobs.restarts = 4;
    knobs.max_rounds = 20;
    knobs.neighbors = 16;
    knobs.patience = 5;
    let local = optimize(&tasks, &platform, &config, &knobs, 42, PoolOptions::new());
    assert_eq!(local.stats.strategy, "local-search");

    assert_eq!(local.default_score, exhaustive.default_score);
    assert!(
        exhaustive.best_score >= local.best_score,
        "exhaustive is the global optimum"
    );
    assert_eq!(
        local.best_score.schedulable, exhaustive.best_score.schedulable,
        "local search must reach schedulability whenever it exists here"
    );
    assert_eq!(
        local.best_score, exhaustive.best_score,
        "on this space the seeded local search finds the global optimum"
    );
}

#[test]
fn optimizer_strictly_improves_a_misordered_set() {
    let (tasks, platform) = tiny_set();
    let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
    let knobs = SearchKnobs::toy();
    let outcome = optimize(&tasks, &platform, &config, &knobs, 42, PoolOptions::new());
    assert!(
        !outcome.default_score.schedulable,
        "fixture: the default order misses the urgent deadline"
    );
    assert!(
        outcome.best_score.schedulable,
        "reordering/partitioning/coloring makes the set schedulable"
    );
    assert!(outcome.best_score > outcome.default_score);
    // The urgent task cannot stay at the bottom of the priority order.
    let urgent_rank = outcome.best.ranks[2];
    assert!(
        urgent_rank < 2,
        "urgent task must be promoted, got rank {urgent_rank}"
    );
}

#[test]
fn full_evaluation_and_delta_scoped_paths_agree_byte_for_byte() {
    let batch = toy_batch();
    let run = |full_eval: bool, threads: usize| {
        let mut cache = ResultCache::in_memory();
        let opts = ServiceOptions {
            threads,
            full_eval,
            ..ServiceOptions::default()
        };
        process_batch(&batch, &opts, &mut cache).expect("batch processes")
    };
    let (full, full_stats) = run(true, 1);
    let (fast, fast_stats) = run(false, 4);
    assert_eq!(
        full, fast,
        "independent full evaluation and the delta-scoped pipeline must agree byte for byte"
    );
    assert_eq!(full_stats.candidates, fast_stats.candidates);
    // And the fast path is itself thread-invariant under full_eval too.
    let (full4, _) = run(true, 4);
    assert_eq!(full, full4);
}

#[test]
fn admission_pruning_fires_identically_in_both_modes() {
    // Overloaded per-core utilization: any Reassign move that doubles up
    // a core trips the residual-utilization bound, so the walk genuinely
    // prunes.
    let opts = GenOptions {
        sets: 2,
        seed: 9,
        cores: 2,
        tasks_per_core: 3,
        cache_sets: 32,
        util: 0.95,
        toy: true,
        ..GenOptions::default()
    };
    let batch = gen_batch(&opts).expect("batch generates");
    let run = |full_eval: bool| {
        let mut cache = ResultCache::in_memory();
        let service = ServiceOptions {
            full_eval,
            ..ServiceOptions::default()
        };
        process_batch(&batch, &service, &mut cache).expect("batch processes")
    };
    let (fast, _) = run(false);
    let (full, _) = run(true);
    // `stats.pruned` is part of the response document, so byte equality
    // pins the pruning decisions across modes.
    assert_eq!(fast, full);
    assert!(fast.contains("\"pruned\":"), "stats must report pruning");
    let some_pruned = fast
        .split("\"pruned\":")
        .skip(1)
        .any(|rest| !rest.starts_with('0'));
    assert!(some_pruned, "fixture must actually prune candidates");
}

#[test]
fn same_seed_same_outcome_different_seed_may_differ() {
    let (tasks, platform) = tiny_set();
    let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
    let mut knobs = SearchKnobs::toy();
    knobs.exhaustive_limit = 0; // seed only matters for local search
    let a = optimize(&tasks, &platform, &config, &knobs, 7, PoolOptions::new());
    let b = optimize(&tasks, &platform, &config, &knobs, 7, PoolOptions::new());
    assert_eq!(a.best, b.best);
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.stats.candidates, b.stats.candidates);
    assert_eq!(a.stats.moves_accepted, b.stats.moves_accepted);
}
