//! Other-core bus access bounds: Eq. (3)–(6) and Lemma 2.
//!
//! Tasks on remote cores are not synchronised with the task under analysis,
//! so the worst case lets the first ("carry-in") job of each remote task
//! finish as late as possible — just before its WCRT — and all later jobs
//! execute as early as possible. `N_{k,l}^y(t)` (Eq. (6)) counts the jobs
//! that fit *entirely* inside the window; `W^y_{k,l,cout}` (Eq. (5)) adds
//! the accesses of the partially overlapping carry-out job, at most one
//! access per elapsed `d_mem` of overlap.

use cpa_model::{CoreId, TaskId, Time};

use crate::{cpro, demand, AnalysisContext, PersistenceMode};

/// Eq. (6): `N_{k,l}^y(t)`, the maximum number of jobs of a remote task
/// that fully execute within a window of length `t`, given the remote
/// task's current response-time estimate `r_l` and its per-job bus charge
/// `cost = MD_l + γ_{k,l,y}`.
///
/// The paper's numerator `t + R_l − cost·d_mem` is clamped at zero: for
/// tiny windows no job fits.
#[must_use]
pub fn n_jobs(t: Time, r_l: Time, cost: u64, d_mem: Time, period: Time) -> u64 {
    let numerator = t
        .saturating_add(r_l)
        .saturating_sub(d_mem.saturating_mul(cost));
    numerator.div_floor(period)
}

/// Eq. (5): `W^y_{k,l,cout}(t)`, the carry-out job's bus accesses — the
/// window length left after the `N` full jobs, divided by `d_mem` (one
/// access cannot complete faster), capped at the per-job charge `cost`.
#[must_use]
pub fn w_cout(t: Time, r_l: Time, cost: u64, d_mem: Time, period: Time, n: u64) -> u64 {
    let overlap = t
        .saturating_add(r_l)
        .saturating_sub(d_mem.saturating_mul(cost))
        .saturating_sub(period.saturating_mul(n));
    overlap.div_ceil(d_mem).min(cost)
}

/// Which priority band of the remote core contributes (Eq. (3) vs the
/// `BAO_{i,low}` term of Eq. (7)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityBand {
    /// `Γy ∩ hep(k)`: priority `k` or higher (Eq. (3)).
    HigherOrEqual,
    /// `Γy ∩ lp(k)`: strictly lower priority (the FP-bus blocking sum).
    Lower,
}

/// How the carry-out job of Eq. (5) is charged.
///
/// The exact term grows by one access per elapsed `d_mem`, which makes the
/// WCRT fixed point advance in `d_mem`-sized steps ("creep") near
/// convergence. [`CarryOut::Capped`] replaces Eq. (5) by its own upper cap
/// `MD_l + γ` — a sound over-approximation whose value only changes at
/// period-scale events, so fixed-point iterations converge in a number of
/// steps bounded by the job releases in the window. The WCRT driver uses
/// `Capped` to bracket the fixed point and then refines downwards with
/// `Exact` (see [`crate::wcrt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryOut {
    /// Eq. (5) as printed.
    Exact,
    /// The cap `MD_l + γ_{k,l,y}` (the `min`'s second argument).
    Capped,
}

/// Eq. (3) / Lemma 2, generalised over persistence mode and priority band:
/// upper bound on the bus accesses issued by tasks of `band` relative to
/// priority `k` on remote core `y` in a window of length `t`.
///
/// `resp` holds the current response-time estimates of all tasks (indexed
/// by [`TaskId`]); the bound is monotone in these estimates, which is what
/// makes the outer fixed-point loop of [`crate::wcrt`] sound.
///
/// For [`PersistenceMode::Aware`] this is Lemma 2: each remote task's full
/// jobs are charged `min(N·MD_l ; M̂D_l(N) + ρ̂_l(N))` plus CRPD, instead
/// of `N·(MD_l + γ)`.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the equation's parameter list
pub fn bao(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
    mode: PersistenceMode,
    band: PriorityBand,
    carry: CarryOut,
) -> u64 {
    let tasks = ctx.tasks();
    let d_mem = ctx.d_mem();
    let mut total = 0u64;
    let members: Vec<TaskId> = match band {
        PriorityBand::HigherOrEqual => tasks.hep_on(k, y).collect(),
        PriorityBand::Lower => tasks.lp_on(k, y).collect(),
    };
    for l in members {
        let task = &tasks[l];
        let gamma = ctx.gamma(k, l);
        let cost = task.memory_demand().saturating_add(gamma);
        let r_l = resp[l.index()];
        let period = task.period();
        let n = n_jobs(t, r_l, cost, d_mem, period);
        // Cap on the carry-out job's charge. For the oblivious analysis it
        // is Eq. (5)'s own `MD_l + γ`. For the persistence-aware analysis
        // the carry-out is additionally capped by the (n+1)-th job's share
        // of the persistence bound, `ΔM̂D + Δρ̂ + γ`: charging the n full
        // jobs at the n-job persistence bound plus this increment equals
        // the (n+1)-job persistence bound, so the cap is sound — and it
        // keeps the whole term *monotone* in `t` (with the raw Eq. (5)
        // cap, an N-increment trades a carry-out worth up to `MD + γ` for
        // a full-job increment worth as little as `MD^r`, making the
        // right-hand side of Eq. (19) non-monotone and fixed-point
        // iteration unsound to refine).
        let cout_cap = match mode {
            PersistenceMode::Oblivious => cost,
            PersistenceMode::Aware => {
                let overlap = ctx.cpro_overlap(l, k);
                let d_md_hat = demand::md_hat(task, n.saturating_add(1))
                    .saturating_sub(demand::md_hat(task, n));
                let d_cpro =
                    cpro::cpro(overlap, n.saturating_add(1)).saturating_sub(cpro::cpro(overlap, n));
                cost.min(d_md_hat.saturating_add(d_cpro).saturating_add(gamma))
            }
        };
        let cout = match carry {
            CarryOut::Exact => w_cout(t, r_l, cost, d_mem, period, n).min(cout_cap),
            CarryOut::Capped => cout_cap,
        };
        let full_jobs = match mode {
            PersistenceMode::Oblivious => n.saturating_mul(cost),
            PersistenceMode::Aware => {
                let oblivious = n.saturating_mul(task.memory_demand());
                let persistent =
                    demand::md_hat(task, n).saturating_add(cpro::cpro(ctx.cpro_overlap(l, k), n));
                oblivious
                    .min(persistent)
                    .saturating_add(n.saturating_mul(gamma))
            }
        };
        total = total.saturating_add(full_jobs).saturating_add(cout);
    }
    total
}

/// Eq. (3): the persistence-oblivious `BAO_k^y(t)` over `Γy ∩ hep(k)`.
#[must_use]
pub fn bao_oblivious(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
) -> u64 {
    bao(
        ctx,
        k,
        y,
        t,
        resp,
        PersistenceMode::Oblivious,
        PriorityBand::HigherOrEqual,
        CarryOut::Exact,
    )
}

/// Lemma 2: the persistence-aware `BÂO_k^y(t)` over `Γy ∩ hep(k)`.
#[must_use]
pub fn bao_aware(ctx: &AnalysisContext<'_>, k: TaskId, y: CoreId, t: Time, resp: &[Time]) -> u64 {
    bao(
        ctx,
        k,
        y,
        t,
        resp,
        PersistenceMode::Aware,
        PriorityBand::HigherOrEqual,
        CarryOut::Exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet};
    use proptest::prelude::*;

    fn fig1() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        let tau1 = Task::builder("tau1")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(20))
            .deadline(Time::from_cycles(20))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        let tau2 = Task::builder("tau2")
            .processing_demand(Time::from_cycles(32))
            .memory_demand(8)
            .period(Time::from_cycles(200))
            .deadline(Time::from_cycles(200))
            .core(CoreId::new(0))
            .priority(Priority::new(2))
            .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
            .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
            .build()
            .unwrap();
        let tau3 = Task::builder("tau3")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(16))
            .deadline(Time::from_cycles(16))
            .core(CoreId::new(1))
            .priority(Priority::new(3))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
    }

    #[test]
    fn n_jobs_clamps_small_windows() {
        let d = Time::from_cycles(10);
        let p = Time::from_cycles(100);
        // t + R − cost·d_mem = 0 + 50 − 60 < 0 ⇒ 0 jobs.
        assert_eq!(n_jobs(Time::ZERO, Time::from_cycles(50), 6, d, p), 0);
        // 300 + 50 − 60 = 290 ⇒ 2 full periods.
        assert_eq!(
            n_jobs(Time::from_cycles(300), Time::from_cycles(50), 6, d, p),
            2
        );
    }

    #[test]
    fn w_cout_caps_at_per_job_cost() {
        let d = Time::from_cycles(10);
        let p = Time::from_cycles(100);
        let t = Time::from_cycles(300);
        let r = Time::from_cycles(50);
        let n = n_jobs(t, r, 6, d, p);
        assert_eq!(n, 2);
        // Overlap = 290 − 200 = 90 ⇒ ⌈90/10⌉ = 9, capped at cost 6.
        assert_eq!(w_cout(t, r, 6, d, p, n), 6);
        // Tiny leftover: t = 215 ⇒ overlap = 5 ⇒ 1 access.
        let t = Time::from_cycles(215);
        let n = n_jobs(t, r, 6, d, p);
        assert_eq!(n, 2);
        assert_eq!(w_cout(t, r, 6, d, p, n), 1);
        // No overlap at all.
        assert_eq!(w_cout(Time::ZERO, r, 6, d, p, 0), 0);
    }

    #[test]
    fn fig1_bao_tau3() {
        // The paper's example: during τ2's response time, BAO_3^y counts 4
        // full jobs of τ3 at MD_3 = 6 ⇒ 24 (Eq. (13)); with persistence the
        // same 4 jobs cost M̂D_3(4) = 9.
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let y = CoreId::new(1);
        // Choose window/R so that N = 4 and the carry-out term is zero:
        // t + R − 6·1 = 64 ⇒ N = ⌊64/16⌋ = 4, overlap 0.
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);
        assert_eq!(
            n_jobs(t, resp[t3.index()], 6, ctx.d_mem(), Time::from_cycles(16)),
            4
        );
        // The paper evaluates BAO at level 3 (τ3's own priority); from τ2's
        // level the hep-band on core y is empty.
        assert_eq!(bao_oblivious(&ctx, t2, y, t, &resp), 0);
        assert_eq!(bao_oblivious(&ctx, t3, y, t, &resp), 24);
        assert_eq!(bao_aware(&ctx, t3, y, t, &resp), 9);
    }

    #[test]
    fn lower_band_only_counts_lp_tasks() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let y = CoreId::new(1);
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);
        // τ3 is the only task on core y and has lower priority than τ2, so
        // the lower band equals the full bound for k = τ2 ...
        let low = bao(
            &ctx,
            t2,
            y,
            t,
            &resp,
            PersistenceMode::Oblivious,
            PriorityBand::Lower,
            CarryOut::Exact,
        );
        assert_eq!(low, 24);
        // ... and the hep-band is empty (τ3 ∉ hep(τ2)).
        assert_eq!(bao_oblivious(&ctx, t2, y, t, &resp), 0);
        // From the lowest priority's perspective, hep covers τ3.
        assert_eq!(bao_oblivious(&ctx, t3, y, t, &resp), 24);
    }

    proptest! {
        #[test]
        fn aware_never_exceeds_oblivious(
            t in 0u64..5_000,
            r in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            let t = Time::from_cycles(t);
            for k in tasks.ids() {
                for y in [CoreId::new(0), CoreId::new(1)] {
                    prop_assert!(bao_aware(&ctx, k, y, t, &resp)
                        <= bao_oblivious(&ctx, k, y, t, &resp));
                }
            }
        }

        #[test]
        fn monotone_in_window_and_response(
            a in 0u64..5_000,
            b in 0u64..5_000,
            ra in 0u64..2_000,
            rb in 0u64..2_000,
        ) {
            let (t_lo, t_hi) = (a.min(b), a.max(b));
            let (r_lo, r_hi) = (ra.min(rb), ra.max(rb));
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let k = tasks.lowest_priority_id();
            for y in [CoreId::new(0), CoreId::new(1)] {
                for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                    for carry in [CarryOut::Exact, CarryOut::Capped] {
                        let lo = bao(&ctx, k, y, Time::from_cycles(t_lo),
                            &[Time::from_cycles(r_lo); 3], mode,
                            PriorityBand::HigherOrEqual, carry);
                        let hi = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, carry);
                        prop_assert!(lo <= hi);
                        // Capped carry-out over-approximates the exact term.
                        let exact = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, CarryOut::Exact);
                        let capped = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, CarryOut::Capped);
                        prop_assert!(exact <= capped);
                    }
                }
            }
        }

        #[test]
        fn carry_out_bounded_by_cost(
            t in 0u64..100_000,
            r in 0u64..10_000,
            cost in 0u64..1_000,
            d in 1u64..100,
            p in 1u64..10_000,
        ) {
            let d = Time::from_cycles(d);
            let p = Time::from_cycles(p);
            let t = Time::from_cycles(t);
            let r = Time::from_cycles(r);
            let n = n_jobs(t, r, cost, d, p);
            prop_assert!(w_cout(t, r, cost, d, p, n) <= cost);
        }
    }
}
