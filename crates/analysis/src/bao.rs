//! Other-core bus access bounds: Eq. (3)–(6) and Lemma 2.
//!
//! Tasks on remote cores are not synchronised with the task under analysis,
//! so the worst case lets the first ("carry-in") job of each remote task
//! finish as late as possible — just before its WCRT — and all later jobs
//! execute as early as possible. `N_{k,l}^y(t)` (Eq. (6)) counts the jobs
//! that fit *entirely* inside the window; `W^y_{k,l,cout}` (Eq. (5)) adds
//! the accesses of the partially overlapping carry-out job, at most one
//! access per elapsed `d_mem` of overlap.

use cpa_model::{CoreId, TaskId, Time};

use crate::{cpro, demand, AnalysisContext, PersistenceMode};

/// Eq. (6): `N_{k,l}^y(t)`, the maximum number of jobs of a remote task
/// that fully execute within a window of length `t`, given the remote
/// task's current response-time estimate `r_l` and its per-job bus charge
/// `cost = MD_l + γ_{k,l,y}`.
///
/// The paper's numerator `t + R_l − cost·d_mem` is clamped at zero: for
/// tiny windows no job fits.
#[must_use]
pub fn n_jobs(t: Time, r_l: Time, cost: u64, d_mem: Time, period: Time) -> u64 {
    let numerator = t
        .saturating_add(r_l)
        .saturating_sub(d_mem.saturating_mul(cost));
    numerator.div_floor(period)
}

/// Eq. (5): `W^y_{k,l,cout}(t)`, the carry-out job's bus accesses — the
/// window length left after the `N` full jobs, divided by `d_mem` (one
/// access cannot complete faster), capped at the per-job charge `cost`.
#[must_use]
pub fn w_cout(t: Time, r_l: Time, cost: u64, d_mem: Time, period: Time, n: u64) -> u64 {
    let overlap = t
        .saturating_add(r_l)
        .saturating_sub(d_mem.saturating_mul(cost))
        .saturating_sub(period.saturating_mul(n));
    overlap.div_ceil(d_mem).min(cost)
}

/// Which priority band of the remote core contributes (Eq. (3) vs the
/// `BAO_{i,low}` term of Eq. (7)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityBand {
    /// `Γy ∩ hep(k)`: priority `k` or higher (Eq. (3)).
    HigherOrEqual,
    /// `Γy ∩ lp(k)`: strictly lower priority (the FP-bus blocking sum).
    Lower,
}

/// How the carry-out job of Eq. (5) is charged.
///
/// The exact term grows by one access per elapsed `d_mem`, which makes the
/// WCRT fixed point advance in `d_mem`-sized steps ("creep") near
/// convergence. [`CarryOut::Capped`] replaces Eq. (5) by its own upper cap
/// `MD_l + γ` — a sound over-approximation whose value only changes at
/// period-scale events, so fixed-point iterations converge in a number of
/// steps bounded by the job releases in the window. The WCRT driver uses
/// `Capped` to bracket the fixed point and then refines downwards with
/// `Exact` (see [`crate::wcrt`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryOut {
    /// Eq. (5) as printed.
    Exact,
    /// The cap `MD_l + γ_{k,l,y}` (the `min`'s second argument).
    Capped,
}

/// Eq. (3) / Lemma 2, generalised over persistence mode and priority band:
/// upper bound on the bus accesses issued by tasks of `band` relative to
/// priority `k` on remote core `y` in a window of length `t`.
///
/// `resp` holds the current response-time estimates of all tasks (indexed
/// by [`TaskId`]); the bound is monotone in these estimates, which is what
/// makes the outer fixed-point loop of [`crate::wcrt`] sound.
///
/// For [`PersistenceMode::Aware`] this is Lemma 2: each remote task's full
/// jobs are charged `min(N·MD_l ; M̂D_l(N) + ρ̂_l(N))` plus CRPD, instead
/// of `N·(MD_l + γ)`.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the equation's parameter list
pub fn bao(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
    mode: PersistenceMode,
    band: PriorityBand,
    carry: CarryOut,
) -> u64 {
    let tasks = ctx.tasks();
    let d_mem = ctx.d_mem();
    let mut total = 0u64;
    let mut add = |l: TaskId| {
        let task = &tasks[l];
        let gamma = ctx.gamma(k, l);
        let cost = task.memory_demand().saturating_add(gamma);
        let r_l = resp[l.index()];
        let period = task.period();
        let n = n_jobs(t, r_l, cost, d_mem, period);
        // Cap on the carry-out job's charge. For the oblivious analysis it
        // is Eq. (5)'s own `MD_l + γ`. For the persistence-aware analysis
        // the carry-out is additionally capped by the (n+1)-th job's share
        // of the persistence bound, `ΔM̂D + Δρ̂ + γ`: charging the n full
        // jobs at the n-job persistence bound plus this increment equals
        // the (n+1)-job persistence bound, so the cap is sound — and it
        // keeps the whole term *monotone* in `t` (with the raw Eq. (5)
        // cap, an N-increment trades a carry-out worth up to `MD + γ` for
        // a full-job increment worth as little as `MD^r`, making the
        // right-hand side of Eq. (19) non-monotone and fixed-point
        // iteration unsound to refine).
        let cout_cap = match mode {
            PersistenceMode::Oblivious => cost,
            PersistenceMode::Aware => {
                let overlap = ctx.cpro_overlap(l, k);
                let d_md_hat = demand::md_hat(task, n.saturating_add(1))
                    .saturating_sub(demand::md_hat(task, n));
                let d_cpro =
                    cpro::cpro(overlap, n.saturating_add(1)).saturating_sub(cpro::cpro(overlap, n));
                cost.min(d_md_hat.saturating_add(d_cpro).saturating_add(gamma))
            }
        };
        let cout = match carry {
            CarryOut::Exact => w_cout(t, r_l, cost, d_mem, period, n).min(cout_cap),
            CarryOut::Capped => cout_cap,
        };
        let full_jobs = match mode {
            PersistenceMode::Oblivious => n.saturating_mul(cost),
            PersistenceMode::Aware => {
                let oblivious = n.saturating_mul(task.memory_demand());
                let persistent =
                    demand::md_hat(task, n).saturating_add(cpro::cpro(ctx.cpro_overlap(l, k), n));
                oblivious
                    .min(persistent)
                    .saturating_add(n.saturating_mul(gamma))
            }
        };
        total = total.saturating_add(full_jobs).saturating_add(cout);
    };
    match band {
        PriorityBand::HigherOrEqual => tasks.hep_on(k, y).for_each(&mut add),
        PriorityBand::Lower => tasks.lp_on(k, y).for_each(&mut add),
    }
    total
}

/// `u64::MAX`, the saturation point of the window arithmetic, as `u128`.
const SAT: u128 = u64::MAX as u128;

/// Eq. (6)'s numerator under the crate's saturating `u64` semantics,
/// modelled exactly in `u128`: `max(min(t + r, SAT) − c, 0)`.
fn numerator(t: u128, r: u128, c: u128) -> u128 {
    (t + r).min(SAT).saturating_sub(c)
}

/// Smallest `t` with `numerator(t) ≥ bound`; callers only ask for bounds
/// already reached at some window, so the result is exact there.
fn smallest_t_reaching(bound: u128, r: u128, c: u128) -> u128 {
    if bound == 0 {
        return 0;
    }
    bound.saturating_add(c).saturating_sub(r).min(SAT)
}

/// Largest `t ≤ SAT` with `numerator(t) ≤ bound`; callers only ask when
/// the current window already satisfies the bound.
fn largest_t_within(bound: u128, r: u128, c: u128) -> u128 {
    let lim = bound.saturating_add(c);
    if lim >= SAT {
        // The saturation plateau never exceeds the bound: constant to the end.
        SAT
    } else {
        lim.saturating_sub(r)
    }
}

/// `u64` fast path of [`smallest_t_reaching`] for `u64`-range inputs:
/// `None` iff the intermediate `bound + c` leaves `u64` (then the caller
/// falls back to the exact `u128` derivation — by far the uncommon
/// case). Pinned bitwise against the `u128` model by proptest.
fn smallest_t_reaching64(bound: u64, r: u64, c: u64) -> Option<u64> {
    if bound == 0 {
        return Some(0);
    }
    Some(bound.checked_add(c)?.saturating_sub(r))
}

/// `u64` fast path of [`largest_t_within`] for `u64`-range inputs —
/// total, no fallback: an overflowing `bound + c` is exactly the `u128`
/// model's saturation plateau. Pinned bitwise by proptest.
fn largest_t_within64(bound: u64, r: u64, c: u64) -> u64 {
    match bound.checked_add(c) {
        Some(lim) if lim < u64::MAX => lim.saturating_sub(r),
        // lim ≥ SAT: the saturation plateau never exceeds the bound.
        _ => u64::MAX,
    }
}

/// The `N`-interval `[lo, hi]` a [`BaoTerm`] is valid on, for a member
/// with period `p > 0`, response-time estimate `r` and pre-saturated
/// overlap subtrahend `c = min(cost · d_mem, u64::MAX)` at full-job
/// count `n`. Runs entirely in `u64` — the hot-path win over the former
/// all-`u128` derivation — dropping to the `u128` saturation model only
/// when `N·T` (or `bound + c` inside the lower endpoint) overflows;
/// `term_interval_fast_path_matches_u128_model` pins the two bitwise.
fn term_interval(n: u64, p: u64, r: u64, c: u64) -> (u64, u64) {
    let lo = if n == 0 {
        0
    } else {
        match n
            .checked_mul(p)
            .and_then(|b| smallest_t_reaching64(b, r, c))
        {
            Some(lo) => lo,
            None => {
                let exact = smallest_t_reaching(
                    u128::from(n) * u128::from(p),
                    u128::from(r),
                    u128::from(c),
                );
                u64::try_from(exact).unwrap_or(u64::MAX)
            }
        }
    };
    let hi = match n.checked_add(1).and_then(|n1| n1.checked_mul(p)) {
        Some(b) => largest_t_within64(b - 1, r, c),
        None => {
            let exact = largest_t_within(
                (u128::from(n) + 1) * u128::from(p) - 1,
                u128::from(r),
                u128::from(c),
            )
            .min(SAT);
            u64::try_from(exact).unwrap_or(u64::MAX)
        }
    };
    (lo, hi)
}

/// Maximal window interval containing `t` on which `bao(...)` — with the
/// very same arguments — is constant.
///
/// Per remote task `l`, the bound only changes when either the full-job
/// count `N` of Eq. (6) steps (at period-scale events) or, for
/// [`CarryOut::Exact`], the carry-out term of Eq. (5) steps (on the
/// `d_mem` grid, until it reaches its cap and stays there for the rest of
/// the `N`-interval). The span is the intersection of those constancy
/// intervals over the band's members; it is what the engine's step-curve
/// cache stores alongside each computed value, so it must be *exactly*
/// sound against [`bao`]'s saturating `u64` arithmetic — all interval
/// endpoints are therefore derived in `u128` from the same formulas.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors `bao`'s parameter list
pub fn bao_span(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
    mode: PersistenceMode,
    band: PriorityBand,
    carry: CarryOut,
) -> crate::curve::Span {
    let tasks = ctx.tasks();
    let d_mem = ctx.d_mem();
    let t_now = t.cycles() as u128;
    let mut lo = 0u128;
    let mut hi = SAT;
    let mut restrict = |l: TaskId| {
        let task = &tasks[l];
        let gamma = ctx.gamma(k, l);
        let cost = task.memory_demand().saturating_add(gamma);
        let r = resp[l.index()].cycles() as u128;
        let period = task.period().cycles() as u128;
        let c = (d_mem.cycles() as u128)
            .saturating_mul(cost as u128)
            .min(SAT);
        let num = numerator(t_now, r, c);
        let n = num / period;
        // N-interval: numerator ∈ [n·T, (n+1)·T − 1].
        let n_lo = if n == 0 {
            0
        } else {
            smallest_t_reaching(n * period, r, c)
        };
        let n_hi = largest_t_within((n + 1) * period - 1, r, c);
        lo = lo.max(n_lo);
        hi = hi.min(n_hi);
        if carry == CarryOut::Exact {
            // Carry-out value: min(⌈overlap/d_mem⌉, cost, cout_cap). It is
            // constant on one d_mem cell of the overlap — or on the whole
            // tail of the N-interval once the cap m = min(cost, cout_cap)
            // is reached.
            let cout_cap = match mode {
                PersistenceMode::Oblivious => cost,
                PersistenceMode::Aware => {
                    let overlap_pw = ctx.cpro_overlap(l, k);
                    let n64 = u64::try_from(n).unwrap_or(u64::MAX);
                    let d_md_hat = demand::md_hat(task, n64.saturating_add(1))
                        .saturating_sub(demand::md_hat(task, n64));
                    let d_cpro = cpro::cpro(overlap_pw, n64.saturating_add(1))
                        .saturating_sub(cpro::cpro(overlap_pw, n64));
                    cost.min(d_md_hat.saturating_add(d_cpro).saturating_add(gamma))
                }
            };
            let m = cost.min(cout_cap) as u128;
            let d = d_mem.cycles() as u128;
            let overlap = num - n * period;
            let q = if overlap == 0 {
                0
            } else {
                (overlap - 1) / d + 1
            };
            if m == 0 {
                // Carry-out identically zero across the N-interval.
            } else if q >= m {
                // Capped tail: overlap ≥ (m−1)·d + 1 keeps the value at m.
                let floor = (n * period)
                    .saturating_add((m - 1).saturating_mul(d))
                    .saturating_add(1);
                lo = lo.max(smallest_t_reaching(floor, r, c));
            } else if q == 0 {
                hi = hi.min(largest_t_within(n * period, r, c));
            } else {
                let floor = n * period + (q - 1) * d + 1;
                lo = lo.max(smallest_t_reaching(floor, r, c));
                hi = hi.min(largest_t_within(n * period + q * d, r, c));
            }
        }
    };
    match band {
        PriorityBand::HigherOrEqual => tasks.hep_on(k, y).for_each(&mut restrict),
        PriorityBand::Lower => tasks.lp_on(k, y).for_each(&mut restrict),
    }
    let span = crate::curve::Span {
        lo: Time::from_cycles(u64::try_from(lo).unwrap_or(u64::MAX)),
        hi: Time::from_cycles(u64::try_from(hi.min(SAT)).unwrap_or(u64::MAX)),
    };
    debug_assert!(span.contains(t), "span {span:?} must contain t={t}");
    span
}

/// The window- and response-time-independent inputs one band member
/// contributes to [`bao`], precomputed once per `(level, core, band)` key:
/// rebuilding a [`BaoSegment`] walks these compact records instead of
/// re-filtering the task set and re-reading the CRPD/CPRO matrices on
/// every rebuild.
#[derive(Debug, Clone, Copy)]
pub struct BaoMember {
    /// The member's index into the response-time estimate slice.
    idx: usize,
    /// Per-job bus charge `MD_l + γ_{k,l}`.
    cost: u64,
    /// `γ_{k,l}`: the member's CRPD charge at the slot's priority level.
    gamma: u64,
    /// `|PCB_l ∩ ECB-union|`: the per-job CPRO overlap of Eq. (14).
    overlap: u64,
    /// `MD_l`.
    md: u64,
    /// `MD_l^r` (the residual demand of persistent jobs).
    md_r: u64,
    /// `|PCB_l|`.
    pcb_len: u64,
    /// `T_l`.
    period: Time,
}

/// Both priority bands' [`BaoMember`] records for one `(level, core)` key:
/// the `hep(k)` members first, then the `lp(k)` members from
/// [`BaoMembers::split`] on, each sub-slice in its band's iteration order
/// (the saturating accumulation order of [`bao`]). The bands are kept
/// together because the FP bus consumes both at the same window — one
/// fused record set (and one [`BaoSegment`]) serves every `BAO` query of
/// the key.
#[derive(Debug, Clone, Default)]
pub struct BaoMembers {
    /// `hep(k)` prefix followed by `lp(k)` suffix.
    members: Vec<BaoMember>,
    /// First index of the `lp(k)` suffix.
    split: usize,
}

impl BaoMembers {
    /// Number of members across both bands.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the remote core contributes no members at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Refills the records in place for a new `(context, level)` pair —
    /// [`bao_members_on`] without the allocation, for member storage
    /// recycled across analyses (see [`crate::AnalysisScratch`]).
    pub fn refill_on(&mut self, ctx: &AnalysisContext<'_>, k: TaskId, on_core: &[TaskId]) {
        self.members.clear();
        self.split = 0;
        for &l in on_core {
            self.members.push(member_record(ctx, k, l));
            if l.index() <= k.index() {
                self.split = self.members.len();
            }
        }
    }
}

/// One member's static record (see [`BaoMember`]), read off the
/// context's struct-of-arrays task columns (verbatim per-task scalars,
/// contiguous per field).
fn member_record(ctx: &AnalysisContext<'_>, k: TaskId, l: TaskId) -> BaoMember {
    let cols = ctx.columns();
    let lx = l.index();
    let gamma = ctx.gamma(k, l);
    let md = cols.md[lx];
    BaoMember {
        idx: lx,
        cost: md.saturating_add(gamma),
        gamma,
        overlap: ctx.cpro_overlap(l, k),
        md,
        md_r: cols.md_r[lx],
        pcb_len: cols.pcb_len[lx],
        period: Time::from_cycles(cols.period[lx]),
    }
}

/// Precomputes both bands' [`BaoMember`] records for priority level `k`
/// and remote core `y` — the one-off filtering walk every [`BaoSegment`]
/// rebuild of that key then avoids.
#[must_use]
pub fn bao_members(ctx: &AnalysisContext<'_>, k: TaskId, y: CoreId) -> BaoMembers {
    let tasks = ctx.tasks();
    let mut members: Vec<BaoMember> = tasks
        .hep_on(k, y)
        .map(|l| member_record(ctx, k, l))
        .collect();
    let split = members.len();
    members.extend(tasks.lp_on(k, y).map(|l| member_record(ctx, k, l)));
    BaoMembers { members, split }
}

/// As [`bao_members`], but walking a precomputed list of the remote
/// core's task ids (in id order) instead of filtering the whole task set
/// band by band — the engine's fast path. Task ids are priority order, so
/// the `hep(k)` prefix is exactly the ids `≤ k` and one ordered walk
/// yields both bands.
#[must_use]
pub fn bao_members_on(ctx: &AnalysisContext<'_>, k: TaskId, on_core: &[TaskId]) -> BaoMembers {
    let mut members = Vec::with_capacity(on_core.len());
    let mut split = 0;
    for &l in on_core {
        members.push(member_record(ctx, k, l));
        if l.index() <= k.index() {
            split = members.len();
        }
    }
    BaoMembers { members, split }
}

/// One band member's contribution to [`bao`] on a fixed `N`-interval of
/// the window axis: the full-job charge and the carry-out cap of Eq. (5)
/// are constant there, so only the [`CarryOut::Exact`] carry-out term
/// still depends on `t` — and its window-independent pieces (the two
/// subtrahends of Eq. (5)'s overlap and the combined cap) are
/// pre-saturated here, leaving a handful of operations per evaluation.
#[derive(Debug, Clone, Copy)]
struct BaoTerm {
    /// The `N` full jobs' charge (at the persistence mode's bound),
    /// including their CRPD.
    full_jobs: u64,
    /// The exact carry-out's combined cap `min(cost, cout_cap)` — the two
    /// `min`s of [`w_cout`]`.min(cout_cap)` folded into one. Also the
    /// member's [`CarryOut::Capped`] carry-out charge (the cap formulas
    /// never exceed `cost`).
    cap: u64,
    /// The member's response-time estimate the term was built from.
    r: Time,
    /// `cost · d_mem`, the first saturating subtrahend of Eq. (5)'s
    /// overlap.
    sub1: Time,
    /// `N · T_l`, the second saturating subtrahend.
    sub2: Time,
    /// The member's own `N`-interval `[lo, hi]` in cycles: the term stays
    /// exact for any window inside it (at the response time `r`), letting
    /// [`BaoSegment::refresh`] keep it across segment-level span exits.
    lo: u64,
    /// Upper end of the member's `N`-interval.
    hi: u64,
}

impl BaoMember {
    /// Derives the member's [`BaoTerm`] around window length `t` given its
    /// current response-time estimate `r_l` — the `N`-determined charges
    /// exactly as [`bao`] derives them, plus the `N`-interval they are
    /// valid on. The endpoints use the `u64` fast path of the exact
    /// `u128` saturation model (the same model as [`bao_span`]), falling
    /// back to the `u128` derivation only when `N·T` or `bound + c`
    /// overflows `u64` — the proptests pin the two derivations bitwise.
    fn term(&self, t: Time, r_l: Time, d_mem: Time, mode: PersistenceMode) -> BaoTerm {
        let n = n_jobs(t, r_l, self.cost, d_mem, self.period);
        // Saturating u64 multiply equals the u128 product clamped at SAT.
        let c = d_mem.cycles().saturating_mul(self.cost);
        let (lo, hi) = term_interval(n, self.period.cycles(), r_l.cycles(), c);
        let cout_cap = match mode {
            PersistenceMode::Oblivious => self.cost,
            PersistenceMode::Aware => {
                let md_hat = |jobs| demand::md_hat_parts(self.md, self.md_r, self.pcb_len, jobs);
                let d_md_hat = md_hat(n.saturating_add(1)).saturating_sub(md_hat(n));
                let d_cpro = cpro::cpro(self.overlap, n.saturating_add(1))
                    .saturating_sub(cpro::cpro(self.overlap, n));
                self.cost
                    .min(d_md_hat.saturating_add(d_cpro).saturating_add(self.gamma))
            }
        };
        let full_jobs = match mode {
            PersistenceMode::Oblivious => n.saturating_mul(self.cost),
            PersistenceMode::Aware => {
                let oblivious = n.saturating_mul(self.md);
                let persistent = demand::md_hat_parts(self.md, self.md_r, self.pcb_len, n)
                    .saturating_add(cpro::cpro(self.overlap, n));
                oblivious
                    .min(persistent)
                    .saturating_add(n.saturating_mul(self.gamma))
            }
        };
        BaoTerm {
            full_jobs,
            cap: self.cost.min(cout_cap),
            r: r_l,
            sub1: d_mem.saturating_mul(self.cost),
            sub2: self.period.saturating_mul(n),
            lo,
            hi,
        }
    }
}

/// [`bao`] — for one fixed `(level, core)`, *both* priority bands and
/// *both* carry-out modes — restricted to a window interval on which every
/// member's full-job count `N` (Eq. (6)) is constant.
///
/// [`BaoSegment::eval`] reproduces [`bao`]'s per-band values bit-for-bit
/// anywhere in [`BaoSegment::span`]: [`CarryOut::Capped`] in O(1) (the
/// whole sum is window-independent there, precomputed per band), and
/// [`CarryOut::Exact`] at a few arithmetic operations per member — no
/// band-membership filtering, no persistence-demand (`M̂D`), CPRO or CRPD
/// lookups; those are all `N`-determined and folded into the stored terms.
/// This is what makes the engine's curve cache pay: the span covers whole
/// job periods rather than single `d_mem` carry-out cells (the constancy
/// grain of a *scalar* [`CarryOut::Exact`] value, see [`bao_span`]), and
/// one segment serves both bands of the FP bus and both the Capped bracket
/// phase and the Exact refine phase of the WCRT solver. When the window
/// leaves the span or a member's response-time estimate moves,
/// [`BaoSegment::refresh`] re-derives only the affected members' terms.
#[derive(Debug, Clone)]
pub struct BaoSegment {
    /// Maximal window interval — containing the seed `t` — on which the
    /// stored terms are valid (the intersection of the members'
    /// `N`-intervals).
    pub span: crate::curve::Span,
    /// Per-member terms: `hep(k)` prefix then `lp(k)` suffix, each in its
    /// band's iteration order (the saturating accumulation order of
    /// [`bao`]).
    terms: Vec<BaoTerm>,
    /// First index of the `lp(k)` suffix in `terms`.
    split: usize,
    /// The window-independent [`CarryOut::Capped`] totals on the span,
    /// `(hep, lower)`.
    capped: (u64, u64),
}

impl Default for BaoSegment {
    fn default() -> Self {
        BaoSegment::new()
    }
}

impl BaoSegment {
    /// An empty segment covering no window (every lookup misses until the
    /// first [`BaoSegment::refresh`]).
    #[must_use]
    pub fn new() -> Self {
        BaoSegment {
            span: crate::curve::Span {
                lo: Time::from_cycles(1),
                hi: Time::ZERO,
            },
            terms: Vec::new(),
            split: 0,
            capped: (0, 0),
        }
    }

    /// Returns the segment to its freshly-constructed state — empty span,
    /// no terms — while keeping the term storage. Every subsequent lookup
    /// misses until the first [`BaoSegment::refresh`], which is exactly
    /// what a segment recycled onto a *different* task set needs: stale
    /// terms must never be served, but their allocation is still good.
    pub fn reset(&mut self) {
        self.span = crate::curve::Span {
            lo: Time::from_cycles(1),
            hi: Time::ZERO,
        };
        self.terms.clear();
        self.split = 0;
        self.capped = (0, 0);
    }

    /// Rebuilds every term in place around window length `t`: one walk
    /// over the precomputed `members`. The term storage is reused —
    /// steady-state rebuilds allocate nothing.
    pub fn rebuild(
        &mut self,
        members: &BaoMembers,
        t: Time,
        resp: &[Time],
        d_mem: Time,
        mode: PersistenceMode,
    ) {
        self.terms.clear();
        self.split = members.split;
        self.terms.extend(
            members
                .members
                .iter()
                .map(|m| m.term(t, resp[m.idx], d_mem, mode)),
        );
        self.commit(t);
    }

    /// Brings the segment to window length `t` and the current estimates
    /// `resp`, re-deriving only the terms that actually changed: a stored
    /// term is kept verbatim when its member's response time is unchanged
    /// and `t` still lies in the member's own `N`-interval. A typical span
    /// exit crosses one member's period boundary, so this costs one term
    /// derivation plus a cheap scan — not a full rebuild. Returns the
    /// number of terms kept verbatim (zero on the rebuild fallback), the
    /// engine's measure of re-derivations avoided.
    pub fn refresh(
        &mut self,
        members: &BaoMembers,
        t: Time,
        resp: &[Time],
        d_mem: Time,
        mode: PersistenceMode,
    ) -> usize {
        if self.terms.len() != members.members.len() || self.split != members.split {
            self.rebuild(members, t, resp, d_mem, mode);
            return 0;
        }
        let tc = t.cycles();
        let mut kept = 0usize;
        for (term, m) in self.terms.iter_mut().zip(&members.members) {
            let r_l = resp[m.idx];
            if r_l == term.r && term.lo <= tc && tc <= term.hi {
                kept += 1;
                continue;
            }
            *term = m.term(t, r_l, d_mem, mode);
        }
        self.commit(t);
        kept
    }

    /// Re-derives the aggregate state from the terms: the span (the
    /// intersection of the member `N`-intervals) and the per-band
    /// [`CarryOut::Capped`] totals, accumulated in [`bao`]'s exact
    /// saturating order.
    fn commit(&mut self, t: Time) {
        let mut lo = 0u64;
        let mut hi = u64::MAX;
        let mut capped = (0u64, 0u64);
        for (i, term) in self.terms.iter().enumerate() {
            lo = lo.max(term.lo);
            hi = hi.min(term.hi);
            let total = if i < self.split {
                &mut capped.0
            } else {
                &mut capped.1
            };
            *total = total
                .saturating_add(term.full_jobs)
                .saturating_add(term.cap);
        }
        self.span = crate::curve::Span {
            lo: Time::from_cycles(lo),
            hi: Time::from_cycles(hi),
        };
        self.capped = capped;
        debug_assert!(
            self.span.contains(t),
            "segment span {:?} must contain t={t}",
            self.span
        );
    }

    /// Evaluates the `(hep, lower)` bounds at window length `t ∈ span` —
    /// identical to [`bao`] per band with the arguments the segment was
    /// built from and `carry`.
    #[must_use]
    pub fn eval(&self, t: Time, d_mem: Time, carry: CarryOut) -> (u64, u64) {
        debug_assert!(self.span.contains(t), "eval outside span {:?}", self.span);
        if carry == CarryOut::Capped {
            return self.capped;
        }
        let exact_total = |terms: &[BaoTerm]| {
            let mut total = 0u64;
            for term in terms {
                // Eq. (5) with its subtrahends pre-saturated; the same
                // saturating chain as `w_cout`, then the carry-out cap.
                let overlap = t
                    .saturating_add(term.r)
                    .saturating_sub(term.sub1)
                    .saturating_sub(term.sub2);
                let cout = overlap.div_ceil(d_mem).min(term.cap);
                total = total.saturating_add(term.full_jobs).saturating_add(cout);
            }
            total
        };
        (
            exact_total(&self.terms[..self.split]),
            exact_total(&self.terms[self.split..]),
        )
    }
}

/// Builds the [`BaoSegment`] containing window length `t` from scratch
/// (members walk plus rebuild) — the one-shot convenience over
/// [`bao_members`] + [`BaoSegment::rebuild`].
#[must_use]
pub fn bao_segment(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
    mode: PersistenceMode,
) -> BaoSegment {
    let members = bao_members(ctx, k, y);
    let mut seg = BaoSegment::new();
    seg.rebuild(&members, t, resp, ctx.d_mem(), mode);
    seg
}

/// Eq. (3): the persistence-oblivious `BAO_k^y(t)` over `Γy ∩ hep(k)`.
#[must_use]
pub fn bao_oblivious(
    ctx: &AnalysisContext<'_>,
    k: TaskId,
    y: CoreId,
    t: Time,
    resp: &[Time],
) -> u64 {
    bao(
        ctx,
        k,
        y,
        t,
        resp,
        PersistenceMode::Oblivious,
        PriorityBand::HigherOrEqual,
        CarryOut::Exact,
    )
}

/// Lemma 2: the persistence-aware `BÂO_k^y(t)` over `Γy ∩ hep(k)`.
#[must_use]
pub fn bao_aware(ctx: &AnalysisContext<'_>, k: TaskId, y: CoreId, t: Time, resp: &[Time]) -> u64 {
    bao(
        ctx,
        k,
        y,
        t,
        resp,
        PersistenceMode::Aware,
        PriorityBand::HigherOrEqual,
        CarryOut::Exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet};
    use proptest::prelude::*;

    fn fig1() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        let tau1 = Task::builder("tau1")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(20))
            .deadline(Time::from_cycles(20))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        let tau2 = Task::builder("tau2")
            .processing_demand(Time::from_cycles(32))
            .memory_demand(8)
            .period(Time::from_cycles(200))
            .deadline(Time::from_cycles(200))
            .core(CoreId::new(0))
            .priority(Priority::new(2))
            .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
            .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
            .build()
            .unwrap();
        let tau3 = Task::builder("tau3")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(16))
            .deadline(Time::from_cycles(16))
            .core(CoreId::new(1))
            .priority(Priority::new(3))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
    }

    #[test]
    fn n_jobs_clamps_small_windows() {
        let d = Time::from_cycles(10);
        let p = Time::from_cycles(100);
        // t + R − cost·d_mem = 0 + 50 − 60 < 0 ⇒ 0 jobs.
        assert_eq!(n_jobs(Time::ZERO, Time::from_cycles(50), 6, d, p), 0);
        // 300 + 50 − 60 = 290 ⇒ 2 full periods.
        assert_eq!(
            n_jobs(Time::from_cycles(300), Time::from_cycles(50), 6, d, p),
            2
        );
    }

    #[test]
    fn w_cout_caps_at_per_job_cost() {
        let d = Time::from_cycles(10);
        let p = Time::from_cycles(100);
        let t = Time::from_cycles(300);
        let r = Time::from_cycles(50);
        let n = n_jobs(t, r, 6, d, p);
        assert_eq!(n, 2);
        // Overlap = 290 − 200 = 90 ⇒ ⌈90/10⌉ = 9, capped at cost 6.
        assert_eq!(w_cout(t, r, 6, d, p, n), 6);
        // Tiny leftover: t = 215 ⇒ overlap = 5 ⇒ 1 access.
        let t = Time::from_cycles(215);
        let n = n_jobs(t, r, 6, d, p);
        assert_eq!(n, 2);
        assert_eq!(w_cout(t, r, 6, d, p, n), 1);
        // No overlap at all.
        assert_eq!(w_cout(Time::ZERO, r, 6, d, p, 0), 0);
    }

    #[test]
    fn fig1_bao_tau3() {
        // The paper's example: during τ2's response time, BAO_3^y counts 4
        // full jobs of τ3 at MD_3 = 6 ⇒ 24 (Eq. (13)); with persistence the
        // same 4 jobs cost M̂D_3(4) = 9.
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let y = CoreId::new(1);
        // Choose window/R so that N = 4 and the carry-out term is zero:
        // t + R − 6·1 = 64 ⇒ N = ⌊64/16⌋ = 4, overlap 0.
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);
        assert_eq!(
            n_jobs(t, resp[t3.index()], 6, ctx.d_mem(), Time::from_cycles(16)),
            4
        );
        // The paper evaluates BAO at level 3 (τ3's own priority); from τ2's
        // level the hep-band on core y is empty.
        assert_eq!(bao_oblivious(&ctx, t2, y, t, &resp), 0);
        assert_eq!(bao_oblivious(&ctx, t3, y, t, &resp), 24);
        assert_eq!(bao_aware(&ctx, t3, y, t, &resp), 9);
    }

    #[test]
    fn lower_band_only_counts_lp_tasks() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let y = CoreId::new(1);
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);
        // τ3 is the only task on core y and has lower priority than τ2, so
        // the lower band equals the full bound for k = τ2 ...
        let low = bao(
            &ctx,
            t2,
            y,
            t,
            &resp,
            PersistenceMode::Oblivious,
            PriorityBand::Lower,
            CarryOut::Exact,
        );
        assert_eq!(low, 24);
        // ... and the hep-band is empty (τ3 ∉ hep(τ2)).
        assert_eq!(bao_oblivious(&ctx, t2, y, t, &resp), 0);
        // From the lowest priority's perspective, hep covers τ3.
        assert_eq!(bao_oblivious(&ctx, t3, y, t, &resp), 24);
    }

    proptest! {
        #[test]
        fn aware_never_exceeds_oblivious(
            t in 0u64..5_000,
            r in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            let t = Time::from_cycles(t);
            for k in tasks.ids() {
                for y in [CoreId::new(0), CoreId::new(1)] {
                    prop_assert!(bao_aware(&ctx, k, y, t, &resp)
                        <= bao_oblivious(&ctx, k, y, t, &resp));
                }
            }
        }

        #[test]
        fn monotone_in_window_and_response(
            a in 0u64..5_000,
            b in 0u64..5_000,
            ra in 0u64..2_000,
            rb in 0u64..2_000,
        ) {
            let (t_lo, t_hi) = (a.min(b), a.max(b));
            let (r_lo, r_hi) = (ra.min(rb), ra.max(rb));
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let k = tasks.lowest_priority_id();
            for y in [CoreId::new(0), CoreId::new(1)] {
                for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                    for carry in [CarryOut::Exact, CarryOut::Capped] {
                        let lo = bao(&ctx, k, y, Time::from_cycles(t_lo),
                            &[Time::from_cycles(r_lo); 3], mode,
                            PriorityBand::HigherOrEqual, carry);
                        let hi = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, carry);
                        prop_assert!(lo <= hi);
                        // Capped carry-out over-approximates the exact term.
                        let exact = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, CarryOut::Exact);
                        let capped = bao(&ctx, k, y, Time::from_cycles(t_hi),
                            &[Time::from_cycles(r_hi); 3], mode,
                            PriorityBand::HigherOrEqual, CarryOut::Capped);
                        prop_assert!(exact <= capped);
                    }
                }
            }
        }

        /// `bao_span` must be a true constancy interval of `bao` under the
        /// exact same arguments — the contract the engine's curve cache
        /// relies on for soundness.
        #[test]
        fn bao_span_is_a_constancy_interval(
            t in 0u64..5_000,
            ra in 0u64..2_000,
            rb in 0u64..2_000,
            rc in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = [ra, rb, rc].map(Time::from_cycles).to_vec();
            let t = Time::from_cycles(t);
            for k in tasks.ids() {
                for y in [CoreId::new(0), CoreId::new(1)] {
                    for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                        for band in [PriorityBand::HigherOrEqual, PriorityBand::Lower] {
                            for carry in [CarryOut::Exact, CarryOut::Capped] {
                                let span = bao_span(&ctx, k, y, t, &resp, mode, band, carry);
                                prop_assert!(span.contains(t));
                                let v = bao(&ctx, k, y, t, &resp, mode, band, carry);
                                // Constant at both endpoints and at probes
                                // straddling the seed.
                                let lo = span.lo.cycles();
                                let hi = span.hi.cycles().min(lo.saturating_add(100_000));
                                let probes = [lo, (lo + hi) / 2, hi, t.cycles()];
                                for p in probes {
                                    let w = Time::from_cycles(p);
                                    prop_assert_eq!(
                                        bao(&ctx, k, y, w, &resp, mode, band, carry),
                                        v,
                                        "{mode:?} {band:?} {carry:?} k={k:?} y={y:?} \
                                         t={t} probe={w} span={span:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }

        /// `bao_segment` must evaluate to exactly `bao` everywhere on its
        /// span — the engine's cache hits return `eval`, never `bao`.
        #[test]
        fn bao_segment_evaluates_bao_across_its_span(
            t in 0u64..5_000,
            ra in 0u64..2_000,
            rb in 0u64..2_000,
            rc in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = [ra, rb, rc].map(Time::from_cycles).to_vec();
            let t = Time::from_cycles(t);
            for k in tasks.ids() {
                for y in [CoreId::new(0), CoreId::new(1)] {
                    for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                        let seg = bao_segment(&ctx, k, y, t, &resp, mode);
                        prop_assert!(seg.span.contains(t));
                        let lo = seg.span.lo.cycles();
                        let hi = seg.span.hi.cycles().min(lo.saturating_add(100_000));
                        let probes = [lo, lo + (hi - lo) / 2, hi, t.cycles()];
                        for carry in [CarryOut::Exact, CarryOut::Capped] {
                            for p in probes {
                                let w = Time::from_cycles(p);
                                let (hep, lower) = seg.eval(w, ctx.d_mem(), carry);
                                let reference = |band| {
                                    bao(&ctx, k, y, w, &resp, mode, band, carry)
                                };
                                prop_assert_eq!(
                                    (hep, lower),
                                    (
                                        reference(PriorityBand::HigherOrEqual),
                                        reference(PriorityBand::Lower),
                                    ),
                                    "{mode:?} {carry:?} k={k:?} y={y:?} \
                                     t={t} probe={w} span={:?}", seg.span
                                );
                            }
                        }
                    }
                }
            }
        }

        /// `refresh` — keeping unchanged members' terms across a window
        /// move and a response-time move — must land on exactly the state
        /// a from-scratch rebuild produces.
        #[test]
        fn refresh_matches_full_rebuild(
            t in 0u64..5_000,
            t2 in 0u64..20_000,
            ra in 0u64..2_000,
            rb in 0u64..2_000,
            rc in 0u64..2_000,
            rb2 in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = [ra, rb, rc].map(Time::from_cycles).to_vec();
            // Second state: one estimate moves — the common outer-round event.
            let resp2 = [ra, rb2, rc].map(Time::from_cycles).to_vec();
            let (t, t2) = (Time::from_cycles(t), Time::from_cycles(t2));
            for k in tasks.ids() {
                for y in [CoreId::new(0), CoreId::new(1)] {
                    for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                        let members = bao_members(&ctx, k, y);
                        let mut seg = BaoSegment::new();
                        // Empty → falls back to a rebuild.
                        seg.refresh(&members, t, &resp, ctx.d_mem(), mode);
                        // Incremental: window and one response time move.
                        seg.refresh(&members, t2, &resp2, ctx.d_mem(), mode);
                        let fresh = bao_segment(&ctx, k, y, t2, &resp2, mode);
                        prop_assert_eq!(seg.span, fresh.span, "k={:?} y={:?} {:?}", k, y, mode);
                        for carry in [CarryOut::Exact, CarryOut::Capped] {
                            prop_assert_eq!(
                                seg.eval(t2, ctx.d_mem(), carry),
                                fresh.eval(t2, ctx.d_mem(), carry),
                                "k={:?} y={:?} {:?} {:?}", k, y, mode, carry
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn carry_out_bounded_by_cost(
            t in 0u64..100_000,
            r in 0u64..10_000,
            cost in 0u64..1_000,
            d in 1u64..100,
            p in 1u64..10_000,
        ) {
            let d = Time::from_cycles(d);
            let p = Time::from_cycles(p);
            let t = Time::from_cycles(t);
            let r = Time::from_cycles(r);
            let n = n_jobs(t, r, cost, d, p);
            prop_assert!(w_cout(t, r, cost, d, p, n) <= cost);
        }

        /// The u64 fast path of [`term_interval`] must be bitwise equal
        /// to the all-u128 derivation it replaced, for the full input
        /// range — including the overflow regions that force the
        /// fallback (huge n·p, huge bound + c) and the saturation
        /// plateau. `shape` remaps part of the full-range draws onto
        /// those boundaries so the overflow branches are actually
        /// exercised, not just reachable.
        #[test]
        fn term_interval_fast_path_matches_u128_model(
            n in any::<u64>(),
            p in any::<u64>(),
            r in any::<u64>(),
            c in any::<u64>(),
            shape in proptest::sample::select(vec![0u8, 1, 2, 3, 4]),
        ) {
            let (n, p, r, c) = match shape {
                // n·p overflows, bound + c saturates.
                1 => (u64::MAX - n % 4, u64::MAX - p % 4, r, u64::MAX - c % 4),
                // n·p at the overflow boundary from below.
                2 => (n >> 32, u64::MAX, r, c),
                // Small everything: the pure fast path.
                3 => (n % 8, (p % 8).max(1), r % 8, c % 8),
                // bound + c overflows with in-range n·p.
                4 => ((n % 4) + 1, u64::MAX >> 2, r, u64::MAX - c % 4),
                _ => (n, p, r, c),
            };
            let p = p.max(1); // periods are positive
            let (lo, hi) = term_interval(n, p, r, c);
            // The former derivation, verbatim: everything in u128 against
            // the shared SAT model, clamped back to u64 at the end.
            let (rr, pp, cc) = (u128::from(r), u128::from(p), u128::from(c));
            let exact_lo = if n == 0 {
                0
            } else {
                smallest_t_reaching(u128::from(n) * pp, rr, cc)
            };
            let exact_hi = largest_t_within((u128::from(n) + 1) * pp - 1, rr, cc).min(SAT);
            prop_assert_eq!(lo, u64::try_from(exact_lo).unwrap_or(u64::MAX));
            prop_assert_eq!(hi, u64::try_from(exact_hi).unwrap_or(u64::MAX));
        }
    }
}
