//! Lazily-materialised monotone step functions ("demand curves").
//!
//! Every bound in this crate — `BAS_i(t)`, `BAO_k^y(t)`, the same-core
//! preemption interference of Eq. (19) — is a monotone non-decreasing step
//! function of the window length `t`: its value only changes at discrete
//! events (job releases, carry-out `d_mem` boundaries). A [`StepCurve`]
//! caches such a function as the set of *constancy intervals* already
//! visited: evaluating at `t` either hits a stored segment (a binary
//! search) or computes the value once together with the maximal interval
//! `[lo, hi] ∋ t` on which it stays constant ([`Span`]) and stores it.
//! `BAO` needs a finer-grained variant — its exact carry-out steps on the
//! `d_mem` grid, far too fine for scalar segments to pay — so the engine
//! caches it as [`crate::bao::BaoSegment`]s instead: per-member terms on a
//! period-scale span, re-evaluated in a handful of operations per hit.
//!
//! The fixed-point solvers of [`crate::engine`] revisit overlapping
//! windows constantly — bracket and refine phases walk the same
//! neighbourhood, and outer rounds re-evaluate windows whose inputs did
//! not move — so the hit rate is high and each hit replaces a full
//! re-derivation of the bound with one lookup.

use cpa_model::Time;

/// A closed window interval `[lo, hi]` on which a demand bound is constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Smallest window length of the interval.
    pub lo: Time,
    /// Largest window length of the interval.
    pub hi: Time,
}

impl Span {
    /// The whole window axis `[0, Time::MAX]`.
    #[must_use]
    pub fn full() -> Self {
        Span {
            lo: Time::ZERO,
            hi: Time::from_cycles(u64::MAX),
        }
    }

    /// The degenerate interval `[t, t]`.
    #[must_use]
    pub fn point(t: Time) -> Self {
        Span { lo: t, hi: t }
    }

    /// Intersection of two intervals (may be empty: `lo > hi`).
    #[must_use]
    pub fn intersect(self, other: Span) -> Span {
        Span {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Whether `t` lies in the interval.
    #[must_use]
    pub fn contains(&self, t: Time) -> bool {
        self.lo <= t && t <= self.hi
    }
}

/// One stored constancy segment, in cycles.
#[derive(Debug, Clone, Copy)]
struct Seg<V> {
    lo: u64,
    hi: u64,
    value: V,
    /// Run generation the segment was materialised in (see
    /// [`StepCurve::carry_over`]).
    gen: u32,
}

/// A partially-materialised monotone step function: disjoint, sorted
/// constancy segments, filled in lazily as windows are visited.
///
/// Generic over the cached value so bounds sharing one event grid can be
/// stored together (the engine keeps the same-core interference and `BAS`
/// pair — both constant between the task's own higher-priority releases —
/// in a single `StepCurve<(u64, u64)>`: one lookup, one span, one insert).
#[derive(Debug, Clone)]
pub struct StepCurve<V = u64> {
    segs: Vec<Seg<V>>,
    /// Current run generation; segments with an older stamp were carried
    /// over from a previous run (see [`StepCurve::carry_over`]).
    gen: u32,
}

impl<V> Default for StepCurve<V> {
    fn default() -> Self {
        StepCurve::new()
    }
}

impl<V> StepCurve<V> {
    /// An empty curve (no segments materialised yet).
    #[must_use]
    pub const fn new() -> Self {
        StepCurve {
            segs: Vec::new(),
            gen: 0,
        }
    }

    /// Drops every materialised segment (cache invalidation).
    pub fn clear(&mut self) {
        self.segs.clear();
        self.gen = 0;
    }

    /// Keeps every materialised segment but advances the run generation,
    /// so [`StepCurve::lookup_tagged`] can distinguish hits on segments
    /// carried over from a previous run (work a cold run would have had
    /// to re-derive) from hits on segments materialised this run. Only
    /// sound when the cached function is certified unchanged.
    pub fn carry_over(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Number of materialised segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// Whether no segment has been materialised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

impl<V: Copy> StepCurve<V> {
    /// The cached value at window length `t`, if its segment has been
    /// materialised.
    #[must_use]
    pub fn lookup(&self, t: Time) -> Option<V> {
        self.lookup_tagged(t).map(|(v, _)| v)
    }

    /// As [`StepCurve::lookup`], additionally reporting whether the hit
    /// segment was carried over from a previous run (materialised before
    /// the last [`StepCurve::carry_over`]).
    #[must_use]
    pub fn lookup_tagged(&self, t: Time) -> Option<(V, bool)> {
        let t = t.cycles();
        let idx = self.segs.partition_point(|s| s.lo <= t);
        if idx == 0 {
            return None;
        }
        let s = &self.segs[idx - 1];
        (t <= s.hi).then_some((s.value, s.gen != self.gen))
    }

    /// As [`StepCurve::lookup_tagged`], but the first touch of a carried
    /// segment *promotes* it to the current generation: the flag is true
    /// exactly once per carried segment per run. This lets the caller
    /// account the promotion as the one derivation a cold run would have
    /// paid (and every revisit as the plain hit a cold run would also
    /// score), keeping hit/miss meters bitwise-equal between warm and
    /// cold runs.
    #[must_use]
    pub fn lookup_promote(&mut self, t: Time) -> Option<(V, bool)> {
        let t = t.cycles();
        let idx = self.segs.partition_point(|s| s.lo <= t);
        if idx == 0 {
            return None;
        }
        let s = &mut self.segs[idx - 1];
        if t > s.hi {
            return None;
        }
        let carried = s.gen != self.gen;
        s.gen = self.gen;
        Some((s.value, carried))
    }

    /// Stores `value` as constant on `span` (which must contain `t`, the
    /// window the value was computed at). The span is clipped against
    /// already-stored neighbours so segments stay disjoint and sorted.
    pub fn insert(&mut self, t: Time, span: Span, value: V) {
        debug_assert!(span.contains(t), "constancy span must contain its seed");
        let t = t.cycles();
        let mut lo = span.lo.cycles();
        let mut hi = span.hi.cycles();
        let idx = self.segs.partition_point(|s| s.lo <= t);
        if idx > 0 {
            lo = lo.max(self.segs[idx - 1].hi.saturating_add(1));
        }
        if idx < self.segs.len() {
            hi = hi.min(self.segs[idx].lo.saturating_sub(1));
        }
        if lo > hi {
            return;
        }
        self.segs.insert(
            idx,
            Seg {
                lo,
                hi,
                value,
                gen: self.gen,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(c: u64) -> Time {
        Time::from_cycles(c)
    }

    #[test]
    fn lookup_hits_only_materialised_segments() {
        let mut c = StepCurve::new();
        assert!(c.is_empty());
        assert_eq!(c.lookup(t(5)), None);
        c.insert(t(5), Span { lo: t(3), hi: t(9) }, 42);
        assert_eq!(c.lookup(t(3)), Some(42));
        assert_eq!(c.lookup(t(5)), Some(42));
        assert_eq!(c.lookup(t(9)), Some(42));
        assert_eq!(c.lookup(t(2)), None);
        assert_eq!(c.lookup(t(10)), None);
        assert_eq!(c.segments(), 1);
    }

    #[test]
    fn insert_clips_against_neighbours() {
        let mut c = StepCurve::new();
        c.insert(t(5), Span { lo: t(0), hi: t(9) }, 1);
        c.insert(
            t(20),
            Span {
                lo: t(15),
                hi: t(30),
            },
            3,
        );
        // A span overlapping both neighbours is clipped to the gap.
        c.insert(
            t(12),
            Span {
                lo: t(4),
                hi: t(40),
            },
            2,
        );
        assert_eq!(c.lookup(t(9)), Some(1));
        assert_eq!(c.lookup(t(10)), Some(2));
        assert_eq!(c.lookup(t(14)), Some(2));
        assert_eq!(c.lookup(t(15)), Some(3));
        assert_eq!(c.segments(), 3);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = StepCurve::new();
        c.insert(t(0), Span::point(t(0)), 7);
        assert_eq!(c.lookup(t(0)), Some(7));
        c.clear();
        assert_eq!(c.lookup(t(0)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn carry_over_tags_previous_run_segments() {
        let mut c = StepCurve::new();
        c.insert(t(5), Span { lo: t(3), hi: t(9) }, 1);
        assert_eq!(c.lookup_tagged(t(5)), Some((1, false)));
        c.carry_over();
        // The carried segment still hits, now tagged as previous-run.
        assert_eq!(c.lookup_tagged(t(5)), Some((1, true)));
        assert_eq!(c.lookup(t(5)), Some(1));
        // Fresh inserts in the new run are untagged.
        c.insert(
            t(20),
            Span {
                lo: t(15),
                hi: t(30),
            },
            2,
        );
        assert_eq!(c.lookup_tagged(t(20)), Some((2, false)));
        c.clear();
        assert_eq!(c.lookup_tagged(t(5)), None);
    }

    #[test]
    fn span_algebra() {
        let a = Span {
            lo: t(2),
            hi: t(10),
        };
        let b = Span {
            lo: t(5),
            hi: t(20),
        };
        let i = a.intersect(b);
        assert_eq!(
            i,
            Span {
                lo: t(5),
                hi: t(10)
            }
        );
        assert!(i.contains(t(5)) && i.contains(t(10)) && !i.contains(t(11)));
        assert!(Span::full().contains(t(u64::MAX)));
        assert_eq!(Span::point(t(4)), Span { lo: t(4), hi: t(4) });
    }
}
