//! Multi-job memory access demand under cache persistence (Eq. (10)).

use cpa_model::Task;

/// `M̂D_i(n)`: upper bound on the total bus accesses of `n` successive jobs
/// of a task executing in isolation (Eq. (10)):
///
/// ```text
/// M̂D_i(n) = min( n · MD_i ;  n · MD_i^r + |PCB_i| )
/// ```
///
/// The first branch charges every job its isolation demand; the second
/// charges every job only the residual demand plus a one-off load of all
/// persistent blocks. Taking the minimum keeps the bound sound even for
/// parameter sets (such as the published Mälardalen table, where the
/// extraction tool reports demands in cycles) where
/// `MD_i > MD_i^r + |PCB_i|` does not hold per job.
///
/// # Example
///
/// Fig. 1's `τ1` (`MD = 6`, `MD^r = 1`, `|PCB| = 5`): three jobs in
/// isolation load `6 + 1 + 1 = 8` blocks, not `18`.
///
/// ```
/// use cpa_analysis::demand::md_hat_parts;
/// assert_eq!(md_hat_parts(6, 1, 5, 3), 8);
/// assert_eq!(md_hat_parts(6, 1, 5, 1), 6);
/// ```
#[must_use]
pub fn md_hat_parts(md: u64, md_r: u64, pcb_len: u64, jobs: u64) -> u64 {
    let full = jobs.saturating_mul(md);
    let persistent = jobs.saturating_mul(md_r).saturating_add(pcb_len);
    full.min(persistent)
}

/// [`md_hat_parts`] reading the parameters off a [`Task`].
#[must_use]
pub fn md_hat(task: &Task, jobs: u64) -> u64 {
    md_hat_parts(
        task.memory_demand(),
        task.residual_memory_demand(),
        task.pcb().len() as u64,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Priority, Task, Time};
    use proptest::prelude::*;

    #[test]
    fn zero_jobs_demand_nothing() {
        assert_eq!(md_hat_parts(10, 2, 4, 0), 0);
    }

    #[test]
    fn single_job_pays_at_most_md() {
        // min(MD, MD^r + |PCB|): whichever branch is smaller.
        assert_eq!(md_hat_parts(10, 2, 4, 1), 6);
        assert_eq!(md_hat_parts(5, 2, 4, 1), 5);
    }

    #[test]
    fn no_persistence_benefit_when_md_r_equals_md() {
        for n in 0..10 {
            assert_eq!(md_hat_parts(7, 7, 0, n), 7 * n);
            // Even with PCBs, md_r = md means the first branch wins.
            assert_eq!(md_hat_parts(7, 7, 3, n), 7 * n);
        }
    }

    #[test]
    fn fig1_tau3_four_jobs() {
        // MD=6, MD^r=1, |PCB|=5: M̂D(4) = min(24, 9) = 9 (the paper's
        // "MD_3 + 3·MD_3^r = 9").
        assert_eq!(md_hat_parts(6, 1, 5, 4), 9);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        assert_eq!(md_hat_parts(u64::MAX, 1, 1, 2), 3);
        assert_eq!(md_hat_parts(u64::MAX, u64::MAX, u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn task_wrapper_reads_fields() {
        let t = Task::builder("t")
            .processing_demand(Time::from_cycles(1))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::contiguous(16, 0, 6))
            .pcb(CacheBlockSet::contiguous(16, 0, 5))
            .build()
            .unwrap();
        assert_eq!(md_hat(&t, 3), 8);
    }

    proptest! {
        #[test]
        fn never_exceeds_oblivious_bound(
            md in 0u64..10_000,
            md_r_frac in 0u64..10_000,
            pcb in 0u64..512,
            n in 0u64..1_000,
        ) {
            let md_r = md_r_frac.min(md);
            prop_assert!(md_hat_parts(md, md_r, pcb, n) <= n.saturating_mul(md));
        }

        #[test]
        fn monotone_in_jobs(
            md in 0u64..10_000,
            md_r_frac in 0u64..10_000,
            pcb in 0u64..512,
            n in 0u64..1_000,
        ) {
            let md_r = md_r_frac.min(md);
            prop_assert!(md_hat_parts(md, md_r, pcb, n) <= md_hat_parts(md, md_r, pcb, n + 1));
        }

        #[test]
        fn subadditive_across_window_splits(
            md in 0u64..10_000,
            md_r_frac in 0u64..10_000,
            pcb in 0u64..512,
            a in 0u64..500,
            b in 0u64..500,
        ) {
            // Splitting a run of jobs into two runs can only add (re)loads:
            // M̂D(a + b) ≤ M̂D(a) + M̂D(b).
            let md_r = md_r_frac.min(md);
            prop_assert!(
                md_hat_parts(md, md_r, pcb, a + b)
                    <= md_hat_parts(md, md_r, pcb, a) + md_hat_parts(md, md_r, pcb, b)
            );
        }
    }
}
