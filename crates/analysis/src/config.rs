//! Analysis configuration: bus arbitration policy and persistence mode.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Memory bus arbitration policy under analysis (§III/§IV of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusPolicy {
    /// Fixed-priority bus: bus accesses inherit the priority of the issuing
    /// task (Eq. (7)). Work-conserving.
    FixedPriority,
    /// Round-robin bus with `slots` consecutive memory access slots per core
    /// per round (the paper's `s`, default 2) (Eq. (8)). Work-conserving.
    RoundRobin {
        /// Memory access slots per core per round (`s ≥ 1`).
        slots: u64,
    },
    /// TDMA bus with `slots` slots per core in a cycle of length
    /// `m · slots` (Eq. (9)). Non-work-conserving.
    Tdma {
        /// Memory access slots per core per TDMA cycle (`s ≥ 1`).
        slots: u64,
    },
    /// Idealised contention-free bus: every access costs exactly `d_mem`
    /// and suffers no cross-core interference. Combined with the bus
    /// utilization test in [`sched`](crate::sched), this is the "perfect
    /// bus" upper-bound line of the paper's Fig. 2.
    Perfect,
}

impl BusPolicy {
    /// Short machine-friendly label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BusPolicy::FixedPriority => "fp",
            BusPolicy::RoundRobin { .. } => "rr",
            BusPolicy::Tdma { .. } => "tdma",
            BusPolicy::Perfect => "perfect",
        }
    }

    /// Parses a [`BusPolicy::label`] back into a policy, instantiating the
    /// slotted policies with `slots`. The inverse of `label` for every
    /// policy (labels deliberately drop the slot count); `None` for
    /// unknown labels.
    #[must_use]
    pub fn parse(label: &str, slots: u64) -> Option<BusPolicy> {
        match label {
            "fp" => Some(BusPolicy::FixedPriority),
            "rr" => Some(BusPolicy::RoundRobin { slots }),
            "tdma" => Some(BusPolicy::Tdma { slots }),
            "perfect" => Some(BusPolicy::Perfect),
            _ => None,
        }
    }

    /// The three arbitration policies the paper evaluates (Fig. 2/3), in
    /// its canonical FP / RR / TDMA order, with the given slot count for
    /// the slotted policies.
    #[must_use]
    pub fn paper_buses(slots: u64) -> [BusPolicy; 3] {
        [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots },
            BusPolicy::Tdma { slots },
        ]
    }
}

impl fmt::Display for BusPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusPolicy::FixedPriority => write!(f, "FP"),
            BusPolicy::RoundRobin { slots } => write!(f, "RR(s={slots})"),
            BusPolicy::Tdma { slots } => write!(f, "TDMA(s={slots})"),
            BusPolicy::Perfect => write!(f, "perfect"),
        }
    }
}

/// Whether the analysis exploits cache persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersistenceMode {
    /// The baseline of Davis et al. (Eq. (1), (3)): every job of every task
    /// is charged its full isolation demand `MD`.
    Oblivious,
    /// The paper's contribution (Lemmas 1 and 2): successive jobs are
    /// charged `M̂D(n) + ρ̂(n)` when that is smaller.
    Aware,
}

impl PersistenceMode {
    /// Short machine-friendly label used in experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PersistenceMode::Oblivious => "oblivious",
            PersistenceMode::Aware => "aware",
        }
    }
}

impl fmt::Display for PersistenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of one analysis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// The bus arbitration policy.
    pub bus: BusPolicy,
    /// Whether cache persistence is exploited.
    pub persistence: PersistenceMode,
    /// Safety cap on inner fixed-point iterations per task.
    pub max_inner_iterations: u32,
    /// Safety cap on outer iterations over the whole task set.
    pub max_outer_iterations: u32,
}

impl AnalysisConfig {
    /// Creates a configuration with default iteration caps.
    #[must_use]
    pub fn new(bus: BusPolicy, persistence: PersistenceMode) -> Self {
        AnalysisConfig {
            bus,
            persistence,
            max_inner_iterations: 100_000,
            max_outer_iterations: 1_000,
        }
    }

    /// All six policy × persistence combinations the paper evaluates, for
    /// the given RR/TDMA slot count, in the order FP / RR / TDMA ×
    /// oblivious-first.
    #[must_use]
    pub fn paper_matrix(slots: u64) -> Vec<AnalysisConfig> {
        let buses = BusPolicy::paper_buses(slots);
        let modes = [PersistenceMode::Oblivious, PersistenceMode::Aware];
        buses
            .iter()
            .flat_map(|&bus| {
                modes
                    .iter()
                    .map(move |&persistence| AnalysisConfig::new(bus, persistence))
            })
            .collect()
    }
}

impl fmt::Display for AnalysisConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.bus, self.persistence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_display() {
        assert_eq!(BusPolicy::FixedPriority.label(), "fp");
        assert_eq!(BusPolicy::RoundRobin { slots: 2 }.label(), "rr");
        assert_eq!(BusPolicy::Tdma { slots: 1 }.to_string(), "TDMA(s=1)");
        assert_eq!(BusPolicy::Perfect.to_string(), "perfect");
        assert_eq!(PersistenceMode::Aware.to_string(), "aware");
        let cfg = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious);
        assert_eq!(cfg.to_string(), "FP/oblivious");
    }

    #[test]
    fn parse_round_trips_labels() {
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 3 },
            BusPolicy::Tdma { slots: 3 },
            BusPolicy::Perfect,
        ] {
            assert_eq!(BusPolicy::parse(bus.label(), 3), Some(bus));
        }
        assert_eq!(BusPolicy::parse("bogus", 2), None);
        assert_eq!(
            BusPolicy::paper_buses(2).map(|b| b.label()),
            ["fp", "rr", "tdma"]
        );
    }

    #[test]
    fn paper_matrix_covers_all_six() {
        let m = AnalysisConfig::paper_matrix(2);
        assert_eq!(m.len(), 6);
        assert!(m
            .iter()
            .any(|c| c.bus == BusPolicy::Tdma { slots: 2 }
                && c.persistence == PersistenceMode::Aware));
        // No duplicates.
        for (a, i) in m.iter().zip(0..) {
            for b in &m[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
