//! The unified analysis engine: memoized demand curves plus a
//! dependency-driven outer worklist.
//!
//! [`AnalysisEngine`] computes exactly the fixed point of Eq. (19) that
//! [`crate::wcrt::analyze_reference`] computes — the `engine_equivalence`
//! differential test pins the two byte-identical across every
//! [`crate::BusPolicy`] × [`crate::PersistenceMode`] combination — but
//! avoids the two dominant sources of redundant work in the reference
//! path:
//!
//! 1. **Memoized demand curves.** Every bound the recurrence evaluates
//!    (`BAS`, `BAO`, the same-core preemption interference) is a monotone
//!    step function of the window length, constant between discrete events
//!    (job releases, carry-out `d_mem` cells). The engine materialises
//!    these curves lazily. The same-core pair — interference and `BAS`,
//!    which share one release grid — is cached as scalar constancy
//!    segments in a [`crate::curve::StepCurve`] over
//!    [`crate::bas::releases_span`]. `BAO` steps on the much finer `d_mem`
//!    grid, so it is cached as [`crate::bao::BaoSegment`]s instead — one
//!    fused segment per `(level, core)` serving both priority bands and
//!    both carry-out modes: per-member terms valid on a whole period-scale
//!    `N`-interval, re-evaluated in a few operations per hit (no band
//!    filtering, no persistence/CPRO/CRPD re-derivation). `BAO` curves
//!    consume remote response-time estimates, so they carry a per-core
//!    version stamp; when the stamp moves or the window leaves the span,
//!    [`crate::bao::BaoSegment::refresh`] re-derives just the members
//!    whose inputs changed. Same-core curves never read estimates and
//!    live for the whole run.
//! 2. **Dependency-driven outer loop.** The reference outer loop re-solves
//!    every task every sweep. The engine keeps a dirty set seeded with all
//!    tasks and re-enqueues a task only when an input of its recurrence
//!    changed: `τj`'s bound reads `resp[i]` only through `BAO` over remote
//!    cores, so a change to `resp[i]` dirties exactly the tasks on *other*
//!    cores — and under arbiters that never consume remote response times
//!    (TDMA, perfect; see
//!    [`crate::arbiter::BusArbiter::consumes_remote_response_times`])
//!    nothing at all. Skipped tasks are provably no-ops: their inputs are
//!    unchanged, so the reference sweep would return the same bound.
//!
//! All of the engine's working storage lives in an [`AnalysisScratch`]
//! that survives across runs: a sweep worker allocates one scratch and
//! pays for its vectors once, then every further [`crate::analyze_with`]
//! call merely *resets* them (curve caches emptied, buffers refilled in
//! place). [`crate::analyze`] is the one-shot form with a fresh scratch.
//!
//! Cache effectiveness is observable through the always-on counters
//! `engine.curve_hit` / `engine.curve_miss` / `engine.tasks_solved` /
//! `engine.tasks_skipped` / `engine.scratch_reuses`, the per-round
//! `engine.worklist` event and the `engine.worklist_depth` histogram
//! (`cpa-trace analyze` reports all of them).

use core::fmt;

use cpa_model::{CoreId, TaskId, TaskSetFingerprint, Time};

use crate::arbiter::{arbiter_for, BaoSource, BusArbiter};
use crate::bao::{BaoMembers, BaoSegment, CarryOut, PriorityBand};
use crate::crpd::CrpdApproach;
use crate::curve::StepCurve;
use crate::wcrt::{self, AnalysisResult, ParentSolution};
use crate::{bas, AnalysisConfig, AnalysisContext, PersistenceMode};

/// Stamp that can never equal a live per-core version counter (versions
/// start at 0 and bump at most once per estimate change), so a carried
/// [`BaoSlot`] always misses on first touch and goes through
/// [`BaoSegment::refresh`] against the current run's estimates.
const CARRIED_STAMP: u64 = u64::MAX;

/// One memoized `BAO` slot for a fixed `(level, core)` key: the
/// precomputed member statics of both priority bands plus the most
/// recently built [`BaoSegment`]. When the window leaves the segment's
/// span or a response time on the remote core moves (tracked by the
/// stamped core version), [`BaoSegment::refresh`] re-derives only the
/// members actually affected — a full rebuild happens once, on first
/// touch.
#[derive(Debug, Clone, Default)]
struct BaoSlot {
    /// Window- and response-independent member records, filled on first
    /// touch and kept for the whole run. Context-dependent, hence
    /// refilled (in place) on the first touch of every run.
    members: BaoMembers,
    /// Whether `members` holds the current run's records.
    filled: bool,
    /// The most recently built segment for this key.
    seg: BaoSegment,
    /// Core version [`BaoSlot::seg`] was last refreshed against.
    stamp: u64,
    /// Whether the slot was carried over from a previous run by the warm
    /// retention of [`AnalysisScratch::reset`]; cleared on the slot's
    /// first refresh, whose kept-term count feeds
    /// `engine.inner_iters_saved`.
    carried: bool,
}

impl BaoSlot {
    /// Prepares the slot for a run on a (potentially) different task set:
    /// members marked stale, segment emptied — storage kept. A reset
    /// slot can never serve stale data: the emptied segment span contains
    /// no window, so the first lookup always misses and refills.
    fn reset(&mut self) {
        self.filled = false;
        self.seg.reset();
        self.stamp = 0;
        self.carried = false;
    }

    /// Keeps the slot's members (and, when the persistence mode is
    /// unchanged, its segment terms) across a run boundary. Only sound
    /// when the caller certified — via [`cpa_model::TaskSetDelta`] — that
    /// a fresh fill against the new context would produce identical
    /// bytes. The [`CARRIED_STAMP`] sentinel forces the first lookup to
    /// miss, so the segment is always refreshed against the new run's
    /// estimates before it serves a value.
    fn carry_over(&mut self, mode_stable: bool) {
        if mode_stable {
            self.stamp = CARRIED_STAMP;
            self.carried = true;
        } else {
            // Terms are mode-dependent; members are not.
            self.seg.reset();
            self.stamp = 0;
            self.carried = false;
        }
    }
}

/// [`BaoSource`] backed by the engine's segment cache; falls back to one
/// (incremental) [`BaoSegment::refresh`] on a miss.
struct CachedBao<'e, 'ctx, 'a> {
    ctx: &'ctx AnalysisContext<'a>,
    resp: &'e [Time],
    core_version: &'e [u64],
    slots: &'e mut [BaoSlot],
    /// Per-core task ids in id order (the fast path of
    /// [`crate::bao::bao_members_on`]).
    on_core: &'e [Vec<TaskId>],
    hits: &'e mut u64,
    misses: &'e mut u64,
    /// Term re-derivations avoided thanks to warm-carried segments
    /// (feeds `engine.inner_iters_saved`).
    saved: &'e mut u64,
    mode: PersistenceMode,
    cores: usize,
}

impl CachedBao<'_, '_, '_> {
    /// The `(hep, lower)` pair from the `(level, core)` slot. Neither the
    /// priority band nor the carry-out mode is part of the key: one
    /// segment's terms serve both bands and both modes (see
    /// [`BaoSegment`]), so the FP bus's two band queries and the Exact
    /// refine phase all hit the segments the Capped bracket phase filled.
    fn lookup(&mut self, level: TaskId, core: CoreId, t: Time, carry: CarryOut) -> (u64, u64) {
        let idx = level.index() * self.cores + core.index();
        let version = self.core_version[core.index()];
        let ctx = self.ctx;
        let d_mem = ctx.d_mem();
        let slot = &mut self.slots[idx];
        if slot.stamp == version && slot.seg.span.contains(t) {
            *self.hits += 1;
            return slot.seg.eval(t, d_mem, carry);
        }
        *self.misses += 1;
        if !slot.filled {
            slot.members
                .refill_on(ctx, level, &self.on_core[core.index()]);
            slot.filled = true;
        }
        let kept = slot
            .seg
            .refresh(&slot.members, t, self.resp, d_mem, self.mode);
        if slot.carried {
            // First refresh of a warm-carried slot: every term kept
            // verbatim is a re-derivation a cold run would have paid.
            *self.saved += kept as u64;
            slot.carried = false;
        }
        slot.stamp = version;
        slot.seg.eval(t, d_mem, carry)
    }
}

impl BaoSource for CachedBao<'_, '_, '_> {
    fn bao(
        &mut self,
        level: TaskId,
        core: CoreId,
        t: Time,
        band: PriorityBand,
        carry: CarryOut,
    ) -> u64 {
        let pair = self.lookup(level, core, t, carry);
        match band {
            PriorityBand::HigherOrEqual => pair.0,
            PriorityBand::Lower => pair.1,
        }
    }

    fn bao_pair(&mut self, level: TaskId, core: CoreId, t: Time, carry: CarryOut) -> (u64, u64) {
        self.lookup(level, core, t, carry)
    }
}

/// Reusable working storage for [`AnalysisEngine`] runs: response-time
/// estimates, curve caches, worklist state, per-core index structures.
///
/// Allocate one per worker ([`AnalysisScratch::new`]) and pass it to
/// every [`crate::analyze_with`] call: each run resets the buffers in
/// place — curve caches emptied, index lists refilled — so steady-state
/// analysis performs no per-run heap allocation for its working state
/// (the returned [`AnalysisResult`] still owns its two output vectors).
/// Buffers only ever grow, to the largest `(tasks × cores)` seen.
///
/// A scratch carries no semantic state between runs: results are
/// byte-identical to a fresh scratch (the `engine_equivalence` suite and
/// the scratch-reuse test below pin this), so sharing one scratch across
/// heterogeneous task sets and configurations is always safe — just not
/// across threads (`&mut` per run).
///
/// # Warm retention
///
/// Consecutive runs on *related* task sets (the same set under another
/// configuration, or a neighbour differing in one task) can skip
/// re-deriving cache entries whose inputs provably did not change. Each
/// reset fingerprints the task set ([`TaskSetFingerprint`]) and compares
/// it against the previous run's; the resulting
/// [`cpa_model::TaskSetDelta`] certifies an unchanged prefix of tasks
/// and a set of stable cores, and the reset then *carries over* (instead
/// of clearing) exactly the certified entries:
///
/// * the same-core curve of task `i` when `i` lies in the unchanged
///   prefix — its inputs (the task's own columns, its same-core
///   higher-priority tasks and their CRPD/CPRO rows) all have indices
///   `≤ i`, and the curve caches both persistence modes, so it survives
///   configuration changes too;
/// * the `BAO` slot `(level, core)` when `level` lies in the prefix and
///   `core` is stable — member lists and member-derived table rows are
///   then provably identical. Members are mode-independent and always
///   kept; segment terms are kept only when the persistence mode also
///   matched, and are re-validated against the new run's estimates by
///   [`BaoSegment::refresh`] before they serve a value.
///
/// Retention never alters the fixed-point iterate chain — a carried
/// entry holds exactly the bytes a cold run would re-derive — so every
/// output of [`AnalysisResult`], including iteration counts, stays
/// bitwise identical (the warm-equivalence proptests pin this). The
/// d_mem latency, core count and CRPD approach are part of the retention
/// key; any mismatch disables carry-over entirely. Call
/// [`AnalysisScratch::forget_warm`] to sever the chain explicitly when
/// determinism of the *warm counters* across work schedules matters
/// (e.g. between independent sweep items).
///
/// Observability: `engine.warm_starts` (resets that carried anything),
/// `engine.segments_reused` (curves and slots carried), and
/// `engine.inner_iters_saved` (carried same-core spans promoted on first
/// touch plus verbatim term keeps on a carried slot's first refresh).
/// Hit/miss meters (`engine.curve_hit` et al.) stay bitwise-equal
/// between warm and cold runs: a carried entry's first touch is
/// accounted as the miss the cold run would have paid, with the saving
/// booked separately. The three warm meters themselves depend on the
/// chain history (which solve preceded this one on the same scratch), so
/// they are classified as scheduling meters and excluded from
/// deterministic telemetry exports.
#[derive(Debug, Default)]
pub struct AnalysisScratch {
    /// Current response-time estimates, updated in task-id order within a
    /// round (Gauss–Seidel, exactly like the reference sweep).
    resp: Vec<Time>,
    /// The initial estimates `R_i = PD_i + MD_i · d_mem`, the floor every
    /// inner solve restarts from.
    init: Vec<Time>,
    /// Per-core version counters; bumped whenever a response time on the
    /// core changes, lazily invalidating that core's `BAO` curves.
    core_version: Vec<u64>,
    /// Per-task same-core curves caching the
    /// `(interference cycles, BAS_i^oblivious(t), BAS_i^aware(t))`
    /// triple — all constant between the task's own higher-priority
    /// releases, so they share one segment grid. Never invalidated
    /// within a run (independent of the response-time estimates), and
    /// valid across *configurations* of the same task set: both
    /// persistence modes are cached, and the values are d_mem- and
    /// bus-independent access counts.
    same_core: Vec<StepCurve<(u64, u64, u64)>>,
    /// `BAO` curves, flat-indexed by `(level, core)` — one segment serves
    /// both priority bands and both carry-out modes.
    bao_slots: Vec<BaoSlot>,
    /// Window-independent `+1` blocking access per task (policy fact ×
    /// existence of a same-core lower-priority task).
    blocking: Vec<u64>,
    /// Task ids per core, in id (= priority) order.
    on_core: Vec<Vec<TaskId>>,
    /// `τi`'s position in its core's `on_core` list — the id list of its
    /// same-core higher-priority tasks is the prefix of that length.
    hp_prefix: Vec<usize>,
    /// Outer-worklist dirty flags.
    dirty: Vec<bool>,
    /// Per-task partial re-solve certificates (set by
    /// [`AnalysisEngine::offer_parent`], empty otherwise): a certified
    /// task's round-1 solve is replaced by the parent's converged bound.
    certified: Vec<bool>,
    /// Runs this scratch has served (drives `engine.scratch_reuses`).
    uses: u64,
    /// Fingerprint of the task set of the previous run, the comparison
    /// base for warm retention. `None` after [`AnalysisScratch::new`] or
    /// [`AnalysisScratch::forget_warm`].
    fingerprint: Option<TaskSetFingerprint>,
    /// Analysis environment of the previous run; retention requires the
    /// d_mem/cores/CRPD part to match exactly (the mode only gates
    /// segment-term carry-over).
    warm_env: Option<WarmEnv>,
}

/// The non-task-set inputs the engine's caches consume, compared across
/// runs to decide whether warm retention is sound at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WarmEnv {
    d_mem: Time,
    cores: usize,
    crpd: CrpdApproach,
    mode: PersistenceMode,
}

impl AnalysisScratch {
    /// An empty scratch; buffers are sized on first use.
    #[must_use]
    pub fn new() -> Self {
        AnalysisScratch::default()
    }

    /// Severs the warm-retention chain: the next run starts cold, as if
    /// on a fresh scratch (buffers stay allocated). Call this between
    /// *independent* work items when warm counters must not depend on
    /// which items a worker happened to process back to back — results
    /// never depend on it.
    pub fn forget_warm(&mut self) {
        self.fingerprint = None;
        self.warm_env = None;
    }

    /// Resets every buffer for a run on `ctx` under an arbiter that does
    /// (or does not) charge blocking — clears and refills in place,
    /// growing only beyond the largest problem seen so far. Cache entries
    /// certified unchanged against the previous run are carried over
    /// instead of cleared (see the type docs).
    fn reset(&mut self, ctx: &AnalysisContext<'_>, charges_blocking: bool, mode: PersistenceMode) {
        if self.uses > 0 {
            cpa_obs::counter("engine.scratch_reuses").incr();
        }
        self.uses += 1;

        let tasks = ctx.tasks();
        let n = tasks.len();
        let cores = ctx.platform().cores();

        // Warm retention: certify what may be carried over from the
        // previous run. Everything value-bearing below is re-derived
        // from `ctx` regardless; only *cache* entries are retained, and
        // only under a bitwise-equality certificate.
        let fingerprint = TaskSetFingerprint::of(tasks);
        let env = WarmEnv {
            d_mem: ctx.d_mem(),
            cores,
            crpd: ctx.crpd_approach(),
            mode,
        };
        let (delta, mode_stable) = match (&self.fingerprint, &self.warm_env) {
            (Some(prev), Some(prev_env))
                if prev_env.d_mem == env.d_mem
                    && prev_env.cores == env.cores
                    && prev_env.crpd == env.crpd =>
            {
                (Some(prev.delta(&fingerprint)), prev_env.mode == env.mode)
            }
            _ => (None, false),
        };
        let unchanged = delta.as_ref().map_or(0, |d| d.unchanged_prefix().min(n));
        let mut reused = 0u64;

        wcrt::fill_initial_estimates(ctx, &mut self.resp);
        self.init.clear();
        self.init.extend_from_slice(&self.resp);

        self.core_version.clear();
        self.core_version.resize(cores, 0);

        if self.same_core.len() < n {
            self.same_core.resize_with(n, StepCurve::new);
        }
        for (idx, curve) in self.same_core[..n].iter_mut().enumerate() {
            if idx < unchanged {
                if !curve.is_empty() {
                    reused += 1;
                }
                curve.carry_over();
            } else {
                curve.clear();
            }
        }

        let slots = n * cores;
        if self.bao_slots.len() < slots {
            self.bao_slots.resize_with(slots, BaoSlot::default);
        }
        for (sidx, slot) in self.bao_slots[..slots].iter_mut().enumerate() {
            let level = sidx / cores;
            let core = sidx % cores;
            let certified = level < unchanged
                && delta.as_ref().is_some_and(|d| d.core_stable(core))
                && slot.filled;
            if certified {
                reused += 1;
                slot.carry_over(mode_stable);
            } else {
                slot.reset();
            }
        }

        if unchanged > 0 {
            cpa_obs::counter("engine.warm_starts").incr();
            cpa_obs::counter("engine.segments_reused").add(reused);
        }
        self.fingerprint = Some(fingerprint);
        self.warm_env = Some(env);

        self.blocking.clear();
        self.blocking.extend(tasks.ids().map(|i| {
            u64::from(charges_blocking && tasks.lp_on(i, tasks[i].core()).next().is_some())
        }));

        if self.on_core.len() < cores {
            self.on_core.resize_with(cores, Vec::new);
        }
        for list in &mut self.on_core[..cores] {
            list.clear();
        }
        self.hp_prefix.clear();
        for i in tasks.ids() {
            let list = &mut self.on_core[tasks[i].core().index()];
            self.hp_prefix.push(list.len());
            list.push(i);
        }

        self.dirty.clear();
        self.dirty.resize(n, true);

        self.certified.clear();
    }
}

/// The memoized, worklist-driven WCRT analysis (see the module docs).
///
/// Build one per `(task set, configuration)` evaluation with
/// [`AnalysisEngine::new`] — borrowing a (possibly recycled)
/// [`AnalysisScratch`] — and consume it with [`AnalysisEngine::run`];
/// [`crate::analyze`] and [`crate::analyze_with`] do exactly that.
pub struct AnalysisEngine<'e, 'a> {
    ctx: &'e AnalysisContext<'a>,
    config: &'e AnalysisConfig,
    arbiter: Box<dyn BusArbiter>,
    scratch: &'e mut AnalysisScratch,
    cores: usize,
    same_core_hits: u64,
    same_core_misses: u64,
    bao_hits: u64,
    bao_misses: u64,
    tasks_solved: u64,
    tasks_skipped: u64,
    /// Re-derivations avoided via warm-carried cache entries: hits on
    /// carried same-core segments plus verbatim term keeps on a carried
    /// `BAO` slot's first refresh.
    warm_saved: u64,
    /// The certification base for partial re-solve, when
    /// [`AnalysisEngine::offer_parent`] accepted one.
    parent: Option<&'e ParentSolution>,
    /// Whether the accepted parent solved the *identical* set under the
    /// identical environment, so [`AnalysisEngine::run`] replays it
    /// outright (sound under every bus policy).
    replay: bool,
    /// Tasks whose round-1 solve was replaced by a certified parent bound.
    tasks_certified: u64,
}

impl fmt::Debug for AnalysisEngine<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisEngine")
            .field("bus", &self.arbiter.policy())
            .field("persistence", &self.config.persistence)
            .field("tasks", &self.ctx.tasks().len())
            .field("cores", &self.cores)
            .finish_non_exhaustive()
    }
}

impl<'e, 'a> AnalysisEngine<'e, 'a> {
    /// Prepares an engine run: builds the arbiter, resets `scratch` and
    /// fills the initial estimates `R_i = PD_i + MD_i · d_mem`.
    #[must_use]
    pub fn new(
        ctx: &'e AnalysisContext<'a>,
        config: &'e AnalysisConfig,
        scratch: &'e mut AnalysisScratch,
    ) -> Self {
        let cores = ctx.platform().cores();
        let arbiter = arbiter_for(config.bus);
        scratch.reset(ctx, arbiter.charges_blocking(), config.persistence);
        AnalysisEngine {
            ctx,
            config,
            arbiter,
            scratch,
            cores,
            same_core_hits: 0,
            same_core_misses: 0,
            bao_hits: 0,
            bao_misses: 0,
            tasks_solved: 0,
            tasks_skipped: 0,
            warm_saved: 0,
            parent: None,
            replay: false,
            tasks_certified: 0,
        }
    }

    /// Offers a [`ParentSolution`] as the certification base for partial
    /// re-solve (see [`crate::analyze_with_parent`] for the rules). The
    /// offer is rejected outright — `engine.parent_rejected` — unless the
    /// parent's analysis environment (bus, mode, `d_mem`, cores, CRPD
    /// approach, iteration caps) matches this run's exactly; an accepted
    /// offer either schedules a full replay (identical sets, any policy;
    /// `engine.parent_replays`) or certifies individual tasks (arbiters
    /// that never consume remote response times; the per-task tally is
    /// `engine.tasks_certified`).
    pub(crate) fn offer_parent(&mut self, parent: &'e ParentSolution) {
        let env_matches = parent.config == *self.config
            && parent.d_mem == self.ctx.d_mem()
            && parent.cores == self.cores
            && parent.crpd == self.ctx.crpd_approach();
        if !env_matches {
            cpa_obs::counter("engine.parent_rejected").incr();
            return;
        }
        let current = self
            .scratch
            .fingerprint
            .as_ref()
            .expect("reset always fingerprints the task set");
        let delta = parent.fingerprint.delta(current);
        if delta.identical() {
            self.parent = Some(parent);
            self.replay = true;
            cpa_obs::counter("engine.parent_replays").incr();
            return;
        }
        if self.arbiter.consumes_remote_response_times() {
            // Every task reads every other core's estimates: no per-task
            // certificate short of set identity exists (DESIGN.md §16).
            cpa_obs::counter("engine.parent_rejected").incr();
            return;
        }
        let tasks = self.ctx.tasks();
        let mut any = false;
        self.scratch.certified.clear();
        self.scratch.certified.extend(tasks.ids().map(|i| {
            let ok =
                delta.task_unchanged(i.index()) && delta.core_untouched(tasks[i].core().index());
            any |= ok;
            ok
        }));
        if any {
            self.parent = Some(parent);
        } else {
            self.scratch.certified.clear();
            cpa_obs::counter("engine.parent_rejected").incr();
        }
    }

    /// Offers per-task response-time hints from a neighbouring solve
    /// (see [`crate::analyze_with_seed`]). A hint is *adopted* only when
    /// it is provably the value the cold iteration starts from anyway —
    /// i.e. it equals the initial estimate `PD_i + MD_i · d_mem`. No
    /// other certificate short of re-running the fixed point exists, so
    /// every other component (over-estimates in particular) is rejected
    /// and re-derived by the unmodified cold iterate chain; seeded runs
    /// are therefore bitwise identical to unseeded ones, and the warm
    /// speedup comes from the scratch's certified structural retention
    /// instead. Tallies land in `engine.seed_hints_adopted` /
    /// `engine.seed_hints_rejected`.
    pub(crate) fn offer_seed(&mut self, seed: &[Time]) {
        let n = self.scratch.init.len();
        let mut adopted = 0u64;
        // Length mismatches reject the excess outright.
        let mut rejected = (seed.len().abs_diff(n)) as u64;
        for (hint, &init) in seed.iter().zip(&self.scratch.init[..n.min(seed.len())]) {
            if *hint == init {
                adopted += 1;
            } else {
                rejected += 1;
            }
        }
        cpa_obs::counter("engine.seed_hints_adopted").add(adopted);
        cpa_obs::counter("engine.seed_hints_rejected").add(rejected);
    }

    /// Eq. (19)'s right-hand side at window length `r`, evaluated through
    /// the curve caches. Agrees pointwise with the reference evaluator
    /// (`rhs` in [`crate::wcrt`]) — that is the whole equivalence argument.
    fn rhs(&mut self, i: TaskId, r: Time, carry: CarryOut) -> Time {
        let ctx = self.ctx;
        let tasks = ctx.tasks();
        let task = &tasks[i];
        let mode = self.config.persistence;
        let idx = i.index();
        let scratch = &mut *self.scratch;

        // Same-core terms: interference (cycles) and both BAS modes share
        // one constancy span — every release count E_j is constant on
        // it — so the triple lives in a single curve: one lookup, one
        // span, one insert, and the curve stays valid when the
        // persistence mode changes between runs.
        let (interference, own) = match scratch.same_core[idx].lookup_promote(r) {
            Some(((intf, oblivious, aware), carried)) => {
                if carried {
                    // First touch of a warm-carried span: a cold run
                    // would have derived it here, so score the miss it
                    // replaces and book the saving separately. Revisits
                    // count as the hits a cold run would also score.
                    self.same_core_misses += 1;
                    self.warm_saved += 1;
                } else {
                    self.same_core_hits += 1;
                }
                let own = match mode {
                    PersistenceMode::Oblivious => oblivious,
                    PersistenceMode::Aware => aware,
                };
                (Time::from_cycles(intf), own)
            }
            None => {
                self.same_core_misses += 1;
                let hp = &scratch.on_core[task.core().index()][..scratch.hp_prefix[idx]];
                let (s, intf, oblivious, aware) = bas::same_core_terms(ctx, i, r, hp);
                scratch.same_core[idx].insert(r, s, (intf.cycles(), oblivious, aware));
                let own = match mode {
                    PersistenceMode::Oblivious => oblivious,
                    PersistenceMode::Aware => aware,
                };
                (intf, own)
            }
        };

        // Cross-core term through the arbiter, feeding it memoized BAO.
        let arb = &*self.arbiter;
        let mut src = CachedBao {
            ctx,
            resp: &scratch.resp,
            core_version: &scratch.core_version,
            slots: &mut scratch.bao_slots,
            on_core: &scratch.on_core,
            hits: &mut self.bao_hits,
            misses: &mut self.bao_misses,
            saved: &mut self.warm_saved,
            mode,
            cores: self.cores,
        };
        let cross = arb.cross_core(ctx, &mut src, i, r, own, carry);

        let bus_accesses = own
            .saturating_add(cross)
            .saturating_add(scratch.blocking[idx]);
        task.processing_demand()
            .saturating_add(interference)
            .saturating_add(ctx.d_mem().saturating_mul(bus_accesses))
    }

    /// Flushes the run's cache/worklist tallies into the always-on
    /// counters and hands the result back.
    fn finish(&self, result: AnalysisResult) -> AnalysisResult {
        cpa_obs::counter("engine.curve_hit").add(self.same_core_hits + self.bao_hits);
        cpa_obs::counter("engine.curve_miss").add(self.same_core_misses + self.bao_misses);
        cpa_obs::counter("engine.same_core_hit").add(self.same_core_hits);
        cpa_obs::counter("engine.same_core_miss").add(self.same_core_misses);
        cpa_obs::counter("engine.bao_hit").add(self.bao_hits);
        cpa_obs::counter("engine.bao_miss").add(self.bao_misses);
        cpa_obs::counter("engine.tasks_solved").add(self.tasks_solved);
        cpa_obs::counter("engine.tasks_skipped").add(self.tasks_skipped);
        cpa_obs::counter("engine.inner_iters_saved").add(self.warm_saved);
        cpa_obs::counter("engine.tasks_certified").add(self.tasks_certified);
        result
    }

    /// Runs the analysis to its fixed point (or deadline miss / outer
    /// cap). Consumes the engine: the borrowed scratch's curves are only
    /// valid for one run (the next [`AnalysisEngine::new`] resets them).
    #[must_use]
    pub fn run(mut self) -> AnalysisResult {
        let _span = cpa_obs::span!("wcrt.analyze");
        if let Some(result) = wcrt::perfect_bus_check(self.ctx, self.config) {
            return self.finish(result);
        }
        if self.replay {
            // The accepted parent solved the bitwise-identical problem:
            // its result *is* what the fixed point below would recompute,
            // field for field (analysis is deterministic in its inputs).
            let parent = self.parent.expect("replay implies an accepted parent");
            self.tasks_certified = parent.resp.len() as u64;
            let result = AnalysisResult {
                response_times: parent.resp.iter().map(|&r| Some(r)).collect(),
                schedulable: true,
                outer_iterations: parent.outer,
                inner_iterations: parent.inner.clone(),
                hit_outer_cap: false,
            };
            return self.finish(result);
        }
        let ctx = self.ctx;
        let tasks = ctx.tasks();
        let n = tasks.len();
        let consumes_remote = self.arbiter.consumes_remote_response_times();
        // Owned by the eventual AnalysisResult, so allocated per run.
        let mut inner_iterations = vec![0u64; n];

        for round in 1..=self.config.max_outer_iterations {
            let mut processed = 0usize;
            let mut changed_tasks = 0usize;
            for i in tasks.ids() {
                if !self.scratch.dirty[i.index()] {
                    self.tasks_skipped += 1;
                    continue;
                }
                if round == 1 && self.scratch.certified.get(i.index()) == Some(&true) {
                    // Partial re-solve: the parent's bound for τi is
                    // certified to be exactly what the solve below would
                    // derive (same columns, same hp set, same table rows,
                    // and — certified mode only runs under arbiters that
                    // consume no remote estimates — no cross-core reads),
                    // so adopt it along with the inner-iteration count the
                    // cold single-visit solve would have booked.
                    let idx = i.index();
                    let parent = self.parent.expect("certificates imply a parent");
                    self.scratch.dirty[idx] = false;
                    self.tasks_certified += 1;
                    inner_iterations[idx] += parent.inner[idx];
                    let r = parent.resp[idx];
                    if r > self.scratch.resp[idx] {
                        cpa_obs::event!(
                            "wcrt.estimate",
                            task = idx,
                            outer = round,
                            inner = parent.inner[idx],
                            estimate = r.cycles(),
                        );
                        self.scratch.resp[idx] = r;
                        changed_tasks += 1;
                        // Certified mode never runs under remote-consuming
                        // arbiters, so nothing is re-dirtied; the version
                        // bump keeps internal state on the cold trajectory.
                        self.scratch.core_version[tasks[i].core().index()] += 1;
                    }
                    continue;
                }
                self.scratch.dirty[i.index()] = false;
                processed += 1;
                self.tasks_solved += 1;
                let start = self.scratch.resp[i.index()].max(self.scratch.init[i.index()]);
                let max_inner = self.config.max_inner_iterations;
                let solve = wcrt::solve_inner(tasks[i].deadline(), start, max_inner, |r, carry| {
                    self.rhs(i, r, carry)
                });
                inner_iterations[i.index()] += solve.iterations;
                let r = match solve.bound {
                    Some(r) => r,
                    None => {
                        cpa_obs::event!(
                            "wcrt.deadline_miss",
                            task = i.index(),
                            outer = round,
                            deadline = tasks[i].deadline().cycles(),
                        );
                        // Unschedulable: report what we know, with the
                        // failing task explicitly marked unbounded —
                        // the same partial snapshot the reference takes.
                        let response_times = self
                            .scratch
                            .resp
                            .iter()
                            .zip(tasks.iter())
                            .enumerate()
                            .map(|(idx, (&r, t))| {
                                (idx != i.index() && r <= t.deadline()).then_some(r)
                            })
                            .collect();
                        return self.finish(AnalysisResult {
                            response_times,
                            schedulable: false,
                            outer_iterations: round,
                            inner_iterations,
                            hit_outer_cap: false,
                        });
                    }
                };
                if r > self.scratch.resp[i.index()] {
                    cpa_obs::event!(
                        "wcrt.estimate",
                        task = i.index(),
                        outer = round,
                        inner = solve.iterations,
                        estimate = r.cycles(),
                    );
                    self.scratch.resp[i.index()] = r;
                    changed_tasks += 1;
                    // τi's estimate is read (through BAO) only by tasks on
                    // other cores — and only under arbiters that consume
                    // remote response times at all.
                    let core = tasks[i].core();
                    self.scratch.core_version[core.index()] += 1;
                    if consumes_remote {
                        for j in tasks.ids() {
                            if tasks[j].core() != core {
                                self.scratch.dirty[j.index()] = true;
                            }
                        }
                    }
                }
            }
            cpa_obs::event!(
                "engine.worklist",
                round = round,
                depth = processed,
                changed = changed_tasks,
            );
            cpa_obs::histogram!("engine.worklist_depth", processed as u64);
            cpa_obs::event!("wcrt.outer", iter = round, changed = changed_tasks);
            if changed_tasks == 0 {
                // Converged. An empty round (depth 0) corresponds to the
                // reference's final zero-change sweep, so round numbers —
                // and therefore `outer_iterations` — line up exactly.
                wcrt::emit_converged_events(
                    ctx,
                    self.config,
                    &self.scratch.resp,
                    &inner_iterations,
                );
                let response_times = self.scratch.resp.iter().map(|&r| Some(r)).collect();
                return self.finish(AnalysisResult {
                    response_times,
                    schedulable: true,
                    outer_iterations: round,
                    inner_iterations,
                    hit_outer_cap: false,
                });
            }
        }

        // Outer loop failed to stabilise within the cap: the reference
        // would keep sweeping too, so this is a genuine cap hit.
        cpa_obs::event!(
            "wcrt.outer_cap",
            level = "warn",
            max_outer = self.config.max_outer_iterations,
            bus = self.config.bus.label(),
        );
        cpa_obs::counter("wcrt.outer_cap_hits").incr();
        self.finish(AnalysisResult {
            response_times: vec![None; n],
            schedulable: false,
            outer_iterations: self.config.max_outer_iterations,
            inner_iterations,
            hit_outer_cap: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, analyze_reference, analyze_with, BusPolicy};
    use cpa_model::{CacheBlockSet, Platform, Priority, Task, TaskSet};

    fn task(name: &str, prio: u32, core: usize, pd: u64, md: u64, md_r: u64, period: u64) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 10))
            .pcb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 8))
            .build()
            .unwrap()
    }

    fn two_core_set() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(20))
            .build()
            .unwrap();
        let tasks = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
            task("c", 3, 0, 200, 20, 2, 8_000),
            task("d", 4, 1, 200, 20, 2, 8_000),
        ])
        .unwrap();
        (platform, tasks)
    }

    #[test]
    fn engine_matches_reference_on_the_worked_set() {
        let (platform, tasks) = two_core_set();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
            BusPolicy::Perfect,
        ] {
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                let config = AnalysisConfig::new(bus, mode);
                let engine = analyze(&ctx, &config);
                let reference = analyze_reference(&ctx, &config);
                assert_eq!(
                    engine.response_times(),
                    reference.response_times(),
                    "{bus:?} {mode:?}"
                );
                assert_eq!(engine.is_schedulable(), reference.is_schedulable());
                assert_eq!(engine.outer_iterations(), reference.outer_iterations());
            }
        }
    }

    #[test]
    fn recycled_scratch_matches_fresh_scratch() {
        // One scratch serving every (bus, mode) combination back to back —
        // including across a *different* task set in between — must
        // reproduce the fresh-scratch results exactly.
        let (platform, tasks) = two_core_set();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let small_platform = Platform::builder()
            .cores(1)
            .memory_latency(Time::from_cycles(5))
            .build()
            .unwrap();
        let small_tasks = TaskSet::new(vec![task("only", 1, 0, 50, 4, 1, 1_000)]).unwrap();
        let small_ctx = AnalysisContext::new(&small_platform, &small_tasks).unwrap();

        let mut scratch = AnalysisScratch::new();
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
            BusPolicy::Perfect,
        ] {
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                let config = AnalysisConfig::new(bus, mode);
                // Poison the scratch with a run on an unrelated problem
                // before every measured run: reuse must erase all of it.
                let _ = analyze_with(&small_ctx, &config, &mut scratch);
                let recycled = analyze_with(&ctx, &config, &mut scratch);
                let fresh = analyze(&ctx, &config);
                assert_eq!(
                    recycled.response_times(),
                    fresh.response_times(),
                    "{bus:?} {mode:?}"
                );
                assert_eq!(recycled.is_schedulable(), fresh.is_schedulable());
                assert_eq!(recycled.outer_iterations(), fresh.outer_iterations());
            }
        }
    }

    #[test]
    fn scratch_reuse_is_counted() {
        let (platform, tasks) = two_core_set();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
        let reuses = cpa_obs::counter("engine.scratch_reuses");
        let before = reuses.get();
        let mut scratch = AnalysisScratch::new();
        let _ = analyze_with(&ctx, &config, &mut scratch);
        let _ = analyze_with(&ctx, &config, &mut scratch);
        let _ = analyze_with(&ctx, &config, &mut scratch);
        assert_eq!(
            reuses.get() - before,
            2,
            "first run is a fill, the next two are reuses"
        );
    }

    #[test]
    fn curve_cache_hits_on_repeated_windows() {
        let (platform, tasks) = two_core_set();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
        let hit = cpa_obs::counter("engine.curve_hit");
        let solved = cpa_obs::counter("engine.tasks_solved");
        let (h0, s0) = (hit.get(), solved.get());
        let res = analyze(&ctx, &config);
        assert!(res.is_schedulable());
        assert!(hit.get() > h0, "bracket/refine revisit windows: some hits");
        assert!(solved.get() > s0);
    }

    #[test]
    fn worklist_skips_settled_tasks() {
        // TDMA consumes no remote response times: after round 1 nothing is
        // ever re-enqueued, so the skip counter must grow while the
        // analysis still matches the reference.
        let (platform, tasks) = two_core_set();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let config = AnalysisConfig::new(BusPolicy::Tdma { slots: 2 }, PersistenceMode::Aware);
        let skipped = cpa_obs::counter("engine.tasks_skipped");
        let before = skipped.get();
        let engine = analyze(&ctx, &config);
        let reference = analyze_reference(&ctx, &config);
        assert_eq!(engine.response_times(), reference.response_times());
        assert!(
            skipped.get() > before,
            "TDMA convergence round must skip every task"
        );
    }
}
