//! Total bus access bounds per arbitration policy: Eq. (7), (8), (9).

use cpa_model::{TaskId, Time};

use crate::arbiter::{with_arbiter, DirectBao};
use crate::{bas, AnalysisConfig, AnalysisContext};

pub use crate::bao::CarryOut;

/// `BAT_i^x(t)`: total number of bus accesses that may delay the execution
/// of `τi` in a window of length `t`, under the configured bus policy and
/// persistence mode.
///
/// * **Fixed-priority bus** (Eq. (7)): same-core demand, plus all
///   higher-or-equal-priority remote demand, plus lower-priority remote
///   accesses capped at one blocking access per own access (`min(BAS, Σ
///   BAO_low)`), plus the `+1` same-core blocking access.
/// * **Round-robin bus** (Eq. (8)): each remote core contributes at most
///   `s` slots per own access (`min(BAO_n, s·BAS)`), where `BAO_n` is taken
///   at the lowest priority level (RR does not look at priorities).
/// * **TDMA bus** (Eq. (9)): non-work-conserving — every own access may
///   wait for the other `L−1` cores' `s` slots regardless of actual remote
///   demand, with cycle length `L·s` and `L` the number of cores.
/// * **Perfect bus**: no cross-core contention at all; only the same-core
///   demand `BAS` remains (the Fig. 2 reference line; see
///   [`crate::wcrt::analyze`] for the accompanying bus-utilization test).
///
/// Following the worked example of the paper (Fig. 1, Eq. (12) and its
/// footnote), the trailing `+1` — one already-in-service bus access from a
/// same-core lower-priority task — is only charged when such a task exists.
///
/// `resp` carries the current response-time estimates of all tasks,
/// consumed by the remote-core bound (Eq. (5)/(6)).
#[must_use]
pub fn bat(
    ctx: &AnalysisContext<'_>,
    i: TaskId,
    t: Time,
    resp: &[Time],
    config: &AnalysisConfig,
) -> u64 {
    bat_with(ctx, i, t, resp, config, CarryOut::Exact)
}

/// [`bat`] with an explicit carry-out mode (see [`CarryOut`]); used by the
/// WCRT driver to bracket the fixed point.
///
/// The policy-specific cross-core term lives in the matching
/// [`crate::arbiter::BusArbiter`] impl; this function owns only the shared
/// `BAS + cross + blocking` composition. Each arbiter walks the remote
/// cores exactly once per call (FP accumulates both priority bands in one
/// pass, RR hoists the lowest-priority level out of the loop).
#[must_use]
pub fn bat_with(
    ctx: &AnalysisContext<'_>,
    i: TaskId,
    t: Time,
    resp: &[Time],
    config: &AnalysisConfig,
    carry: CarryOut,
) -> u64 {
    let tasks = ctx.tasks();
    let core = tasks[i].core();
    let mode = config.persistence;
    let own = bas::bas(ctx, i, t, mode);
    with_arbiter(config.bus, |arb| {
        let mut src = DirectBao::new(ctx, resp, mode);
        let cross = arb.cross_core(ctx, &mut src, i, t, own, carry);
        let blocking = u64::from(arb.charges_blocking() && tasks.lp_on(i, core).next().is_some());
        own.saturating_add(cross).saturating_add(blocking)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BusPolicy, PersistenceMode};
    use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet};
    use proptest::prelude::*;

    fn fig1() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        let tau1 = Task::builder("tau1")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(20))
            .deadline(Time::from_cycles(20))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        let tau2 = Task::builder("tau2")
            .processing_demand(Time::from_cycles(32))
            .memory_demand(8)
            .period(Time::from_cycles(200))
            .deadline(Time::from_cycles(200))
            .core(CoreId::new(0))
            .priority(Priority::new(2))
            .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
            .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
            .build()
            .unwrap();
        let tau3 = Task::builder("tau3")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(16))
            .deadline(Time::from_cycles(16))
            .core(CoreId::new(1))
            .priority(Priority::new(3))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
    }

    /// The Fig. 1 evaluation of Eq. (11): RR bus with s = 1, for τ2.
    /// Window chosen so E_1 = 3 and N_{3,3} = 4 (zero carry-out), as in
    /// the paper's walkthrough.
    #[test]
    fn fig1_rr_bat() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);

        // Oblivious: BAS = 32, BAO_3^y = 24 ⇒ BAT = 32 + min(24, 32) = 56.
        // τ2 is the lowest-priority task on its core, so no trailing +1
        // (the paper's footnote to Eq. (12)).
        let cfg = AnalysisConfig::new(
            BusPolicy::RoundRobin { slots: 1 },
            PersistenceMode::Oblivious,
        );
        assert_eq!(bat(&ctx, t2, t, &resp, &cfg), 56);

        // Aware: BÂS = 26, BÂO = 9 ⇒ BAT = 26 + min(9, 26) = 35.
        let cfg = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 1 }, PersistenceMode::Aware);
        assert_eq!(bat(&ctx, t2, t, &resp, &cfg), 35);
    }

    #[test]
    fn blocking_term_requires_same_core_lp_task() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t1 = tasks.id_of("tau1").unwrap();
        let resp = vec![Time::ZERO; 3];
        // τ1 has a same-core lower-priority task (τ2) ⇒ +1 applies.
        let cfg = AnalysisConfig::new(BusPolicy::Tdma { slots: 1 }, PersistenceMode::Oblivious);
        // TDMA, 2 cores, s=1: BAS·(1 + 1·1) + 1 = 6·2 + 1 = 13.
        assert_eq!(bat(&ctx, t1, Time::ZERO, &resp, &cfg), 13);
        // τ3 is alone on core y: no blocking term.
        let t3 = tasks.id_of("tau3").unwrap();
        assert_eq!(bat(&ctx, t3, Time::ZERO, &resp, &cfg), 12);
    }

    #[test]
    fn perfect_bus_sees_only_same_core_demand() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let resp = vec![Time::from_cycles(100); 3];
        let t = Time::from_cycles(60);
        let cfg = AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware);
        assert_eq!(bat(&ctx, t2, t, &resp, &cfg), 26);
    }

    #[test]
    fn fp_charges_remote_hep_and_capped_lp() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();
        let t = Time::from_cycles(60);
        let mut resp = vec![Time::ZERO; 3];
        resp[t3.index()] = Time::from_cycles(10);
        let cfg = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious);
        // τ3 is remote and lower priority: hep-remote = 0, lp-remote = 24
        // capped at BAS = 32 ⇒ BAT = 32 + 0 + 24 = 56. No same-core lp.
        assert_eq!(bat(&ctx, t2, t, &resp, &cfg), 56);
        // From τ3's own perspective: remote hep = τ1 and τ2's demand.
        let cfg_t3 = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious);
        let v = bat(&ctx, t3, t, &resp, &cfg_t3);
        assert!(v >= bas::bas_oblivious(&ctx, t3, t));
    }

    proptest! {
        #[test]
        fn aware_never_exceeds_oblivious_for_any_policy(
            t in 0u64..5_000,
            r in 0u64..2_000,
            slots in 1u64..6,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            let t = Time::from_cycles(t);
            for bus in [
                BusPolicy::FixedPriority,
                BusPolicy::RoundRobin { slots },
                BusPolicy::Tdma { slots },
                BusPolicy::Perfect,
            ] {
                for i in tasks.ids() {
                    let aware = bat(&ctx, i, t, &resp,
                        &AnalysisConfig::new(bus, PersistenceMode::Aware));
                    let oblivious = bat(&ctx, i, t, &resp,
                        &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
                    prop_assert!(aware <= oblivious, "{bus:?} {i:?}");
                }
            }
        }

        /// With the persistence-aware carry-out cap (see `bao::CarryOut`),
        /// every policy's total bound is monotone in the window length —
        /// the property the WCRT fixed-point solver relies on.
        #[test]
        fn bat_monotone_in_window(
            a in 0u64..5_000,
            b in 0u64..5_000,
            r in 0u64..2_000,
            slots in 1u64..4,
        ) {
            let (lo, hi) = (a.min(b), a.max(b));
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            for bus in [
                BusPolicy::FixedPriority,
                BusPolicy::RoundRobin { slots },
                BusPolicy::Tdma { slots },
                BusPolicy::Perfect,
            ] {
                for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                    for i in tasks.ids() {
                        let cfg = AnalysisConfig::new(bus, mode);
                        let v_lo = bat(&ctx, i, Time::from_cycles(lo), &resp, &cfg);
                        let v_hi = bat(&ctx, i, Time::from_cycles(hi), &resp, &cfg);
                        prop_assert!(v_lo <= v_hi, "{bus:?} {mode:?} {i:?}: {v_lo} > {v_hi}");
                    }
                }
            }
        }

        /// RR's remote term `min(BAO_n, s·BAS)` is capped by the `s·BAS`
        /// TDMA charges unconditionally, so for equal slot counts the RR
        /// bound dominates the TDMA bound pointwise — the structural
        /// reason the RR curves sit above TDMA in every figure.
        #[test]
        fn rr_bound_dominates_tdma(
            t in 0u64..5_000,
            r in 0u64..2_000,
            slots in 1u64..6,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            let t = Time::from_cycles(t);
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                for i in tasks.ids() {
                    let rr = bat(&ctx, i, t, &resp,
                        &AnalysisConfig::new(BusPolicy::RoundRobin { slots }, mode));
                    let tdma = bat(&ctx, i, t, &resp,
                        &AnalysisConfig::new(BusPolicy::Tdma { slots }, mode));
                    prop_assert!(rr <= tdma, "{mode:?} {i:?} s={slots}: {rr} > {tdma}");
                }
            }
        }

        #[test]
        fn perfect_is_weakest_policy(
            t in 0u64..5_000,
            r in 0u64..2_000,
        ) {
            let (platform, tasks) = fig1();
            let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
            let resp = vec![Time::from_cycles(r); 3];
            let t = Time::from_cycles(t);
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                for i in tasks.ids() {
                    let perfect = bat(&ctx, i, t, &resp,
                        &AnalysisConfig::new(BusPolicy::Perfect, mode));
                    for bus in [
                        BusPolicy::FixedPriority,
                        BusPolicy::RoundRobin { slots: 2 },
                        BusPolicy::Tdma { slots: 2 },
                    ] {
                        let v = bat(&ctx, i, t, &resp, &AnalysisConfig::new(bus, mode));
                        prop_assert!(perfect <= v);
                    }
                }
            }
        }
    }
}
