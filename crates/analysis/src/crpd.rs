//! Cache-related preemption delay (CRPD) via the ECB-union approach.
//!
//! Implements Eq. (2) of the paper (originally Altmeyer, Davis, Maiza —
//! RTSS 2011): the CRPD `γ_{i,j,x}` charged to each job of a higher-priority
//! task `τj` executing on core `x` within the response time of `τi` is the
//! largest number of *useful* cache blocks of any intermediate task that the
//! combined *evicting* cache blocks of `hep(j)` can evict:
//!
//! ```text
//! γ_{i,j,x} = max_{g ∈ Γx ∩ aff(i,j)} | UCB_g ∩ ( ∪_{h ∈ Γx ∩ hep(j)} ECB_h ) |
//! ```
//!
//! The core `x` is always the core of the preempting task `τj`: for Eq. (1)
//! that is also the core of `τi`; for the other-core bound (Eq. (4),
//! Lemma 2) the paper instantiates the same formula with the remote core's
//! partition.

use cpa_model::{CacheBlockSet, TaskId, TaskSet};
use serde::{Deserialize, Serialize};

/// Which CRPD bound instantiates `γ_{i,j,x}`.
///
/// The paper uses the **ECB-union** approach (Eq. (2)); the CRPD
/// literature it builds on (Altmeyer, Davis, Maiza — RTSS 2011) defines
/// several comparable bounds that this crate provides for ablation:
///
/// * [`CrpdApproach::EcbUnion`] — Eq. (2): the largest UCB set of any
///   intermediate task intersected with the union of the preemptor
///   level's ECBs. The paper's default.
/// * [`CrpdApproach::UcbUnion`] — union of the intermediate tasks' UCBs
///   intersected with the preemptor's own ECBs. Incomparable with
///   ECB-union in general (tighter on the evictor side, coarser on the
///   victim side).
/// * [`CrpdApproach::EcbOnly`] — charge every evicting block of the
///   preemptor: `|ECB_j|`. No UCB information needed; a "no victim
///   analysis" baseline.
///
/// The three bounds are **pairwise incomparable** in general: ECB-union's
/// eviction set spans all of `hep(j)` (its intersection with a large UCB
/// set can exceed `|ECB_j|`), while ECB-only ignores victims entirely.
/// That incomparability is precisely what the ablation experiment
/// (`cpa-experiments::ablation`) measures on the paper's workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CrpdApproach {
    /// Eq. (2), the paper's choice.
    #[default]
    EcbUnion,
    /// UCB-union: `|(∪_{g ∈ aff} UCB_g) ∩ ECB_j|`.
    UcbUnion,
    /// ECB-only: `|ECB_j|` whenever some intermediate task exists.
    EcbOnly,
}

impl CrpdApproach {
    /// Short machine-friendly label for experiment output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CrpdApproach::EcbUnion => "ecb-union",
            CrpdApproach::UcbUnion => "ucb-union",
            CrpdApproach::EcbOnly => "ecb-only",
        }
    }
}

/// Union of the ECBs of all tasks in `Γ_{core(j)} ∩ hep(j)` — the eviction
/// footprint the ECB-union approach charges to a preemption by `τj`
/// (it pessimistically assumes `τj` itself is preempted by all of its
/// higher-priority tasks).
#[must_use]
pub fn ecb_union_hep(tasks: &TaskSet, j: TaskId) -> CacheBlockSet {
    let core = tasks[j].core();
    let mut acc = CacheBlockSet::new(tasks.cache_sets());
    for h in tasks.hep_on(j, core) {
        acc.union_in_place(tasks[h].ecb());
    }
    acc
}

/// `γ_{i,j}`: the ECB-union CRPD bound of Eq. (2), evaluated on the core of
/// the preempting task `τj`.
///
/// Returns 0 when `τj` does not have higher priority than `τi` (then
/// `aff(i, j)` is empty — a task is never preempted by lower-priority work)
/// and when no intermediate task shares `τj`'s core.
///
/// # Example
///
/// The Fig. 1 value `γ_{2,1,x} = 2`: `τ2`'s UCBs `{5, 6}` overlap `τ1`'s
/// ECBs `{5..10}` on two blocks.
///
/// ```
/// use cpa_analysis::crpd::gamma;
/// # use cpa_model::{CacheBlockSet, CoreId, Priority, Task, TaskId, TaskSet, Time};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let tau1 = Task::builder("tau1")
/// #     .processing_demand(Time::from_cycles(4)).memory_demand(6)
/// #     .period(Time::from_cycles(100)).deadline(Time::from_cycles(100))
/// #     .core(CoreId::new(0)).priority(Priority::new(1))
/// #     .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
/// #     .build()?;
/// # let tau2 = Task::builder("tau2")
/// #     .processing_demand(Time::from_cycles(32)).memory_demand(8)
/// #     .period(Time::from_cycles(400)).deadline(Time::from_cycles(400))
/// #     .core(CoreId::new(0)).priority(Priority::new(2))
/// #     .ecb(CacheBlockSet::from_blocks(256, 1..=6)?)
/// #     .ucb(CacheBlockSet::from_blocks(256, [5, 6])?)
/// #     .build()?;
/// # let tasks = TaskSet::new(vec![tau1, tau2])?;
/// let i = tasks.id_of("tau2").unwrap();
/// let j = tasks.id_of("tau1").unwrap();
/// assert_eq!(gamma(&tasks, i, j), 2);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn gamma(tasks: &TaskSet, i: TaskId, j: TaskId) -> u64 {
    gamma_with(tasks, i, j, CrpdApproach::EcbUnion)
}

/// `γ_{i,j}` under a selectable CRPD approach (see [`CrpdApproach`]).
///
/// All approaches agree on the trivial case: zero when no intermediate
/// task shares `τj`'s core (`aff(i, j) ∩ Γ_{core(j)} = ∅`).
#[must_use]
pub fn gamma_with(tasks: &TaskSet, i: TaskId, j: TaskId, approach: CrpdApproach) -> u64 {
    let core = tasks[j].core();
    let mut affected = tasks.aff_on(i, j, core).peekable();
    if affected.peek().is_none() {
        return 0;
    }
    match approach {
        CrpdApproach::EcbUnion => {
            let evictors = ecb_union_hep(tasks, j);
            affected
                .map(|g| tasks[g].ucb().intersection_len(&evictors) as u64)
                .max()
                .unwrap_or(0)
        }
        CrpdApproach::UcbUnion => {
            let mut useful = CacheBlockSet::new(tasks.cache_sets());
            for g in affected {
                useful.union_in_place(tasks[g].ucb());
            }
            useful.intersection_len(tasks[j].ecb()) as u64
        }
        CrpdApproach::EcbOnly => tasks[j].ecb().len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CoreId, Priority, Task, Time};

    fn task(
        name: &str,
        prio: u32,
        core: usize,
        ecb: impl IntoIterator<Item = usize>,
        ucb: impl IntoIterator<Item = usize>,
    ) -> Task {
        let ecb = CacheBlockSet::from_blocks(64, ecb).unwrap();
        let ucb = CacheBlockSet::from_blocks(64, ucb).unwrap();
        let ucb = ucb.intersection(&ecb);
        Task::builder(name)
            .processing_demand(Time::from_cycles(10))
            .memory_demand(4)
            .period(Time::from_cycles(1_000))
            .deadline(Time::from_cycles(1_000))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(ecb)
            .ucb(ucb)
            .build()
            .unwrap()
    }

    #[test]
    fn no_gamma_for_lower_or_equal_priority_preemptor() {
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..10, 0..10),
            task("lo", 2, 0, 5..15, 5..15),
        ])
        .unwrap();
        let hi = ts.id_of("hi").unwrap();
        let lo = ts.id_of("lo").unwrap();
        // A task cannot be preempted by itself or by lower-priority tasks.
        assert_eq!(gamma(&ts, hi, hi), 0);
        assert_eq!(gamma(&ts, hi, lo), 0);
        // But the low-priority task does suffer CRPD from the high one:
        // UCB_lo {5..15} ∩ ECB_hi {0..10} = {5..10}.
        assert_eq!(gamma(&ts, lo, hi), 5);
    }

    #[test]
    fn gamma_ignores_other_cores() {
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..10, 0..10),
            task("remote", 2, 1, 0..20, 0..20),
            task("lo", 3, 0, 5..15, 5..15),
        ])
        .unwrap();
        let lo = ts.id_of("lo").unwrap();
        let hi = ts.id_of("hi").unwrap();
        // "remote" shares blocks with both, but is on another core: neither
        // its UCBs (as a victim) nor its ECBs (as an evictor) participate.
        // UCB_lo {5..15} ∩ ECB_hi {0..10} = {5..10}.
        assert_eq!(gamma(&ts, lo, hi), 5);
    }

    #[test]
    fn ecb_union_is_over_hep_on_same_core() {
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 0..4, []),
            task("b", 2, 1, 10..20, []),
            task("c", 3, 0, 4..8, []),
        ])
        .unwrap();
        let c = ts.id_of("c").unwrap();
        let u = ecb_union_hep(&ts, c);
        // a and c on core 0: {0..8}; b excluded.
        assert_eq!(u.len(), 8);
        assert!(u.contains(0) && u.contains(7) && !u.contains(10));
    }

    #[test]
    fn gamma_takes_max_over_intermediate_tasks() {
        // aff(lo, hi) = {mid, lo}; UCB overlap is 3 for mid, 6 for lo.
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..8, []),
            task("mid", 2, 0, 0..3, 0..3),
            task("lo", 3, 0, 0..6, 0..6),
        ])
        .unwrap();
        let lo = ts.id_of("lo").unwrap();
        let hi = ts.id_of("hi").unwrap();
        assert_eq!(gamma(&ts, lo, hi), 6);
        // For i = mid, aff = {mid} only.
        let mid = ts.id_of("mid").unwrap();
        assert_eq!(gamma(&ts, mid, hi), 3);
    }

    #[test]
    fn approaches_agree_on_empty_aff() {
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..10, 0..10),
            task("lo", 2, 0, 5..15, 5..15),
        ])
        .unwrap();
        let hi = ts.id_of("hi").unwrap();
        let lo = ts.id_of("lo").unwrap();
        for approach in [
            CrpdApproach::EcbUnion,
            CrpdApproach::UcbUnion,
            CrpdApproach::EcbOnly,
        ] {
            assert_eq!(gamma_with(&ts, hi, lo, approach), 0, "{approach:?}");
            assert_eq!(gamma_with(&ts, hi, hi, approach), 0, "{approach:?}");
        }
    }

    #[test]
    fn approach_values_and_ordering() {
        // hi evicts 0..10; two victims with UCBs {0..3} and {5..9}.
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..10, []),
            task("mid", 2, 0, 0..3, 0..3),
            task("lo", 3, 0, 5..9, 5..9),
        ])
        .unwrap();
        let lo = ts.id_of("lo").unwrap();
        let hi = ts.id_of("hi").unwrap();
        // ECB-union: max(|{0..3}|, |{5..9}|) = 4.
        assert_eq!(gamma_with(&ts, lo, hi, CrpdApproach::EcbUnion), 4);
        // UCB-union: |({0..3} ∪ {5..9}) ∩ {0..10}| = 7.
        assert_eq!(gamma_with(&ts, lo, hi, CrpdApproach::UcbUnion), 7);
        // ECB-only: |ECB_hi| = 10 — the largest here (single preemptor;
        // with several hep tasks the union side can exceed it, the bounds
        // are incomparable in general).
        assert_eq!(gamma_with(&ts, lo, hi, CrpdApproach::EcbOnly), 10);
        assert_eq!(CrpdApproach::default(), CrpdApproach::EcbUnion);
        assert_eq!(CrpdApproach::UcbUnion.label(), "ucb-union");
    }

    #[test]
    fn ecb_union_can_exceed_ecb_only() {
        // τj's own ECBs are tiny, but hep(j) jointly covers a big UCB set:
        // the union bound charges more than |ECB_j|.
        let ts = TaskSet::new(vec![
            task("big", 1, 0, 0..30, []),
            task("j", 2, 0, 30..32, []),
            task("victim", 3, 0, 0..32, 0..30),
        ])
        .unwrap();
        let victim = ts.id_of("victim").unwrap();
        let j = ts.id_of("j").unwrap();
        let union = gamma_with(&ts, victim, j, CrpdApproach::EcbUnion);
        let only = gamma_with(&ts, victim, j, CrpdApproach::EcbOnly);
        assert_eq!(only, 2);
        assert!(union > only, "union {union} ≤ only {only}");
    }

    #[test]
    fn disjoint_footprints_mean_zero_crpd() {
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 0..8, 0..8),
            task("lo", 2, 0, 20..30, 20..30),
        ])
        .unwrap();
        assert_eq!(
            gamma(&ts, ts.id_of("lo").unwrap(), ts.id_of("hi").unwrap()),
            0
        );
    }
}
