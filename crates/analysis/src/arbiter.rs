//! The bus arbitration abstraction: one trait owning the Eq. (7)/(8)/(9)
//! composition.
//!
//! `BAT_i^x(t)` always has the shape
//!
//! ```text
//! BAT = BAS + cross_core(BAS, BAO…) + blocking
//! ```
//!
//! where only the *cross-core* term differs between arbitration policies.
//! [`BusArbiter`] captures exactly that term (plus the two policy facts the
//! composition needs: whether the `+1` blocking access is charged and
//! whether the policy consumes remote response times at all), so adding an
//! arbitration policy is one new impl instead of a new arm in every
//! `match config.bus` across the workspace. Both [`crate::bus::bat_with`]
//! and [`crate::diagnose::decompose`] are composed from this trait; the
//! [`crate::engine`] additionally feeds it memoized `BAO` curves through
//! [`BaoSource`].

use cpa_model::{CoreId, TaskId, Time};

use crate::bao::{self, CarryOut, PriorityBand};
use crate::{AnalysisContext, BusPolicy, PersistenceMode};

/// Supplier of `BAO_k^y(t)` values (Eq. (3)–(6)) to an arbiter.
///
/// The direct implementation ([`DirectBao`]) recomputes the bound from
/// first principles; the analysis engine substitutes a memoized step-curve
/// cache. Arbiters must treat the two interchangeably, which is what makes
/// the engine's differential pin against the reference path meaningful.
pub trait BaoSource {
    /// Upper bound on the bus accesses issued by tasks of `band` relative
    /// to priority level `level` on remote core `core` within a window of
    /// length `t`.
    fn bao(
        &mut self,
        level: TaskId,
        core: CoreId,
        t: Time,
        band: PriorityBand,
        carry: CarryOut,
    ) -> u64;

    /// Both bands at once, `(hep, lower)` — the FP bus consumes both at
    /// the same window, and a memoizing source can answer the pair from
    /// one cached segment. The default simply asks per band.
    fn bao_pair(&mut self, level: TaskId, core: CoreId, t: Time, carry: CarryOut) -> (u64, u64) {
        (
            self.bao(level, core, t, PriorityBand::HigherOrEqual, carry),
            self.bao(level, core, t, PriorityBand::Lower, carry),
        )
    }
}

/// [`BaoSource`] that evaluates [`bao::bao`] directly (no memoization);
/// the pre-engine reference path.
#[derive(Debug)]
pub struct DirectBao<'r, 'ctx, 'a> {
    ctx: &'ctx AnalysisContext<'a>,
    resp: &'r [Time],
    mode: PersistenceMode,
}

impl<'r, 'ctx, 'a> DirectBao<'r, 'ctx, 'a> {
    /// Builds a direct source over the given response-time estimates.
    #[must_use]
    pub fn new(ctx: &'ctx AnalysisContext<'a>, resp: &'r [Time], mode: PersistenceMode) -> Self {
        DirectBao { ctx, resp, mode }
    }
}

impl BaoSource for DirectBao<'_, '_, '_> {
    fn bao(
        &mut self,
        level: TaskId,
        core: CoreId,
        t: Time,
        band: PriorityBand,
        carry: CarryOut,
    ) -> u64 {
        bao::bao(self.ctx, level, core, t, self.resp, self.mode, band, carry)
    }
}

/// One memory bus arbitration policy's contribution to `BAT_i^x(t)`.
///
/// Implementations own the policy-specific part of Eq. (7) (fixed
/// priority), Eq. (8) (round robin) and Eq. (9) (TDMA); the shared
/// `BAS + … + blocking` composition lives in [`crate::bus::bat_with`].
pub trait BusArbiter {
    /// The policy this arbiter implements.
    fn policy(&self) -> BusPolicy;

    /// Whether the `+1` already-in-service blocking access (the footnote to
    /// Eq. (12)) is charged when a same-core lower-priority task exists.
    /// The perfect bus charges nothing beyond the own-core demand.
    fn charges_blocking(&self) -> bool {
        true
    }

    /// Whether the cross-core term reads remote tasks' response-time
    /// estimates (through Eq. (5)/(6)). TDMA and the perfect bus do not,
    /// which lets the engine's worklist skip re-enqueuing on remote
    /// response-time changes under those policies.
    fn consumes_remote_response_times(&self) -> bool {
        true
    }

    /// The policy-specific cross-core access bound for `τi` in a window of
    /// length `t`, given the own-core demand `own = BAS_i^x(t)`.
    fn cross_core(
        &self,
        ctx: &AnalysisContext<'_>,
        src: &mut dyn BaoSource,
        i: TaskId,
        t: Time,
        own: u64,
        carry: CarryOut,
    ) -> u64;
}

/// Eq. (7): fixed-priority bus — all remote higher-or-equal-priority
/// demand, plus lower-priority accesses capped at one per own access.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedPriorityArbiter;

impl BusArbiter for FixedPriorityArbiter {
    fn policy(&self) -> BusPolicy {
        BusPolicy::FixedPriority
    }

    fn cross_core(
        &self,
        ctx: &AnalysisContext<'_>,
        src: &mut dyn BaoSource,
        i: TaskId,
        t: Time,
        own: u64,
        carry: CarryOut,
    ) -> u64 {
        let core = ctx.tasks()[i].core();
        let mut higher = 0u64;
        let mut lower = 0u64;
        // One pass over the remote cores, accumulating both priority bands
        // (the bands only split the same per-core member walk).
        for y in (0..ctx.platform().cores()).map(CoreId::new) {
            if y == core {
                continue;
            }
            let (hep, low) = src.bao_pair(i, y, t, carry);
            higher = higher.saturating_add(hep);
            lower = lower.saturating_add(low);
        }
        higher.saturating_add(own.min(lower))
    }
}

/// Eq. (8): round-robin bus with `slots` consecutive slots per core — each
/// remote core contributes at most `slots` accesses per own access, with
/// `BAO` taken at the lowest priority level (RR ignores priorities).
#[derive(Debug, Clone, Copy)]
pub struct RoundRobinArbiter {
    /// Memory access slots per core per round (`s ≥ 1`).
    pub slots: u64,
}

impl BusArbiter for RoundRobinArbiter {
    fn policy(&self) -> BusPolicy {
        BusPolicy::RoundRobin { slots: self.slots }
    }

    fn cross_core(
        &self,
        ctx: &AnalysisContext<'_>,
        src: &mut dyn BaoSource,
        i: TaskId,
        t: Time,
        own: u64,
        carry: CarryOut,
    ) -> u64 {
        let tasks = ctx.tasks();
        let core = tasks[i].core();
        // Hoisted out of the per-core loop: the lowest priority level and
        // the per-core slot cap are window-independent.
        let level = tasks.lowest_priority_id();
        let cap = self.slots.saturating_mul(own);
        let mut total = 0u64;
        for y in (0..ctx.platform().cores()).map(CoreId::new) {
            if y == core {
                continue;
            }
            let all = src.bao(level, y, t, PriorityBand::HigherOrEqual, carry);
            total = total.saturating_add(all.min(cap));
        }
        total
    }
}

/// Eq. (9): TDMA bus — non-work-conserving; every own access may wait for
/// the other cores' `slots` slots regardless of actual remote demand.
#[derive(Debug, Clone, Copy)]
pub struct TdmaArbiter {
    /// Memory access slots per core per TDMA cycle (`s ≥ 1`).
    pub slots: u64,
}

impl BusArbiter for TdmaArbiter {
    fn policy(&self) -> BusPolicy {
        BusPolicy::Tdma { slots: self.slots }
    }

    fn consumes_remote_response_times(&self) -> bool {
        false
    }

    fn cross_core(
        &self,
        ctx: &AnalysisContext<'_>,
        _src: &mut dyn BaoSource,
        _i: TaskId,
        _t: Time,
        own: u64,
        _carry: CarryOut,
    ) -> u64 {
        let cores = ctx.platform().cores() as u64;
        let wait_slots = cores.saturating_sub(1).saturating_mul(self.slots);
        wait_slots.saturating_mul(own)
    }
}

/// The idealised contention-free bus: no cross-core term, no blocking
/// access (Fig. 2's reference line).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectArbiter;

impl BusArbiter for PerfectArbiter {
    fn policy(&self) -> BusPolicy {
        BusPolicy::Perfect
    }

    fn charges_blocking(&self) -> bool {
        false
    }

    fn consumes_remote_response_times(&self) -> bool {
        false
    }

    fn cross_core(
        &self,
        _ctx: &AnalysisContext<'_>,
        _src: &mut dyn BaoSource,
        _i: TaskId,
        _t: Time,
        _own: u64,
        _carry: CarryOut,
    ) -> u64 {
        0
    }
}

/// Runs `f` with the arbiter implementing `policy`, constructed on the
/// stack (no allocation — suitable for per-call use on the hot path).
pub fn with_arbiter<R>(policy: BusPolicy, f: impl FnOnce(&dyn BusArbiter) -> R) -> R {
    match policy {
        BusPolicy::FixedPriority => f(&FixedPriorityArbiter),
        BusPolicy::RoundRobin { slots } => f(&RoundRobinArbiter { slots }),
        BusPolicy::Tdma { slots } => f(&TdmaArbiter { slots }),
        BusPolicy::Perfect => f(&PerfectArbiter),
    }
}

/// Boxed arbiter for `policy`, for holders that outlive a single call
/// (the analysis engine builds one per run).
#[must_use]
pub fn arbiter_for(policy: BusPolicy) -> Box<dyn BusArbiter> {
    match policy {
        BusPolicy::FixedPriority => Box::new(FixedPriorityArbiter),
        BusPolicy::RoundRobin { slots } => Box::new(RoundRobinArbiter { slots }),
        BusPolicy::Tdma { slots } => Box::new(TdmaArbiter { slots }),
        BusPolicy::Perfect => Box::new(PerfectArbiter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arbiter_round_trips_policy() {
        for policy in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 3 },
            BusPolicy::Tdma { slots: 2 },
            BusPolicy::Perfect,
        ] {
            with_arbiter(policy, |a| assert_eq!(a.policy(), policy));
            assert_eq!(arbiter_for(policy).policy(), policy);
        }
    }

    #[test]
    fn policy_facts_match_the_equations() {
        // Only the perfect bus skips the +1 blocking access; only FP and RR
        // consume remote response times.
        with_arbiter(BusPolicy::Perfect, |a| {
            assert!(!a.charges_blocking());
            assert!(!a.consumes_remote_response_times());
        });
        with_arbiter(BusPolicy::Tdma { slots: 2 }, |a| {
            assert!(a.charges_blocking());
            assert!(!a.consumes_remote_response_times());
        });
        for policy in [BusPolicy::FixedPriority, BusPolicy::RoundRobin { slots: 2 }] {
            with_arbiter(policy, |a| {
                assert!(a.charges_blocking());
                assert!(a.consumes_remote_response_times());
            });
        }
    }
}
