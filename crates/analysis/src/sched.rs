//! Schedulability aggregation measures.
//!
//! The paper's Fig. 2 plots raw counts of schedulable task sets per core
//! utilization; Fig. 3 compresses the utilization dimension with the
//! *weighted schedulability* measure of Bastoni, Brandenburg and Anderson
//! (OSPERT 2010):
//!
//! ```text
//! W(p) = Σ_τ U(τ) · S(τ, p) / Σ_τ U(τ)
//! ```
//!
//! where the sum ranges over all generated task sets `τ`, `U(τ)` is the
//! total utilization of `τ` and `S(τ, p) ∈ {0, 1}` its schedulability at
//! parameter value `p`. Weighting by utilization rewards analyses that keep
//! *heavily loaded* systems schedulable.

/// Computes the weighted schedulability over `(utilization, schedulable)`
/// samples.
///
/// Returns 0 when the iterator is empty or all utilizations are zero.
///
/// # Example
///
/// ```
/// use cpa_analysis::weighted_schedulability;
/// let w = weighted_schedulability([(0.9, false), (0.3, true)]);
/// assert!((w - 0.25).abs() < 1e-12);
/// assert_eq!(weighted_schedulability([]), 0.0);
/// ```
#[must_use]
pub fn weighted_schedulability<I>(samples: I) -> f64
where
    I: IntoIterator<Item = (f64, bool)>,
{
    let mut acc = WeightedAccumulator::new();
    for (utilization, schedulable) in samples {
        acc.record(utilization, schedulable);
    }
    acc.value()
}

/// Incremental accumulator for [`weighted_schedulability`], convenient when
/// samples are produced across worker threads or experiment batches.
///
/// ```
/// use cpa_analysis::sched::WeightedAccumulator;
/// let mut acc = WeightedAccumulator::new();
/// acc.record(0.5, true);
/// acc.record(0.5, false);
/// assert_eq!(acc.samples(), 2);
/// assert!((acc.value() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WeightedAccumulator {
    weighted: f64,
    total: f64,
    samples: u64,
    schedulable: u64,
}

impl WeightedAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        WeightedAccumulator::default()
    }

    /// Records one task set's total utilization and schedulability verdict.
    pub fn record(&mut self, utilization: f64, schedulable: bool) {
        self.total += utilization;
        self.samples += 1;
        if schedulable {
            self.weighted += utilization;
            self.schedulable += 1;
        }
    }

    /// Merges another accumulator (e.g. from a worker thread).
    pub fn merge(&mut self, other: &WeightedAccumulator) {
        self.weighted += other.weighted;
        self.total += other.total;
        self.samples += other.samples;
        self.schedulable += other.schedulable;
    }

    /// The weighted schedulability; 0 if nothing was recorded.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.weighted / self.total
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Number of samples recorded as schedulable (the unweighted count
    /// plotted by Fig. 2).
    #[must_use]
    pub fn schedulable_count(&self) -> u64 {
        self.schedulable
    }

    /// Unweighted schedulable fraction; 0 if nothing was recorded.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.schedulable as f64 / self.samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(weighted_schedulability([]), 0.0);
        assert_eq!(WeightedAccumulator::new().value(), 0.0);
        assert_eq!(WeightedAccumulator::new().fraction(), 0.0);
    }

    #[test]
    fn all_schedulable_is_one() {
        let w = weighted_schedulability([(0.2, true), (0.9, true)]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_sets_matter_more() {
        // One heavy unschedulable set outweighs three light schedulable ones.
        let w = weighted_schedulability([(3.0, false), (0.5, true), (0.5, true), (0.5, true)]);
        assert!((w - 1.5 / 4.5).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = WeightedAccumulator::new();
        a.record(0.5, true);
        a.record(1.5, false);
        let mut b = WeightedAccumulator::new();
        b.record(2.0, true);
        let mut merged = a;
        merged.merge(&b);
        let mut seq = WeightedAccumulator::new();
        for (u, s) in [(0.5, true), (1.5, false), (2.0, true)] {
            seq.record(u, s);
        }
        assert_eq!(merged, seq);
        assert_eq!(merged.samples(), 3);
        assert_eq!(merged.schedulable_count(), 2);
        assert!((merged.fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn value_is_a_fraction(samples in proptest::collection::vec((0.0f64..10.0, any::<bool>()), 0..50)) {
            let w = weighted_schedulability(samples);
            prop_assert!((0.0..=1.0).contains(&w));
        }
    }
}
