//! Cache persistence-aware memory bus contention and WCRT analysis.
//!
//! This crate implements the full analysis of *Cache Persistence-Aware
//! Memory Bus Contention Analysis for Multicore Systems* (Rashid, Nelissen,
//! Tovar — DATE 2020), together with the persistence-oblivious baseline it
//! extends (Davis et al., *An extensible framework for multicore response
//! time analysis*, Real-Time Systems 2018).
//!
//! # Map from paper to code
//!
//! | Paper | Module / function |
//! |---|---|
//! | Eq. (1) `BAS_i^x(t)` | [`bas::bas_oblivious`] |
//! | Eq. (2) `γ_{i,j,x}` (ECB-union CRPD) | [`crpd`], [`AnalysisContext::gamma`] |
//! | Eq. (3)–(6) `BAO_k^y(t)`, `W`, `W_cout`, `N` | [`bao`] |
//! | Eq. (7) FP bus `BAT_i^x(t)` | [`bus::bat`] with [`BusPolicy::FixedPriority`] |
//! | Eq. (8) RR bus | [`bus::bat`] with [`BusPolicy::RoundRobin`] |
//! | Eq. (9) TDMA bus | [`bus::bat`] with [`BusPolicy::Tdma`] |
//! | Eq. (10) `M̂D_i(n)` | [`demand::md_hat`] |
//! | Eq. (14) `ρ̂_{j,i,x}(n)` (CPRO-union) | [`cpro`], [`AnalysisContext::cpro`] |
//! | Lemma 1 `BÂS_i^x(t)` | [`bas::bas_aware`] |
//! | Lemma 2 `BÂO_k^y(t)` | [`bao::bao_aware`] |
//! | Eq. (19) WCRT recurrence + outer loop | [`wcrt`], [`engine`] |
//! | "perfect bus" reference (Fig. 2) | [`BusPolicy::Perfect`], [`sched`] |
//! | weighted schedulability (Fig. 3) | [`sched::weighted_schedulability`] |
//!
//! The hot path is organised as an engine ([`engine::AnalysisEngine`]):
//! demand bounds are memoized as monotone step curves ([`curve`]), the
//! outer fixed point runs as a dependency-driven worklist, and the
//! per-policy Eq. (7)/(8)/(9) composition lives behind one
//! [`arbiter::BusArbiter`] trait. [`analyze`] always goes through the
//! engine; [`analyze_reference`] keeps the direct sweep as the semantic
//! baseline the engine is differentially pinned against.
//!
//! # Example
//!
//! Analyse a two-core task set under a round-robin bus, with and without
//! cache persistence:
//!
//! ```
//! use cpa_analysis::{AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode, analyze};
//! use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder()
//!     .cores(2)
//!     .memory_latency(Time::from_cycles(10))
//!     .build()?;
//! let mk = |name: &str, prio, core, md, md_r, start| -> Result<Task, cpa_model::ModelError> {
//!     Task::builder(name)
//!         .processing_demand(Time::from_cycles(100))
//!         .memory_demand(md)
//!         .residual_memory_demand(md_r)
//!         .period(Time::from_cycles(10_000))
//!         .deadline(Time::from_cycles(10_000))
//!         .core(CoreId::new(core))
//!         .priority(Priority::new(prio))
//!         .ecb(CacheBlockSet::contiguous(256, start, 40))
//!         .pcb(CacheBlockSet::contiguous(256, start, 30))
//!         .build()
//! };
//! let tasks = TaskSet::new(vec![
//!     mk("a", 1, 0, 40, 10, 0)?,
//!     mk("b", 2, 1, 40, 10, 100)?,
//!     mk("c", 3, 0, 40, 10, 30)?,
//! ])?;
//! let ctx = AnalysisContext::new(&platform, &tasks)?;
//!
//! let aware = analyze(&ctx, &AnalysisConfig::new(
//!     BusPolicy::RoundRobin { slots: 2 },
//!     PersistenceMode::Aware,
//! ));
//! let oblivious = analyze(&ctx, &AnalysisConfig::new(
//!     BusPolicy::RoundRobin { slots: 2 },
//!     PersistenceMode::Oblivious,
//! ));
//! assert!(aware.is_schedulable());
//! // Persistence-aware response times are never worse.
//! for (a, o) in aware.response_times().iter().zip(oblivious.response_times()) {
//!     assert!(a.unwrap() <= o.unwrap());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod arbiter;
pub mod bao;
pub mod bas;
pub mod bus;
mod config;
mod context;
pub mod cpro;
pub mod crpd;
pub mod curve;
pub mod demand;
pub mod diagnose;
pub mod engine;
pub mod sched;
pub mod wcrt;

pub use config::{AnalysisConfig, BusPolicy, PersistenceMode};
pub use context::{AnalysisContext, ContextBuffers, TaskColumns};
pub use crpd::CrpdApproach;
pub use diagnose::{decompose, DominantTerm, TermDecomposition};
pub use engine::AnalysisScratch;
pub use sched::{weighted_schedulability, WeightedAccumulator};
pub use wcrt::{
    analyze, analyze_reference, analyze_with, analyze_with_parent, analyze_with_seed, explain,
    AnalysisResult, ParentSolution, WcrtBreakdown,
};
