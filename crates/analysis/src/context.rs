//! Shared analysis context with precomputed CRPD/CPRO tables.

use cpa_model::{ModelError, Platform, TaskId, TaskSet, Time};

use crate::crpd::CrpdApproach;
use crate::{cpro, crpd};

/// An analysis context binding a [`TaskSet`] to a [`Platform`] with the
/// quadratic CRPD (`γ_{i,j}`) and CPRO-overlap tables precomputed.
///
/// Every bound in this crate is evaluated many times per WCRT fixed point,
/// so the block-set intersections behind Eq. (2) and Eq. (14) are computed
/// once here and then served as table lookups.
///
/// Construct with [`AnalysisContext::new`]; the context borrows the platform
/// and task set, making it cheap to build one per (platform, task set) pair
/// and share it across the six policy/persistence analysis configurations.
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    platform: &'a Platform,
    tasks: &'a TaskSet,
    /// `gamma[i][j]` = `γ_{i,j}` (Eq. (2)), core taken from `τj`.
    gamma: Vec<Vec<u64>>,
    /// `cpro_overlap[p][w]` = per-job CPRO overlap of persistent task `p`
    /// within the response window of task `w` (Eq. (14) without the
    /// `(n−1)` factor).
    cpro_overlap: Vec<Vec<u64>>,
    crpd_approach: CrpdApproach,
}

impl<'a> AnalysisContext<'a> {
    /// Builds the context with the paper's ECB-union CRPD bound,
    /// validating that the task set fits the platform.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors: a task mapped to a
    /// missing core or a cache-geometry mismatch.
    pub fn new(platform: &'a Platform, tasks: &'a TaskSet) -> Result<Self, ModelError> {
        Self::with_crpd_approach(platform, tasks, CrpdApproach::EcbUnion)
    }

    /// [`AnalysisContext::new`] with a selectable CRPD bound (ablation;
    /// see [`CrpdApproach`]).
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors.
    pub fn with_crpd_approach(
        platform: &'a Platform,
        tasks: &'a TaskSet,
        approach: CrpdApproach,
    ) -> Result<Self, ModelError> {
        tasks.validate_against(platform)?;
        let n = tasks.len();
        let mut gamma = vec![vec![0u64; n]; n];
        let mut cpro_overlap = vec![vec![0u64; n]; n];
        for i in tasks.ids() {
            for j in tasks.ids() {
                gamma[i.index()][j.index()] = crpd::gamma_with(tasks, i, j, approach);
                cpro_overlap[i.index()][j.index()] = cpro::cpro_overlap(tasks, i, j);
            }
        }
        Ok(AnalysisContext {
            platform,
            tasks,
            gamma,
            cpro_overlap,
            crpd_approach: approach,
        })
    }

    /// The CRPD approach this context's `γ` table was built with.
    #[must_use]
    pub fn crpd_approach(&self) -> CrpdApproach {
        self.crpd_approach
    }

    /// The platform under analysis.
    #[must_use]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The task set under analysis.
    #[must_use]
    pub fn tasks(&self) -> &'a TaskSet {
        self.tasks
    }

    /// `d_mem`, the worst-case latency of one bus/memory access.
    #[must_use]
    pub fn d_mem(&self) -> Time {
        self.platform.memory_latency()
    }

    /// `γ_{i,j}`: ECB-union CRPD charged per job of `τj` within `τi`'s
    /// response time (Eq. (2)); zero unless `τj` has higher priority.
    #[must_use]
    pub fn gamma(&self, i: TaskId, j: TaskId) -> u64 {
        self.gamma[i.index()][j.index()]
    }

    /// Per-job CPRO overlap of `persistent` within the response window of
    /// `window` (the set-intersection factor of Eq. (14)).
    #[must_use]
    pub fn cpro_overlap(&self, persistent: TaskId, window: TaskId) -> u64 {
        self.cpro_overlap[persistent.index()][window.index()]
    }

    /// `ρ̂(n)` for `persistent` within `window`'s response time (Eq. (14)).
    #[must_use]
    pub fn cpro(&self, persistent: TaskId, window: TaskId, jobs: u64) -> u64 {
        cpro::cpro(self.cpro_overlap(persistent, window), jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Priority, Task};

    fn fig1() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        let tau1 = Task::builder("tau1")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(12))
            .deadline(Time::from_cycles(12))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        let tau2 = Task::builder("tau2")
            .processing_demand(Time::from_cycles(32))
            .memory_demand(8)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(0))
            .priority(Priority::new(2))
            .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
            .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
            .build()
            .unwrap();
        let tau3 = Task::builder("tau3")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(12))
            .deadline(Time::from_cycles(12))
            .core(CoreId::new(1))
            .priority(Priority::new(3))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
    }

    #[test]
    fn fig1_tables() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t1 = tasks.id_of("tau1").unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();

        // γ_{2,1,x} = |UCB_2 ∩ ECB_1| = |{5,6}| = 2 (paper).
        assert_eq!(ctx.gamma(t2, t1), 2);
        // γ is evaluated on the *preemptor's* core: during τ3's window,
        // τ1's preemptions can still evict τ2's UCBs on core x. (BAO on
        // core y never consults this entry since τ1 ∉ Γy.)
        assert_eq!(ctx.gamma(t3, t1), 2);
        assert_eq!(ctx.gamma(t3, t3), 0);

        // CPRO overlap of τ1 within τ2's window: PCB_1 ∩ ECB_2 = {5,6}.
        assert_eq!(ctx.cpro_overlap(t1, t2), 2);
        assert_eq!(ctx.cpro(t1, t2, 3), 4, "paper: ρ̂_{{1,2,x}}(3) = 4");
        // τ3 has no same-core neighbours: zero CPRO in any window.
        assert_eq!(ctx.cpro_overlap(t3, t2), 0);
        assert_eq!(ctx.cpro_overlap(t3, t3), 0);

        assert_eq!(ctx.d_mem(), Time::from_cycles(1));
        assert_eq!(ctx.platform().cores(), 2);
        assert_eq!(ctx.tasks().len(), 3);
    }

    #[test]
    fn rejects_mismatched_platform() {
        let (_, tasks) = fig1();
        let too_small = Platform::builder()
            .cores(1)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        assert!(AnalysisContext::new(&too_small, &tasks).is_err());
    }
}
