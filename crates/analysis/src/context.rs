//! Shared analysis context with precomputed CRPD/CPRO tables.

use cpa_model::{CacheBlockSet, ModelError, Platform, TaskId, TaskSet, Time};

use crate::crpd::CrpdApproach;
use crate::{cpro, crpd};

/// An analysis context binding a [`TaskSet`] to a [`Platform`] with the
/// quadratic CRPD (`γ_{i,j}`) and CPRO-overlap tables precomputed.
///
/// Every bound in this crate is evaluated many times per WCRT fixed point,
/// so the block-set intersections behind Eq. (2) and Eq. (14) are computed
/// once here and then served as table lookups. The tables are flat
/// row-major `n × n` arrays filled by an incremental sweep (see
/// [`fill_tables`]): evictor unions grow monotonically along the priority
/// order, so each entry costs one word-parallel set operation instead of
/// re-folding a union per pair — `O(n²)` set operations and a handful of
/// allocations for the whole context, where the definitional per-pair
/// evaluation (retained as [`AnalysisContext::with_crpd_approach_reference`]
/// and differentially pinned in this module's tests) costs `O(n³)`.
///
/// Construct with [`AnalysisContext::new`]; the context borrows the platform
/// and task set, making it cheap to build one per (platform, task set) pair
/// and share it across the six policy/persistence analysis configurations.
#[derive(Debug)]
pub struct AnalysisContext<'a> {
    platform: &'a Platform,
    tasks: &'a TaskSet,
    /// `gamma[i * n + j]` = `γ_{i,j}` (Eq. (2)), core taken from `τj`.
    gamma: Vec<u64>,
    /// `cpro_overlap[p * n + w]` = per-job CPRO overlap of persistent task
    /// `p` within the response window of task `w` (Eq. (14) without the
    /// `(n−1)` factor).
    cpro_overlap: Vec<u64>,
    /// Struct-of-arrays mirror of the hot per-task scalars (see
    /// [`TaskColumns`]).
    columns: TaskColumns,
    crpd_approach: CrpdApproach,
}

/// Struct-of-arrays mirror of the per-task scalars every inner fixed-point
/// walk reads: periods, demands, persistence parameters, in parallel
/// arrays indexed by task id.
///
/// The [`cpa_model::Task`] record interleaves these hot words with cold
/// data (the name string, three cache block sets), so the fused BAS/BAO
/// walks of [`crate::bas::same_core_terms`] and
/// [`crate::bao::BaoMembers`] striding over `&TaskSet` touch one cache
/// line per scalar read. The columns pack each scalar contiguously —
/// walking a core's eight tasks reads eight adjacent words per field,
/// which both caches well and lets the release-count loops vectorize.
/// Filled once per context build (`O(n)`, recycled via
/// [`ContextBuffers`]); values are verbatim copies, so bounds computed
/// off the columns are bit-identical to bounds computed off the tasks.
#[derive(Debug, Default)]
pub struct TaskColumns {
    /// `T_i` in cycles.
    pub period: Vec<u64>,
    /// `PD_i` in cycles.
    pub pd: Vec<u64>,
    /// `MD_i`.
    pub md: Vec<u64>,
    /// `MD_i^r`.
    pub md_r: Vec<u64>,
    /// `|PCB_i|`.
    pub pcb_len: Vec<u64>,
    /// `D_i` in cycles.
    pub deadline: Vec<u64>,
}

impl TaskColumns {
    /// Refills every column from `tasks` in id order, reusing the
    /// allocations.
    fn refill(&mut self, tasks: &TaskSet) {
        self.period.clear();
        self.pd.clear();
        self.md.clear();
        self.md_r.clear();
        self.pcb_len.clear();
        self.deadline.clear();
        for task in tasks.iter() {
            self.period.push(task.period().cycles());
            self.pd.push(task.processing_demand().cycles());
            self.md.push(task.memory_demand());
            self.md_r.push(task.residual_memory_demand());
            self.pcb_len.push(task.pcb().len() as u64);
            self.deadline.push(task.deadline().cycles());
        }
    }

    /// Freshly filled columns for `tasks`.
    fn of(tasks: &TaskSet) -> Self {
        let mut columns = TaskColumns::default();
        columns.refill(tasks);
        columns
    }
}

/// Fills the flattened `γ` and CPRO-overlap tables with one incremental
/// sweep per table (the fast path behind [`AnalysisContext::new`]).
///
/// Correctness rests on the priority-order monotonicity of the index
/// algebra (task ids are priority order):
///
/// * For a fixed preemptor `j`, the ECB-union evictor set
///   `∪_{h ∈ Γx ∩ hep(j)} ECB_h` depends only on `j` — and over ascending
///   `j` it grows monotonically per core, so one running per-core union
///   serves every `j`. The victim set `aff(i, j)` gains exactly index `i`
///   as `i` ascends, so the `max` (ECB-union), the UCB union (UCB-union)
///   and the "any victim" flag (ECB-only) all update incrementally.
/// * For a fixed persistent task `p`, the CPRO evictor set
///   `∪_{s ∈ Γx ∩ hep(w) \ {p}} ECB_s` gains exactly index `w` as the
///   window task `w` ascends (skipping `s = p`), so one running union per
///   `p` serves its whole row.
fn fill_tables(tasks: &TaskSet, approach: CrpdApproach, gamma: &mut [u64], overlap: &mut [u64]) {
    let n = tasks.len();
    let cache_sets = tasks.cache_sets();
    let num_cores = tasks
        .iter()
        .map(|t| t.core().index())
        .max()
        .map_or(0, |c| c + 1);

    // γ table, one column (fixed preemptor j) at a time.
    match approach {
        CrpdApproach::EcbUnion => {
            let mut ecb_acc: Vec<CacheBlockSet> = (0..num_cores)
                .map(|_| CacheBlockSet::new(cache_sets))
                .collect();
            for j in tasks.ids() {
                let core = tasks[j].core();
                let acc = &mut ecb_acc[core.index()];
                acc.union_in_place(tasks[j].ecb());
                let mut max = 0u64;
                for i in tasks.lp(j) {
                    if tasks[i].core() == core {
                        max = max.max(tasks[i].ucb().intersection_len(acc) as u64);
                    }
                    gamma[i.index() * n + j.index()] = max;
                }
            }
        }
        CrpdApproach::UcbUnion => {
            let mut ucb_acc = CacheBlockSet::new(cache_sets);
            for j in tasks.ids() {
                let core = tasks[j].core();
                let ecb_j = tasks[j].ecb();
                ucb_acc.clear();
                let mut last = 0u64;
                for i in tasks.lp(j) {
                    if tasks[i].core() == core {
                        ucb_acc.union_in_place(tasks[i].ucb());
                        last = ucb_acc.intersection_len(ecb_j) as u64;
                    }
                    gamma[i.index() * n + j.index()] = last;
                }
            }
        }
        CrpdApproach::EcbOnly => {
            for j in tasks.ids() {
                let core = tasks[j].core();
                let len = tasks[j].ecb().len() as u64;
                let mut any_victim = false;
                for i in tasks.lp(j) {
                    any_victim |= tasks[i].core() == core;
                    gamma[i.index() * n + j.index()] = if any_victim { len } else { 0 };
                }
            }
        }
    }

    // CPRO-overlap table, one row (fixed persistent task p) at a time.
    let mut evictors = CacheBlockSet::new(cache_sets);
    for p in tasks.ids() {
        let pcb = tasks[p].pcb();
        if pcb.is_empty() {
            continue; // row stays all-zero: nothing persistent to evict
        }
        let core = tasks[p].core();
        evictors.clear();
        let mut last = 0u64;
        for w in tasks.ids() {
            if w != p && tasks[w].core() == core {
                evictors.union_in_place(tasks[w].ecb());
                last = pcb.intersection_len(&evictors) as u64;
            }
            overlap[p.index() * n + w.index()] = last;
        }
    }
}

/// Recyclable backing storage for [`AnalysisContext`] tables.
///
/// An optimizer evaluating thousands of candidate configurations builds a
/// fresh context per candidate — the `γ`/CPRO tables genuinely change
/// with every partitioning, priority or coloring move — but the two
/// `n × n` allocations behind them do not have to be re-made each time.
/// A worker keeps one `ContextBuffers`, builds each candidate's context
/// with [`AnalysisContext::with_crpd_approach_buffers`], and hands the
/// vectors back with [`AnalysisContext::recycle`]; in steady state a
/// context rebuild is the incremental `O(n²)` table fill and zero heap
/// allocations. Reuses are counted on `analysis.context_recycles`.
#[derive(Debug, Default)]
pub struct ContextBuffers {
    gamma: Vec<u64>,
    cpro_overlap: Vec<u64>,
    columns: TaskColumns,
}

impl ContextBuffers {
    /// Empty buffers; capacity grows on first use and then sticks.
    #[must_use]
    pub fn new() -> Self {
        ContextBuffers::default()
    }
}

impl<'a> AnalysisContext<'a> {
    /// Builds the context with the paper's ECB-union CRPD bound,
    /// validating that the task set fits the platform.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors: a task mapped to a
    /// missing core or a cache-geometry mismatch.
    pub fn new(platform: &'a Platform, tasks: &'a TaskSet) -> Result<Self, ModelError> {
        Self::with_crpd_approach(platform, tasks, CrpdApproach::EcbUnion)
    }

    /// [`AnalysisContext::new`] with a selectable CRPD bound (ablation;
    /// see [`CrpdApproach`]).
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors.
    pub fn with_crpd_approach(
        platform: &'a Platform,
        tasks: &'a TaskSet,
        approach: CrpdApproach,
    ) -> Result<Self, ModelError> {
        tasks.validate_against(platform)?;
        let n = tasks.len();
        let mut gamma = vec![0u64; n * n];
        let mut cpro_overlap = vec![0u64; n * n];
        fill_tables(tasks, approach, &mut gamma, &mut cpro_overlap);
        Ok(AnalysisContext {
            platform,
            tasks,
            gamma,
            cpro_overlap,
            columns: TaskColumns::of(tasks),
            crpd_approach: approach,
        })
    }

    /// [`AnalysisContext::with_crpd_approach`] backed by recycled table
    /// storage — the coloring-aware context-rebuild hook of the optimizer
    /// hot loop (see [`ContextBuffers`]). Semantically identical to a
    /// fresh build: the tables are fully refilled for *this* task set;
    /// only the allocations are reused.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors.
    pub fn with_crpd_approach_buffers(
        platform: &'a Platform,
        tasks: &'a TaskSet,
        approach: CrpdApproach,
        buffers: &mut ContextBuffers,
    ) -> Result<Self, ModelError> {
        tasks.validate_against(platform)?;
        let n = tasks.len();
        let mut gamma = std::mem::take(&mut buffers.gamma);
        let mut cpro_overlap = std::mem::take(&mut buffers.cpro_overlap);
        let mut columns = std::mem::take(&mut buffers.columns);
        if gamma.capacity() >= n * n {
            cpa_obs::counter("analysis.context_recycles").incr();
        }
        gamma.clear();
        gamma.resize(n * n, 0);
        cpro_overlap.clear();
        cpro_overlap.resize(n * n, 0);
        fill_tables(tasks, approach, &mut gamma, &mut cpro_overlap);
        columns.refill(tasks);
        Ok(AnalysisContext {
            platform,
            tasks,
            gamma,
            cpro_overlap,
            columns,
            crpd_approach: approach,
        })
    }

    /// Returns the context's table storage to `buffers` for the next
    /// [`AnalysisContext::with_crpd_approach_buffers`] build.
    pub fn recycle(self, buffers: &mut ContextBuffers) {
        buffers.gamma = self.gamma;
        buffers.cpro_overlap = self.cpro_overlap;
        buffers.columns = self.columns;
    }

    /// [`AnalysisContext::with_crpd_approach`] with the tables evaluated
    /// entry by entry from the definitional [`crpd::gamma_with`] /
    /// [`cpro::cpro_overlap`] — the `O(n³)` baseline the incremental
    /// [`fill_tables`] sweep is differentially pinned against (and the
    /// "current main" leg of the `sweep_e2e` bench).
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors.
    pub fn with_crpd_approach_reference(
        platform: &'a Platform,
        tasks: &'a TaskSet,
        approach: CrpdApproach,
    ) -> Result<Self, ModelError> {
        tasks.validate_against(platform)?;
        let n = tasks.len();
        let mut gamma = vec![0u64; n * n];
        let mut cpro_overlap = vec![0u64; n * n];
        for i in tasks.ids() {
            for j in tasks.ids() {
                gamma[i.index() * n + j.index()] = crpd::gamma_with(tasks, i, j, approach);
                cpro_overlap[i.index() * n + j.index()] = cpro::cpro_overlap(tasks, i, j);
            }
        }
        Ok(AnalysisContext {
            platform,
            tasks,
            gamma,
            cpro_overlap,
            columns: TaskColumns::of(tasks),
            crpd_approach: approach,
        })
    }

    /// The CRPD approach this context's `γ` table was built with.
    #[must_use]
    pub fn crpd_approach(&self) -> CrpdApproach {
        self.crpd_approach
    }

    /// The platform under analysis.
    #[must_use]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The task set under analysis.
    #[must_use]
    pub fn tasks(&self) -> &'a TaskSet {
        self.tasks
    }

    /// `d_mem`, the worst-case latency of one bus/memory access.
    #[must_use]
    pub fn d_mem(&self) -> Time {
        self.platform.memory_latency()
    }

    /// The struct-of-arrays mirror of the hot per-task scalars (see
    /// [`TaskColumns`]).
    #[must_use]
    pub fn columns(&self) -> &TaskColumns {
        &self.columns
    }

    /// `γ_{i,j}`: ECB-union CRPD charged per job of `τj` within `τi`'s
    /// response time (Eq. (2)); zero unless `τj` has higher priority.
    #[must_use]
    pub fn gamma(&self, i: TaskId, j: TaskId) -> u64 {
        self.gamma[i.index() * self.tasks.len() + j.index()]
    }

    /// Per-job CPRO overlap of `persistent` within the response window of
    /// `window` (the set-intersection factor of Eq. (14)).
    #[must_use]
    pub fn cpro_overlap(&self, persistent: TaskId, window: TaskId) -> u64 {
        self.cpro_overlap[persistent.index() * self.tasks.len() + window.index()]
    }

    /// `ρ̂(n)` for `persistent` within `window`'s response time (Eq. (14)).
    #[must_use]
    pub fn cpro(&self, persistent: TaskId, window: TaskId, jobs: u64) -> u64 {
        cpro::cpro(self.cpro_overlap(persistent, window), jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Priority, Task};

    fn fig1() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        let tau1 = Task::builder("tau1")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(12))
            .deadline(Time::from_cycles(12))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        let tau2 = Task::builder("tau2")
            .processing_demand(Time::from_cycles(32))
            .memory_demand(8)
            .period(Time::from_cycles(100))
            .deadline(Time::from_cycles(100))
            .core(CoreId::new(0))
            .priority(Priority::new(2))
            .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
            .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
            .build()
            .unwrap();
        let tau3 = Task::builder("tau3")
            .processing_demand(Time::from_cycles(4))
            .memory_demand(6)
            .residual_memory_demand(1)
            .period(Time::from_cycles(12))
            .deadline(Time::from_cycles(12))
            .core(CoreId::new(1))
            .priority(Priority::new(3))
            .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
            .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
            .build()
            .unwrap();
        (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
    }

    #[test]
    fn fig1_tables() {
        let (platform, tasks) = fig1();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t1 = tasks.id_of("tau1").unwrap();
        let t2 = tasks.id_of("tau2").unwrap();
        let t3 = tasks.id_of("tau3").unwrap();

        // γ_{2,1,x} = |UCB_2 ∩ ECB_1| = |{5,6}| = 2 (paper).
        assert_eq!(ctx.gamma(t2, t1), 2);
        // γ is evaluated on the *preemptor's* core: during τ3's window,
        // τ1's preemptions can still evict τ2's UCBs on core x. (BAO on
        // core y never consults this entry since τ1 ∉ Γy.)
        assert_eq!(ctx.gamma(t3, t1), 2);
        assert_eq!(ctx.gamma(t3, t3), 0);

        // CPRO overlap of τ1 within τ2's window: PCB_1 ∩ ECB_2 = {5,6}.
        assert_eq!(ctx.cpro_overlap(t1, t2), 2);
        assert_eq!(ctx.cpro(t1, t2, 3), 4, "paper: ρ̂_{{1,2,x}}(3) = 4");
        // τ3 has no same-core neighbours: zero CPRO in any window.
        assert_eq!(ctx.cpro_overlap(t3, t2), 0);
        assert_eq!(ctx.cpro_overlap(t3, t3), 0);

        assert_eq!(ctx.d_mem(), Time::from_cycles(1));
        assert_eq!(ctx.platform().cores(), 2);
        assert_eq!(ctx.tasks().len(), 3);
    }

    #[test]
    fn rejects_mismatched_platform() {
        let (_, tasks) = fig1();
        let too_small = Platform::builder()
            .cores(1)
            .memory_latency(Time::from_cycles(1))
            .build()
            .unwrap();
        assert!(AnalysisContext::new(&too_small, &tasks).is_err());
    }

    #[test]
    fn incremental_fill_matches_reference_on_fig1() {
        let (platform, tasks) = fig1();
        for approach in [
            CrpdApproach::EcbUnion,
            CrpdApproach::UcbUnion,
            CrpdApproach::EcbOnly,
        ] {
            let fast = AnalysisContext::with_crpd_approach(&platform, &tasks, approach).unwrap();
            let reference =
                AnalysisContext::with_crpd_approach_reference(&platform, &tasks, approach).unwrap();
            assert_eq!(fast.gamma, reference.gamma, "{approach:?}");
            assert_eq!(fast.cpro_overlap, reference.cpro_overlap, "{approach:?}");
        }
    }

    #[test]
    fn recycled_buffers_match_fresh_builds() {
        let (platform, tasks) = fig1();
        let mut buffers = ContextBuffers::new();
        for approach in [
            CrpdApproach::EcbUnion,
            CrpdApproach::UcbUnion,
            CrpdApproach::EcbOnly,
        ] {
            let fresh = AnalysisContext::with_crpd_approach(&platform, &tasks, approach).unwrap();
            let recycled = AnalysisContext::with_crpd_approach_buffers(
                &platform,
                &tasks,
                approach,
                &mut buffers,
            )
            .unwrap();
            assert_eq!(recycled.gamma, fresh.gamma, "{approach:?}");
            assert_eq!(recycled.cpro_overlap, fresh.cpro_overlap, "{approach:?}");
            recycled.recycle(&mut buffers);
        }
        // A second build after recycling reuses the same allocation.
        let before = cpa_obs::counter("analysis.context_recycles").get();
        let ctx = AnalysisContext::with_crpd_approach_buffers(
            &platform,
            &tasks,
            CrpdApproach::EcbUnion,
            &mut buffers,
        )
        .unwrap();
        assert!(cpa_obs::counter("analysis.context_recycles").get() > before);
        ctx.recycle(&mut buffers);

        // Recycling across *different* task sets (the optimizer pattern:
        // same worker, new candidate) still matches a fresh build.
        let tasks_small = TaskSet::new(vec![tasks[cpa_model::TaskId::new(0)].clone()]).unwrap();
        let fresh = AnalysisContext::new(&platform, &tasks_small).unwrap();
        let recycled = AnalysisContext::with_crpd_approach_buffers(
            &platform,
            &tasks_small,
            CrpdApproach::EcbUnion,
            &mut buffers,
        )
        .unwrap();
        assert_eq!(recycled.gamma, fresh.gamma);
        assert_eq!(recycled.cpro_overlap, fresh.cpro_overlap);
    }

    #[test]
    fn incremental_fill_matches_reference_on_generated_sets() {
        use cpa_workload::{GeneratorConfig, TaskSetGenerator};
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        for (seed, util) in [(11u64, 0.3), (12, 0.6), (13, 0.9)] {
            let gen = GeneratorConfig::paper_default().with_per_core_utilization(util);
            let generator = TaskSetGenerator::new(gen.clone()).unwrap();
            let platform = Platform::builder()
                .cores(gen.cores)
                .cache(cpa_model::CacheGeometry::direct_mapped(gen.cache_sets, 32))
                .memory_latency(gen.d_mem)
                .build()
                .unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let tasks = generator.generate(&mut rng).unwrap();
            for approach in [
                CrpdApproach::EcbUnion,
                CrpdApproach::UcbUnion,
                CrpdApproach::EcbOnly,
            ] {
                let fast =
                    AnalysisContext::with_crpd_approach(&platform, &tasks, approach).unwrap();
                let reference =
                    AnalysisContext::with_crpd_approach_reference(&platform, &tasks, approach)
                        .unwrap();
                assert_eq!(fast.gamma, reference.gamma, "seed {seed} {approach:?}");
                assert_eq!(
                    fast.cpro_overlap, reference.cpro_overlap,
                    "seed {seed} {approach:?}"
                );
            }
        }
    }
}
