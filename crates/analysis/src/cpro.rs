//! Cache persistence reload overhead (CPRO) via the CPRO-union approach.
//!
//! A task cannot evict its own persistent cache blocks, but other tasks
//! interleaved or preempting on the same core can. Eq. (14) of the paper
//! (the CPRO-union approach of Rashid et al., ECRTS 2016) bounds the extra
//! bus accesses of `n_j` successive jobs of `τj` executing within the
//! response time of `τi`:
//!
//! ```text
//! ρ̂_{j,i,x}(n_j) = (n_j − 1) · | PCB_j ∩ ( ∪_{s ∈ Γx ∩ hep(i) \ {j}} ECB_s ) |
//! ```
//!
//! Only `n_j − 1` jobs pay the overhead: the first job's full demand `MD_j`
//! (or its share of `M̂D_j`) already covers its PCB loads.
//!
//! Note on subscripts: Eq. (14) writes the pair as `ρ̂_{j,i,x}` (persistent
//! task first), while Lemma 2 writes `ρ̂_{k,l,y}` with the window task `k`
//! first. Both denote the same quantity — the CPRO of the task whose jobs
//! are being counted (`j` resp. `l`), evicted by the tasks of *its own core*
//! that may run during the response window of the task under analysis
//! (`i` resp. `k`). This module uses explicit parameter names
//! (`persistent`, `window`) to avoid the ambiguity.

use cpa_model::{CacheBlockSet, TaskId, TaskSet};

/// The per-job CPRO eviction overlap
/// `| PCB_persistent ∩ ∪_{s ∈ Γ_{core(persistent)} ∩ hep(window) \ {persistent}} ECB_s |`.
///
/// `persistent` is the task whose PCBs may be evicted; `window` is the task
/// under analysis whose response time defines which tasks may run (all of
/// `hep(window)`). Only tasks on `persistent`'s own core evict its PCBs —
/// caches are private, so remote cores never touch them.
///
/// # Example
///
/// The Fig. 1 overlap: `PCB_1 = {5,6,7,8,10}`, `ECB_2 = {1..6}` on the same
/// core, giving 2 reloads per subsequent job of `τ1`.
///
/// ```
/// use cpa_analysis::cpro::{cpro, cpro_overlap};
/// # use cpa_model::{CacheBlockSet, CoreId, Priority, Task, TaskSet, Time};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let tau1 = Task::builder("tau1")
/// #     .processing_demand(Time::from_cycles(4)).memory_demand(6)
/// #     .residual_memory_demand(1)
/// #     .period(Time::from_cycles(100)).deadline(Time::from_cycles(100))
/// #     .core(CoreId::new(0)).priority(Priority::new(1))
/// #     .ecb(CacheBlockSet::from_blocks(256, 5..=10)?)
/// #     .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10])?)
/// #     .build()?;
/// # let tau2 = Task::builder("tau2")
/// #     .processing_demand(Time::from_cycles(32)).memory_demand(8)
/// #     .period(Time::from_cycles(400)).deadline(Time::from_cycles(400))
/// #     .core(CoreId::new(0)).priority(Priority::new(2))
/// #     .ecb(CacheBlockSet::from_blocks(256, 1..=6)?)
/// #     .build()?;
/// # let tasks = TaskSet::new(vec![tau1, tau2])?;
/// let t1 = tasks.id_of("tau1").unwrap();
/// let t2 = tasks.id_of("tau2").unwrap();
/// let overlap = cpro_overlap(&tasks, t1, t2);
/// assert_eq!(overlap, 2);
/// // Three jobs of τ1 in τ2's response time ⇒ ρ̂ = (3−1)·2 = 4.
/// assert_eq!(cpro(overlap, 3), 4);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn cpro_overlap(tasks: &TaskSet, persistent: TaskId, window: TaskId) -> u64 {
    let core = tasks[persistent].core();
    let mut evictors = CacheBlockSet::new(tasks.cache_sets());
    for s in tasks.hep_on(window, core) {
        if s != persistent {
            evictors.union_in_place(tasks[s].ecb());
        }
    }
    tasks[persistent].pcb().intersection_len(&evictors) as u64
}

/// `ρ̂(n)` from a precomputed per-job overlap: `(n − 1) · overlap`, and 0
/// for `n ≤ 1` (a single job pays no reload overhead).
#[must_use]
pub fn cpro(overlap: u64, jobs: u64) -> u64 {
    jobs.saturating_sub(1).saturating_mul(overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CoreId, Priority, Task, Time};

    fn task(
        name: &str,
        prio: u32,
        core: usize,
        ecb: impl IntoIterator<Item = usize>,
        pcb: impl IntoIterator<Item = usize>,
    ) -> Task {
        let ecb = CacheBlockSet::from_blocks(64, ecb).unwrap();
        let pcb = CacheBlockSet::from_blocks(64, pcb).unwrap();
        let pcb = pcb.intersection(&ecb);
        Task::builder(name)
            .processing_demand(Time::from_cycles(10))
            .memory_demand(8)
            .residual_memory_demand(2)
            .period(Time::from_cycles(1_000))
            .deadline(Time::from_cycles(1_000))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(ecb)
            .pcb(pcb)
            .build()
            .unwrap()
    }

    #[test]
    fn excludes_the_persistent_task_itself() {
        // Only "p" on its core: by definition it cannot evict its own PCBs.
        let ts = TaskSet::new(vec![
            task("p", 1, 0, 0..10, 0..10),
            task("w", 2, 1, 0..10, []),
        ])
        .unwrap();
        let p = ts.id_of("p").unwrap();
        let w = ts.id_of("w").unwrap();
        assert_eq!(cpro_overlap(&ts, p, w), 0);
    }

    #[test]
    fn remote_tasks_never_evict() {
        let ts = TaskSet::new(vec![
            task("p", 1, 0, 0..10, 0..10),
            task("remote", 2, 1, 0..10, []),
            task("w", 3, 0, 20..25, []),
        ])
        .unwrap();
        let p = ts.id_of("p").unwrap();
        let w = ts.id_of("w").unwrap();
        // "remote" fully overlaps p's PCBs but sits on another core; "w" is
        // disjoint. No CPRO.
        assert_eq!(cpro_overlap(&ts, p, w), 0);
    }

    #[test]
    fn window_priority_limits_evictors() {
        // Evictors are restricted to hep(window) on the persistent task's
        // core: tasks with lower priority than the window task don't count.
        let ts = TaskSet::new(vec![
            task("p", 1, 0, 0..10, 0..10),
            task("w", 2, 0, 0..4, []),
            task("below", 3, 0, 4..8, []),
        ])
        .unwrap();
        let p = ts.id_of("p").unwrap();
        let w = ts.id_of("w").unwrap();
        let below = ts.id_of("below").unwrap();
        assert_eq!(cpro_overlap(&ts, p, w), 4);
        // For a window at the lowest priority, "below" joins the evictors.
        assert_eq!(cpro_overlap(&ts, p, below), 8);
    }

    #[test]
    fn cpro_counts_jobs_minus_one() {
        assert_eq!(cpro(2, 0), 0);
        assert_eq!(cpro(2, 1), 0);
        assert_eq!(cpro(2, 3), 4);
        assert_eq!(cpro(0, 100), 0);
        assert_eq!(cpro(u64::MAX, 3), u64::MAX); // saturates, never wraps
    }
}
