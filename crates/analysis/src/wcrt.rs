//! Worst-case response time analysis: Eq. (19) with an outer loop.
//!
//! The response time of `τi` is the least fixed point of
//!
//! ```text
//! R_i = PD_i + Σ_{j ∈ Γx ∩ hp(i)} ⌈R_i / T_j⌉ · PD_j + BAT_i^x(R_i) · d_mem
//! ```
//!
//! Because `BAT` consumes the response times of tasks on *other* cores
//! (through Eq. (5)/(6)), the per-task fixed points are nested in an outer
//! loop over the whole task set: all estimates start at
//! `PD_i + MD_i · d_mem` and only ever grow, so the outer iteration is a
//! monotone fixed point too and terminates as soon as either no estimate
//! changes or some estimate exceeds its deadline (unschedulable), exactly
//! as described at the end of §IV of the paper.

use cpa_model::{TaskId, TaskSetFingerprint, Time};

use crate::crpd::CrpdApproach;
use crate::{bus, AnalysisConfig, AnalysisContext, BusPolicy};

/// Result of a full WCRT analysis of a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResult {
    pub(crate) response_times: Vec<Option<Time>>,
    pub(crate) schedulable: bool,
    pub(crate) outer_iterations: u32,
    pub(crate) inner_iterations: Vec<u64>,
    pub(crate) hit_outer_cap: bool,
}

impl AnalysisResult {
    /// `true` iff every task's WCRT converged within its deadline (and, for
    /// [`BusPolicy::Perfect`], the bus utilization test passed).
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.schedulable
    }

    /// `true` iff `τi`'s WCRT converged within its deadline — the ergonomic
    /// form of `response_time(i).is_some()`.
    #[must_use]
    pub fn converged(&self, i: TaskId) -> bool {
        self.response_time(i).is_some()
    }

    /// Per-task totals of inner fixed-point iterations (bracket + refine
    /// steps, summed across every outer sweep), in priority order.
    #[must_use]
    pub fn inner_iteration_counts(&self) -> &[u64] {
        &self.inner_iterations
    }

    /// Total inner fixed-point iterations spent on one task (see
    /// [`AnalysisResult::inner_iteration_counts`]).
    #[must_use]
    pub fn inner_iterations(&self, i: TaskId) -> u64 {
        self.inner_iterations.get(i.index()).copied().unwrap_or(0)
    }

    /// `true` when the outer loop exhausted
    /// [`crate::AnalysisConfig::max_outer_iterations`] without stabilising;
    /// the result is then reported unschedulable and a `wcrt.outer_cap`
    /// warning event is emitted.
    #[must_use]
    pub fn hit_outer_iteration_cap(&self) -> bool {
        self.hit_outer_cap
    }

    /// Per-task response times in priority order. `Some(R_i)` for every task
    /// when schedulable; on an unschedulable result, tasks whose estimate
    /// exceeded their deadline (or never converged) are `None` and the
    /// remaining entries are the estimates at the point the analysis
    /// stopped — useful for diagnosis, not guaranteed to be final.
    #[must_use]
    pub fn response_times(&self) -> &[Option<Time>] {
        &self.response_times
    }

    /// Response time of one task (see [`AnalysisResult::response_times`]).
    #[must_use]
    pub fn response_time(&self, i: TaskId) -> Option<Time> {
        self.response_times.get(i.index()).copied().flatten()
    }

    /// Number of outer iterations the analysis performed.
    #[must_use]
    pub fn outer_iterations(&self) -> u32 {
        self.outer_iterations
    }
}

/// Runs the full WCRT analysis (Eq. (19)) for every task under the given
/// configuration, through the memoized [`crate::engine::AnalysisEngine`]
/// (demand-curve cache plus dependency-driven outer worklist; results are
/// identical to [`analyze_reference`], see the `engine_equivalence`
/// differential test).
///
/// For [`BusPolicy::Perfect`] the paper's reference line additionally
/// requires the total bus utilization `Σ MD_i · d_mem / T_i ≤ 1`; task sets
/// failing that test are reported unschedulable without running the fixed
/// point.
#[must_use]
pub fn analyze(ctx: &AnalysisContext<'_>, config: &AnalysisConfig) -> AnalysisResult {
    analyze_with(ctx, config, &mut crate::engine::AnalysisScratch::new())
}

/// [`analyze`] with caller-provided working storage: sweep workers keep
/// one [`crate::engine::AnalysisScratch`] per thread and reuse it across
/// thousands of calls, so the engine's vectors are reset in place instead
/// of reallocated per task set. Results are byte-identical to [`analyze`].
#[must_use]
pub fn analyze_with(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    scratch: &mut crate::engine::AnalysisScratch,
) -> AnalysisResult {
    let result = crate::engine::AnalysisEngine::new(ctx, config, scratch).run();
    if warm_cross_check_enabled() {
        cross_check_against_cold(ctx, config, &result);
    }
    result
}

/// [`analyze_with`] additionally offered per-task response-time hints
/// from a neighbouring solve (a parent optimizer candidate, the previous
/// configuration of the same set). The seed is a *hint, never an input*:
/// a component is adopted only when it provably equals the value the
/// cold iteration starts from, and every other component — over-estimates
/// in particular — is rejected and re-derived by the unmodified cold
/// iterate chain. Results are therefore bitwise identical to
/// [`analyze_with`] and [`analyze`] (the warm-equivalence proptests pin
/// every output field, iteration counts included); the actual speedup
/// comes from the scratch's certified structural retention, which the
/// seeded call path keeps alive across neighbouring solves.
#[must_use]
pub fn analyze_with_seed(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    scratch: &mut crate::engine::AnalysisScratch,
    seed: &[Time],
) -> AnalysisResult {
    let mut engine = crate::engine::AnalysisEngine::new(ctx, config, scratch);
    engine.offer_seed(seed);
    let result = engine.run();
    if warm_cross_check_enabled() {
        cross_check_against_cold(ctx, config, &result);
    }
    result
}

/// A fully converged solve of one task set, captured as the certification
/// base for partial re-solve (DESIGN.md §16).
///
/// A parent pairs the solved set's [`TaskSetFingerprint`] and the complete
/// analysis environment (bus, mode, `d_mem`, core count, CRPD approach,
/// iteration caps) with the converged response times and per-task inner
/// iteration counts. [`analyze_with_parent`] compares the parent against
/// the set it is asked to solve and certifies — per task — which response
/// times are *provably* the values a cold solve would derive, re-running
/// the fixed point only for the rest. Only schedulable results can act as
/// parents ([`ParentSolution::capture`] returns `None` otherwise): an
/// unschedulable result's partial snapshot is not a fixed point, so
/// nothing in it certifies anything.
#[derive(Debug, Clone)]
pub struct ParentSolution {
    pub(crate) fingerprint: TaskSetFingerprint,
    pub(crate) config: AnalysisConfig,
    pub(crate) d_mem: Time,
    pub(crate) cores: usize,
    pub(crate) crpd: CrpdApproach,
    pub(crate) resp: Vec<Time>,
    pub(crate) inner: Vec<u64>,
    pub(crate) outer: u32,
}

impl ParentSolution {
    /// Captures `result` — a solve of `ctx` under `config` — as a
    /// certification base. Returns `None` unless the result is
    /// schedulable (every response time converged).
    #[must_use]
    pub fn capture(
        ctx: &AnalysisContext<'_>,
        config: &AnalysisConfig,
        result: &AnalysisResult,
    ) -> Option<Self> {
        if !result.schedulable || result.hit_outer_cap {
            return None;
        }
        let resp: Option<Vec<Time>> = result.response_times.iter().copied().collect();
        Some(ParentSolution {
            fingerprint: TaskSetFingerprint::of(ctx.tasks()),
            config: *config,
            d_mem: ctx.d_mem(),
            cores: ctx.platform().cores(),
            crpd: ctx.crpd_approach(),
            resp: resp?,
            inner: result.inner_iterations.clone(),
            outer: result.outer_iterations,
        })
    }

    /// The parent's converged per-task response times, in priority order.
    #[must_use]
    pub fn response_times(&self) -> &[Time] {
        &self.resp
    }
}

/// [`analyze_with`] additionally given a [`ParentSolution`] — a converged
/// solve of a *related* task set — whose response times are adopted for
/// every task the [`cpa_model::TaskSetDelta`] between the two sets
/// certifies as untouched, skipping those tasks' fixed points entirely.
///
/// The certification rules (proved in DESIGN.md §16):
///
/// * If the delta is [`identical`](cpa_model::TaskSetDelta::identical)
///   and the analysis environment matches, the parent *is* the cold
///   result and is replayed outright — under any bus policy.
/// * Under arbiters that never consume remote response times (TDMA,
///   perfect bus), task `i` is certified when it is
///   [`task_unchanged`](cpa_model::TaskSetDelta::task_unchanged) and its
///   core is [`core_untouched`](cpa_model::TaskSetDelta::core_untouched):
///   its recurrence reads only its own columns, its same-core hp set and
///   their CRPD/CPRO rows — all provably identical — so its cold solve
///   would reproduce the parent's bound and iteration count verbatim.
/// * Under FP/RR every task reads every other core's estimates, so no
///   per-task certificate short of set identity exists and the parent is
///   ignored (the run degrades to [`analyze_with`]).
///
/// Results — response times, schedulability, and both iteration-count
/// families — are bitwise identical to a cold [`analyze`] (pinned by the
/// `partial_equivalence` proptests and, under `CPA_WARM_CROSS_CHECK`, by
/// an in-process cold re-solve on every call).
#[must_use]
pub fn analyze_with_parent(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    scratch: &mut crate::engine::AnalysisScratch,
    parent: &ParentSolution,
) -> AnalysisResult {
    let mut engine = crate::engine::AnalysisEngine::new(ctx, config, scratch);
    engine.offer_parent(parent);
    let result = engine.run();
    if warm_cross_check_enabled() {
        cross_check_against_cold(ctx, config, &result);
    }
    result
}

/// Whether `CPA_WARM_CROSS_CHECK` is set (to anything but `0`): every
/// warm/seeded analysis then re-runs cold on a fresh scratch and asserts
/// full bitwise equality — the belt-and-braces mode ci.sh uses for the
/// warm-equivalence smoke test. Read once per process.
fn warm_cross_check_enabled() -> bool {
    static FLAG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FLAG.get_or_init(|| std::env::var_os("CPA_WARM_CROSS_CHECK").is_some_and(|v| v != "0"))
}

/// Re-runs `ctx` × `config` cold (fresh scratch, no retention) and
/// asserts the warm result matches field for field.
fn cross_check_against_cold(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    warm: &AnalysisResult,
) {
    let cold =
        crate::engine::AnalysisEngine::new(ctx, config, &mut crate::engine::AnalysisScratch::new())
            .run();
    assert_eq!(
        warm.response_times, cold.response_times,
        "warm/cold divergence: response times"
    );
    assert_eq!(
        warm.schedulable, cold.schedulable,
        "warm/cold divergence: schedulability"
    );
    assert_eq!(
        warm.outer_iterations, cold.outer_iterations,
        "warm/cold divergence: outer iterations"
    );
    assert_eq!(
        warm.inner_iterations, cold.inner_iterations,
        "warm/cold divergence: inner iterations"
    );
    assert_eq!(
        warm.hit_outer_cap, cold.hit_outer_cap,
        "warm/cold divergence: outer cap"
    );
}

/// The perfect-bus residual bus-utilization gate shared by [`analyze`] and
/// [`analyze_reference`]: `Some(unschedulable)` when the bus itself is
/// oversubscribed, `None` when the fixed point should run.
///
/// The perfect-bus reference line assumes no bus interference as long as
/// the bus is not oversubscribed. Its utilization test uses the
/// steady-state per-job demand (the residual demand MD^r — PCB loads
/// amortise to zero across jobs), so the line stays an upper envelope of
/// the persistence-aware analyses.
pub(crate) fn perfect_bus_check(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
) -> Option<AnalysisResult> {
    if config.bus != BusPolicy::Perfect {
        return None;
    }
    let tasks = ctx.tasks();
    let d_mem = ctx.d_mem();
    let residual_bus_utilization: f64 = tasks
        .iter()
        .map(|t| {
            (t.residual_memory_demand() as f64 * d_mem.cycles() as f64) / t.period().cycles() as f64
        })
        .sum();
    if residual_bus_utilization > 1.0 {
        cpa_obs::event!(
            "wcrt.bus_overutilized",
            bus = config.bus.label(),
            utilization_permille = (residual_bus_utilization * 1000.0) as u64,
        );
        return Some(AnalysisResult {
            response_times: vec![None; tasks.len()],
            schedulable: false,
            outer_iterations: 0,
            inner_iterations: vec![0u64; tasks.len()],
            hit_outer_cap: false,
        });
    }
    None
}

/// Initial estimates `R_i = PD_i + MD_i · d_mem` (§IV), the floor every
/// monotone outer iteration starts from.
pub(crate) fn initial_estimates(ctx: &AnalysisContext<'_>) -> Vec<Time> {
    let mut out = Vec::new();
    fill_initial_estimates(ctx, &mut out);
    out
}

/// [`initial_estimates`] into a recycled buffer (the engine-scratch path).
pub(crate) fn fill_initial_estimates(ctx: &AnalysisContext<'_>, out: &mut Vec<Time>) {
    let d_mem = ctx.d_mem();
    out.clear();
    out.extend(ctx.tasks().iter().map(|t| {
        t.processing_demand()
            .saturating_add(d_mem.saturating_mul(t.memory_demand()))
    }));
}

/// Emits the per-task `wcrt.converged` trace events (with the BAS/BAO/
/// CPRO/CRPD decomposition) for a converged fixed point; shared by both
/// analysis paths.
pub(crate) fn emit_converged_events(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    resp: &[Time],
    inner_iterations: &[u64],
) {
    if !cpa_obs::events_enabled() {
        return;
    }
    for i in ctx.tasks().ids() {
        let d = crate::diagnose::decompose(ctx, config, i, resp[i.index()], resp);
        cpa_obs::event!(
            "wcrt.converged",
            task = i.index(),
            response = resp[i.index()].cycles(),
            inner = inner_iterations[i.index()],
            bas = d.bas_accesses,
            bao = d.bao_accesses,
            cpro = d.cpro_accesses,
            crpd = d.crpd_accesses,
            blocking = d.blocking_accesses,
            dominant = d.dominant().label(),
        );
    }
}

/// The pre-engine reference implementation of [`analyze`]: full outer
/// sweeps over every task, with every bound recomputed from first
/// principles on each evaluation.
///
/// Kept (and exported) as the semantic baseline: the `engine_equivalence`
/// differential test pins [`analyze`]'s results against this path on
/// seeded campaigns, and the `analysis_engine` bench measures the engine's
/// speedup over it. Prefer [`analyze`] everywhere else.
#[must_use]
pub fn analyze_reference(ctx: &AnalysisContext<'_>, config: &AnalysisConfig) -> AnalysisResult {
    let _span = cpa_obs::span!("wcrt.analyze");
    let tasks = ctx.tasks();
    let n = tasks.len();
    let mut inner_iterations = vec![0u64; n];

    if let Some(result) = perfect_bus_check(ctx, config) {
        return result;
    }

    let init = initial_estimates(ctx);
    let mut resp = init.clone();

    for outer in 1..=config.max_outer_iterations {
        let mut changed_tasks = 0usize;
        for i in tasks.ids() {
            let start = resp[i.index()].max(init[i.index()]);
            let solve = inner_fixed_point(ctx, config, i, start, &resp);
            inner_iterations[i.index()] += solve.iterations;
            let r = match solve.bound {
                Some(r) => r,
                None => {
                    cpa_obs::event!(
                        "wcrt.deadline_miss",
                        task = i.index(),
                        outer = outer,
                        deadline = tasks[i].deadline().cycles(),
                    );
                    // Unschedulable: report what we know, with the failing
                    // task explicitly marked as having no bound.
                    let response_times = resp
                        .iter()
                        .zip(tasks.iter())
                        .enumerate()
                        .map(|(idx, (&r, t))| (idx != i.index() && r <= t.deadline()).then_some(r))
                        .collect();
                    return AnalysisResult {
                        response_times,
                        schedulable: false,
                        outer_iterations: outer,
                        inner_iterations,
                        hit_outer_cap: false,
                    };
                }
            };
            if r > resp[i.index()] {
                cpa_obs::event!(
                    "wcrt.estimate",
                    task = i.index(),
                    outer = outer,
                    inner = solve.iterations,
                    estimate = r.cycles(),
                );
                resp[i.index()] = r;
                changed_tasks += 1;
            }
        }
        cpa_obs::event!("wcrt.outer", iter = outer, changed = changed_tasks);
        if changed_tasks == 0 {
            // Converged: trace the fixed point with its term decomposition
            // (BAS/BAO/CPRO/CRPD) before handing the result back.
            emit_converged_events(ctx, config, &resp, &inner_iterations);
            return AnalysisResult {
                response_times: resp.into_iter().map(Some).collect(),
                schedulable: true,
                outer_iterations: outer,
                inner_iterations,
                hit_outer_cap: false,
            };
        }
    }

    // Outer loop failed to stabilise within the cap: treat as unschedulable,
    // and say so — a warning event plus an always-on counter replace the
    // previous silent capping.
    cpa_obs::event!(
        "wcrt.outer_cap",
        level = "warn",
        max_outer = config.max_outer_iterations,
        bus = config.bus.label(),
    );
    cpa_obs::counter("wcrt.outer_cap_hits").incr();
    AnalysisResult {
        response_times: vec![None; n],
        schedulable: false,
        outer_iterations: config.max_outer_iterations,
        inner_iterations,
        hit_outer_cap: true,
    }
}

/// Decomposition of one task's WCRT bound into Eq. (19)'s terms, for
/// diagnosis ("why is this task unschedulable?").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WcrtBreakdown {
    /// The window length the breakdown was evaluated at (usually the WCRT).
    pub window: Time,
    /// `PD_i`: the task's own processing demand.
    pub processing: Time,
    /// `Σ ⌈R/T_j⌉·PD_j`: same-core preemption (processing only).
    pub core_interference: Time,
    /// `BAS·d_mem`: bus time of the own core's demand (self + same-core
    /// higher-priority tasks, CRPD included).
    pub own_core_bus: Time,
    /// `(BAT − BAS)·d_mem`: cross-core bus interference plus blocking.
    pub cross_core_bus: Time,
}

impl WcrtBreakdown {
    /// Sum of all components — equals `rhs(window)`; at a fixed point this
    /// is the WCRT bound itself.
    #[must_use]
    pub fn total(&self) -> Time {
        self.processing
            .saturating_add(self.core_interference)
            .saturating_add(self.own_core_bus)
            .saturating_add(self.cross_core_bus)
    }
}

/// Evaluates Eq. (19)'s right-hand side at `window` and reports the
/// per-term decomposition. Pass a converged [`AnalysisResult`]'s response
/// times (as `resp`) and its WCRT (as `window`) to explain a bound.
///
/// # Example
///
/// See `examples/quickstart.rs` in the repository root.
#[must_use]
pub fn explain(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    i: TaskId,
    window: Time,
    resp: &[Time],
) -> WcrtBreakdown {
    let tasks = ctx.tasks();
    let task = &tasks[i];
    let core_interference: Time = tasks
        .hp_on(i, task.core())
        .map(|j| {
            tasks[j]
                .processing_demand()
                .saturating_mul(window.div_ceil(tasks[j].period()))
        })
        .fold(Time::ZERO, Time::saturating_add);
    let own_accesses = crate::bas::bas(ctx, i, window, config.persistence);
    let total_accesses = bus::bat(ctx, i, window, resp, config);
    let d_mem = ctx.d_mem();
    WcrtBreakdown {
        window,
        processing: task.processing_demand(),
        core_interference,
        own_core_bus: d_mem.saturating_mul(own_accesses),
        cross_core_bus: d_mem.saturating_mul(total_accesses.saturating_sub(own_accesses)),
    }
}

/// The right-hand side of Eq. (19) at window length `r`.
fn rhs(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    i: TaskId,
    r: Time,
    resp: &[Time],
    carry: bus::CarryOut,
) -> Time {
    let tasks = ctx.tasks();
    let task = &tasks[i];
    let interference: Time = tasks
        .hp_on(i, task.core())
        .map(|j| {
            tasks[j]
                .processing_demand()
                .saturating_mul(r.div_ceil(tasks[j].period()))
        })
        .fold(Time::ZERO, Time::saturating_add);
    let bus_accesses = bus::bat_with(ctx, i, r, resp, config, carry);
    task.processing_demand()
        .saturating_add(interference)
        .saturating_add(ctx.d_mem().saturating_mul(bus_accesses))
}

/// Outcome of one per-task inner fixed-point solve: the bound (`None` when
/// the deadline cannot be met) and the iterations it took (bracket steps +
/// refine steps + the sufficiency test, when taken).
pub(crate) struct InnerSolve {
    pub(crate) bound: Option<Time>,
    pub(crate) iterations: u64,
}

/// Sound WCRT bound for one task given the right-hand side of its
/// recurrence; `bound` is `None` when the deadline cannot be met.
///
/// The solver is generic over the right-hand-side evaluator so the
/// reference path (direct recomputation) and the engine (memoized curves)
/// share one algorithm — byte-identical results follow from the evaluators
/// agreeing pointwise. The recurrence is solved in two phases:
///
/// 1. **Bracket** — iterate upward with the *capped* carry-out bound
///    ([`bus::CarryOut::Capped`], an over-approximation of Eq. (5) whose
///    value only changes at period-scale events). The exact Eq. (5) term
///    grows by one access per elapsed `d_mem`, making naive upward
///    iteration creep in `d_mem`-sized steps for up to millions of
///    iterations; the capped bound converges in a number of steps bounded
///    by the job releases in the window.
/// 2. **Refine** — from the capped fixed point `r*` (which satisfies
///    `f(r*) ≤ r*` for the exact right-hand side `f`), iterate `r ← f(r)`
///    *downwards*. Every iterate remains a pre-fixed point of `f`
///    (monotonicity), hence a sound WCRT bound, so refinement can stop
///    after a bounded number of steps without losing soundness.
///
/// If the capped bracket exceeds the deadline, the exact recurrence is
/// given a last chance via the sufficiency test `f(D_i) ≤ D_i` (any window
/// of length `D_i` that contains all charged work ends by `D_i`), again
/// followed by downward refinement.
pub(crate) fn solve_inner(
    deadline: Time,
    start: Time,
    max_inner_iterations: u32,
    mut rhs_at: impl FnMut(Time, bus::CarryOut) -> Time,
) -> InnerSolve {
    use bus::CarryOut;

    // Phase 1: capped upward bracket.
    let mut r = start;
    let mut bracket = None;
    let mut iterations = 0u64;
    {
        let _span = cpa_obs::span!("wcrt.bracket");
        for _ in 0..max_inner_iterations {
            iterations += 1;
            let next = rhs_at(r, CarryOut::Capped);
            if next == r {
                bracket = Some(r);
                break;
            }
            r = next;
            if r > deadline {
                break;
            }
        }
    }

    const REFINE_STEPS: u32 = 64;
    fn refine<F: FnMut(Time, bus::CarryOut) -> Time>(
        mut r: Time,
        iterations: &mut u64,
        rhs_at: &mut F,
    ) -> Time {
        let _span = cpa_obs::span!("wcrt.refine");
        for _ in 0..REFINE_STEPS {
            *iterations += 1;
            let next = rhs_at(r, bus::CarryOut::Exact);
            debug_assert!(next <= r, "downward refinement must not increase");
            if next == r {
                break;
            }
            r = next;
        }
        r
    }

    let bound = match bracket {
        Some(r_star) if r_star <= deadline => Some(refine(r_star, &mut iterations, &mut rhs_at)),
        _ => {
            // Exact sufficiency test at the deadline.
            iterations += 1;
            let at_deadline = rhs_at(deadline, bus::CarryOut::Exact);
            (at_deadline <= deadline).then(|| refine(at_deadline, &mut iterations, &mut rhs_at))
        }
    };
    InnerSolve { bound, iterations }
}

fn inner_fixed_point(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    i: TaskId,
    start: Time,
    resp: &[Time],
) -> InnerSolve {
    let deadline = ctx.tasks()[i].deadline();
    solve_inner(deadline, start, config.max_inner_iterations, |r, carry| {
        rhs(ctx, config, i, r, resp, carry)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PersistenceMode;
    use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet};

    fn platform(cores: usize, d_mem: u64) -> Platform {
        Platform::builder()
            .cores(cores)
            .memory_latency(Time::from_cycles(d_mem))
            .build()
            .unwrap()
    }

    fn task(name: &str, prio: u32, core: usize, pd: u64, md: u64, md_r: u64, period: u64) -> Task {
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 10))
            .pcb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 8))
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_single_core() {
        let p = platform(1, 10);
        let ts = TaskSet::new(vec![task("t", 1, 0, 100, 5, 1, 1_000)]).unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
            BusPolicy::Perfect,
        ] {
            let res = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
            assert!(res.is_schedulable(), "{bus:?}");
            // Alone in the system every policy degenerates to
            // R = PD + MD·d_mem (TDMA has no other cores to wait for).
            let r = res.response_time(TaskId::new(0)).unwrap();
            assert_eq!(r, Time::from_cycles(150), "{bus:?}");
        }
    }

    #[test]
    fn preemption_interference_counted() {
        // Classic two-task single-core response time, no memory demand.
        // The high-priority task still pays the +1 blocking access
        // (a lower-priority task shares its core): R_hi = 20 + 1·d_mem.
        // R_lo = 40 + ⌈R/100⌉·20 = 60, no blocking (lowest priority).
        let p = platform(1, 1);
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 20, 0, 0, 100),
            task("lo", 2, 0, 40, 0, 0, 200),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
        );
        assert!(res.is_schedulable());
        assert_eq!(
            res.response_time(TaskId::new(0)),
            Some(Time::from_cycles(21))
        );
        assert_eq!(
            res.response_time(TaskId::new(1)),
            Some(Time::from_cycles(60))
        );
    }

    #[test]
    fn unschedulable_when_overloaded() {
        let p = platform(1, 10);
        // Utilization > 1 on the core.
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 600, 10, 10, 1_000),
            task("lo", 2, 0, 600, 10, 10, 1_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        );
        assert!(!res.is_schedulable());
        // The high-priority task is fine; the low one blew its deadline.
        assert!(res.response_time(TaskId::new(0)).is_some());
        assert_eq!(res.response_time(TaskId::new(1)), None);
    }

    #[test]
    fn perfect_bus_gates_on_bus_utilization() {
        let p = platform(2, 100);
        // Each task alone is trivially schedulable, but the bus carries
        // 2 × 60·100/10_000 = 1.2 > 1.
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 10, 60, 60, 10_000),
            task("b", 2, 1, 10, 60, 60, 10_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
        );
        assert!(!res.is_schedulable());
        assert_eq!(res.outer_iterations(), 0);
        // The same set under 10× shorter memory latency passes.
        let fast = platform(2, 10);
        let ctx = AnalysisContext::new(&fast, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware),
        );
        assert!(res.is_schedulable());
    }

    #[test]
    fn aware_dominates_oblivious_on_multicore() {
        let p = platform(2, 20);
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
            task("c", 3, 0, 200, 20, 2, 8_000),
            task("d", 4, 1, 200, 20, 2, 8_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
        ] {
            let aware = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
            let obl = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
            assert!(aware.is_schedulable(), "{bus:?}");
            assert!(obl.is_schedulable(), "{bus:?}");
            for i in ts.ids() {
                assert!(
                    aware.response_time(i).unwrap() <= obl.response_time(i).unwrap(),
                    "{bus:?} {i:?}"
                );
            }
        }
    }

    #[test]
    fn explain_decomposes_the_fixed_point() {
        let p = platform(2, 20);
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
            task("c", 3, 0, 200, 20, 2, 8_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let cfg = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware);
        let result = analyze(&ctx, &cfg);
        assert!(result.is_schedulable());
        let resp: Vec<Time> = result
            .response_times()
            .iter()
            .map(|r| r.expect("schedulable"))
            .collect();
        for i in ts.ids() {
            let b = explain(&ctx, &cfg, i, resp[i.index()], &resp);
            // At the fixed point, the decomposition reassembles the WCRT
            // (the stored value is a pre-fixed point: total ≤ window).
            assert!(b.total() <= b.window, "{i}: {:?}", b);
            assert_eq!(b.processing, ts[i].processing_demand());
            assert!(!b.own_core_bus.is_zero());
        }
        // The low-priority same-core task sees core interference; the
        // remote one does not.
        let c = ts.id_of("c").unwrap();
        let b = ts.id_of("b").unwrap();
        let bc = explain(&ctx, &cfg, c, resp[c.index()], &resp);
        let bb = explain(&ctx, &cfg, b, resp[b.index()], &resp);
        assert!(!bc.core_interference.is_zero());
        assert!(bb.core_interference.is_zero());
        assert!(!bb.cross_core_bus.is_zero());
    }

    #[test]
    fn iteration_counts_and_converged_accessor() {
        let p = platform(2, 20);
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware),
        );
        assert!(res.is_schedulable());
        assert!(!res.hit_outer_iteration_cap());
        assert_eq!(res.inner_iteration_counts().len(), 2);
        for i in ts.ids() {
            assert!(res.converged(i), "{i:?}");
            // Every task needs at least one bracket step per outer sweep.
            assert!(res.inner_iterations(i) >= u64::from(res.outer_iterations()));
        }
        // Out-of-range ids degrade gracefully.
        assert!(!res.converged(TaskId::new(99)));
        assert_eq!(res.inner_iterations(TaskId::new(99)), 0);
    }

    #[test]
    fn unconverged_tasks_report_not_converged() {
        let p = platform(1, 10);
        let ts = TaskSet::new(vec![
            task("hi", 1, 0, 600, 10, 10, 1_000),
            task("lo", 2, 0, 600, 10, 10, 1_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let res = analyze(
            &ctx,
            &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
        );
        assert!(!res.is_schedulable());
        assert!(res.converged(TaskId::new(0)));
        assert!(!res.converged(TaskId::new(1)));
    }

    #[test]
    fn outer_cap_warns_instead_of_silently_capping() {
        // A cross-core pair needs more than one outer sweep; capping at one
        // must be reported through the result *and* a warning event.
        let p = platform(2, 20);
        let ts = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
        ])
        .unwrap();
        let ctx = AnalysisContext::new(&p, &ts).unwrap();
        let mut cfg =
            AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware);
        cfg.max_outer_iterations = 1;

        let cap_hits = cpa_obs::counter("wcrt.outer_cap_hits");
        let before = cap_hits.get();
        cpa_obs::enable();
        let res = analyze(&ctx, &cfg);
        cpa_obs::disable();

        assert!(!res.is_schedulable());
        assert!(res.hit_outer_iteration_cap());
        assert_eq!(res.outer_iterations(), 1);
        assert!(ts.ids().all(|i| !res.converged(i)));
        assert!(cap_hits.get() > before, "cap hit must bump the counter");
        let events = cpa_obs::take_events();
        let warn = events
            .iter()
            .find(|e| e.name == "wcrt.outer_cap")
            .expect("warning event emitted");
        assert!(warn
            .fields
            .iter()
            .any(|(k, v)| *k == "level" && *v == cpa_obs::FieldValue::Str("warn".into())));
    }

    #[test]
    fn cross_core_contention_increases_wcrt() {
        let p1 = platform(1, 20);
        let solo = TaskSet::new(vec![task("a", 1, 0, 100, 20, 2, 4_000)]).unwrap();
        let ctx1 = AnalysisContext::new(&p1, &solo).unwrap();
        let cfg = AnalysisConfig::new(
            BusPolicy::RoundRobin { slots: 1 },
            PersistenceMode::Oblivious,
        );
        let alone = analyze(&ctx1, &cfg).response_time(TaskId::new(0)).unwrap();

        let p2 = platform(2, 20);
        let pair = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
        ])
        .unwrap();
        let ctx2 = AnalysisContext::new(&p2, &pair).unwrap();
        let contended = analyze(&ctx2, &cfg).response_time(TaskId::new(0)).unwrap();
        assert!(contended > alone, "{contended} vs {alone}");
    }
}
