//! Convergence diagnostics: decomposing a WCRT bound into the paper's
//! BAS / BAO / CPRO / CRPD terms and naming the dominant one.
//!
//! [`crate::explain`] splits Eq. (19)'s right-hand side into *time*
//! components (processing, preemption, own-core bus, cross-core bus); this
//! module splits the *bus-access count* `BAT_i^x(t)` itself along the
//! paper's vocabulary, so a convergence report can answer "which term is
//! this task's bound made of":
//!
//! * **BAS** — the own core's pure memory demand (`MD_i` plus the demand of
//!   same-core higher-priority jobs, Eq. (1)/Lemma 1), *excluding* the CRPD
//!   and CPRO shares broken out below.
//! * **CRPD** — the cache-related preemption delay share `Σ E_j·γ_{i,j,x}`
//!   (Eq. (2)) charged inside BAS.
//! * **CPRO** — the cache persistence reload overhead share
//!   `ρ̂_{j,i,x}(E_j)` (Eq. (14)), charged inside Lemma 1's persistent
//!   branch when it wins the `min`.
//! * **BAO** — the cross-core charge after the policy-specific caps
//!   (Eq. (7)–(9)); reported as a whole, since the CRPD/CPRO shares inside
//!   it belong to the remote cores' own decompositions.
//! * **blocking** — the `+1` already-in-service access (Eq. (12) footnote).

use cpa_model::{TaskId, Time};

use crate::arbiter::{with_arbiter, DirectBao};
use crate::bao::CarryOut;
use crate::{bas, cpro, demand, AnalysisConfig, AnalysisContext, PersistenceMode};

/// The term of Eq. (19) contributing the most bus accesses to a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DominantTerm {
    /// Same-core memory demand (Eq. (1)/Lemma 1, net of CRPD/CPRO).
    Bas,
    /// Cross-core interference after the policy caps (Eq. (7)–(9)).
    Bao,
    /// Cache persistence reload overhead (Eq. (14)).
    Cpro,
    /// Cache-related preemption delay (Eq. (2)).
    Crpd,
}

impl DominantTerm {
    /// Upper-case paper name (`"BAS"`, `"BAO"`, `"CPRO"`, `"CRPD"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DominantTerm::Bas => "BAS",
            DominantTerm::Bao => "BAO",
            DominantTerm::Cpro => "CPRO",
            DominantTerm::Crpd => "CRPD",
        }
    }
}

impl std::fmt::Display for DominantTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Bus-access decomposition of `BAT_i^x(window)` along the paper's terms.
///
/// The parts always reassemble exactly: [`TermDecomposition::total_accesses`]
/// equals [`crate::bus::bat`] at the same window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TermDecomposition {
    /// The window length the decomposition was evaluated at.
    pub window: Time,
    /// BAS share: own-core memory demand net of the CRPD/CPRO shares.
    pub bas_accesses: u64,
    /// BAO share: cross-core accesses after the policy-specific caps.
    pub bao_accesses: u64,
    /// CPRO share inside Lemma 1's persistent branch (aware mode only).
    pub cpro_accesses: u64,
    /// CRPD share `Σ E_j·γ_{i,j,x}` inside BAS.
    pub crpd_accesses: u64,
    /// The `+1` blocking access, when a same-core lower-priority task exists.
    pub blocking_accesses: u64,
}

impl TermDecomposition {
    /// Sum of every share — equals `BAT_i^x(window)`.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.bas_accesses
            .saturating_add(self.bao_accesses)
            .saturating_add(self.cpro_accesses)
            .saturating_add(self.crpd_accesses)
            .saturating_add(self.blocking_accesses)
    }

    /// The largest of the four named terms (blocking never dominates); ties
    /// resolve in the order BAS, BAO, CPRO, CRPD.
    #[must_use]
    pub fn dominant(&self) -> DominantTerm {
        let candidates = [
            (DominantTerm::Bas, self.bas_accesses),
            (DominantTerm::Bao, self.bao_accesses),
            (DominantTerm::Cpro, self.cpro_accesses),
            (DominantTerm::Crpd, self.crpd_accesses),
        ];
        let mut best = candidates[0];
        for c in &candidates[1..] {
            if c.1 > best.1 {
                best = *c;
            }
        }
        best.0
    }

    /// Share of `term` in the total access count, in `[0, 1]`.
    #[must_use]
    pub fn share(&self, term: DominantTerm) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        let part = match term {
            DominantTerm::Bas => self.bas_accesses,
            DominantTerm::Bao => self.bao_accesses,
            DominantTerm::Cpro => self.cpro_accesses,
            DominantTerm::Crpd => self.crpd_accesses,
        };
        part as f64 / total as f64
    }
}

/// Decomposes `BAT_i^x(window)` into the paper's terms, mirroring
/// [`crate::bus::bat`] (exact carry-out) share by share.
///
/// Pass a converged [`crate::AnalysisResult`]'s response times as `resp`
/// and its WCRT as `window` to explain a fixed point.
#[must_use]
pub fn decompose(
    ctx: &AnalysisContext<'_>,
    config: &AnalysisConfig,
    i: TaskId,
    window: Time,
    resp: &[Time],
) -> TermDecomposition {
    let tasks = ctx.tasks();
    let core = tasks[i].core();
    let mode = config.persistence;

    // Split the own-core bound (Eq. (1)/Lemma 1) into its three shares.
    let own = bas::bas(ctx, i, window, mode);
    let mut crpd_accesses = 0u64;
    let mut cpro_accesses = 0u64;
    for j in tasks.hp_on(i, core) {
        let e = bas::releases(window, tasks[j].period());
        crpd_accesses = crpd_accesses.saturating_add(e.saturating_mul(ctx.gamma(i, j)));
        if mode == PersistenceMode::Aware {
            let oblivious = e.saturating_mul(tasks[j].memory_demand());
            let reload = cpro::cpro(ctx.cpro_overlap(j, i), e);
            let persistent = demand::md_hat(&tasks[j], e).saturating_add(reload);
            if persistent < oblivious {
                cpro_accesses = cpro_accesses.saturating_add(reload);
            }
        }
    }
    let bas_accesses = own
        .saturating_sub(crpd_accesses)
        .saturating_sub(cpro_accesses);

    // Cross-core and blocking shares: the same `BusArbiter` impl that backs
    // `bus::bat_with` supplies both, so the decomposition reassembles `bat`
    // by construction.
    let (bao_accesses, blocking_accesses) = with_arbiter(config.bus, |arb| {
        let mut src = DirectBao::new(ctx, resp, mode);
        let cross = arb.cross_core(ctx, &mut src, i, window, own, CarryOut::Exact);
        let blocking = u64::from(arb.charges_blocking() && tasks.lp_on(i, core).next().is_some());
        (cross, blocking)
    });

    TermDecomposition {
        window,
        bas_accesses,
        bao_accesses,
        cpro_accesses,
        crpd_accesses,
        blocking_accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, bus, BusPolicy};
    use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet};

    fn system() -> (Platform, TaskSet) {
        let platform = Platform::builder()
            .cores(2)
            .memory_latency(Time::from_cycles(20))
            .build()
            .unwrap();
        let task = |name: &str, prio: u32, core: usize, pd: u64, md: u64, md_r: u64, per: u64| {
            Task::builder(name)
                .processing_demand(Time::from_cycles(pd))
                .memory_demand(md)
                .residual_memory_demand(md_r)
                .period(Time::from_cycles(per))
                .deadline(Time::from_cycles(per))
                .core(CoreId::new(core))
                .priority(Priority::new(prio))
                .ecb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 24))
                .ucb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 6))
                .pcb(CacheBlockSet::contiguous(256, (prio as usize) * 20, 16))
                .build()
                .unwrap()
        };
        let tasks = TaskSet::new(vec![
            task("a", 1, 0, 100, 20, 2, 4_000),
            task("b", 2, 1, 100, 20, 2, 4_000),
            task("c", 3, 0, 200, 20, 2, 8_000),
            task("d", 4, 1, 200, 20, 2, 8_000),
        ])
        .unwrap();
        (platform, tasks)
    }

    #[test]
    fn shares_reassemble_bat_for_every_policy_and_mode() {
        let (platform, tasks) = system();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        for bus_policy in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots: 2 },
            BusPolicy::Tdma { slots: 2 },
            BusPolicy::Perfect,
        ] {
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                let cfg = AnalysisConfig::new(bus_policy, mode);
                let result = analyze(&ctx, &cfg);
                let resp: Vec<Time> = tasks
                    .ids()
                    .map(|i| {
                        result
                            .response_time(i)
                            .unwrap_or_else(|| tasks[i].deadline())
                    })
                    .collect();
                for i in tasks.ids() {
                    let d = decompose(&ctx, &cfg, i, resp[i.index()], &resp);
                    let total = bus::bat(&ctx, i, resp[i.index()], &resp, &cfg);
                    assert_eq!(d.total_accesses(), total, "{bus_policy:?} {mode:?} {i:?}");
                }
            }
        }
    }

    #[test]
    fn oblivious_mode_has_no_cpro_share() {
        let (platform, tasks) = system();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let cfg = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious);
        let resp = vec![Time::from_cycles(1_000); tasks.len()];
        for i in tasks.ids() {
            let d = decompose(&ctx, &cfg, i, Time::from_cycles(1_000), &resp);
            assert_eq!(d.cpro_accesses, 0, "{i:?}");
        }
    }

    #[test]
    fn dominant_term_and_shares_are_consistent() {
        let (platform, tasks) = system();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let cfg = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware);
        let result = analyze(&ctx, &cfg);
        assert!(result.is_schedulable());
        let resp: Vec<Time> = tasks
            .ids()
            .map(|i| result.response_time(i).unwrap())
            .collect();
        let low = tasks.id_of("d").unwrap();
        let d = decompose(&ctx, &cfg, low, resp[low.index()], &resp);
        let dom = d.dominant();
        for term in [
            DominantTerm::Bas,
            DominantTerm::Bao,
            DominantTerm::Cpro,
            DominantTerm::Crpd,
        ] {
            assert!(d.share(dom) >= d.share(term), "{dom} vs {term}");
        }
        let label = dom.label();
        assert!(["BAS", "BAO", "CPRO", "CRPD"].contains(&label));
    }

    #[test]
    fn perfect_bus_has_no_bao_share() {
        let (platform, tasks) = system();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let cfg = AnalysisConfig::new(BusPolicy::Perfect, PersistenceMode::Aware);
        let resp = vec![Time::from_cycles(2_000); tasks.len()];
        for i in tasks.ids() {
            let d = decompose(&ctx, &cfg, i, Time::from_cycles(2_000), &resp);
            assert_eq!(d.bao_accesses, 0);
            assert_eq!(d.blocking_accesses, 0, "perfect bus charges no blocking");
        }
    }
}
