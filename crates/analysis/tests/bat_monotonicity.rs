//! Property pin: `BAT_i^x(t)` (Eq. (7)/(8)/(9)) is monotone non-decreasing
//! in the window length `t` *and* in every individual remote response-time
//! estimate, for each arbitration policy and persistence mode.
//!
//! Both monotonicities are load-bearing: monotonicity in `t` makes the
//! inner fixed point of Eq. (19) well-defined, and monotonicity in each
//! `resp` entry makes the outer loop (and the engine's dependency-driven
//! worklist) sound — estimates only ever grow, so a bound computed against
//! stale smaller estimates is never an over-commitment.

use cpa_analysis::{bus, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode};
use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};
use proptest::prelude::*;

/// A Fig. 1-flavoured fixture: two tasks on core 0, two on core 1, with
/// persistent cache blocks so the aware bounds differ from the oblivious
/// ones.
fn fixture() -> (Platform, TaskSet) {
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(2))
        .build()
        .unwrap();
    let task = |name: &str, prio: u32, core: usize, md: u64, md_r: u64, period: u64| {
        Task::builder(name)
            .processing_demand(Time::from_cycles(period / 10))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ecb(CacheBlockSet::contiguous(256, (prio as usize) * 16, 12))
            .pcb(CacheBlockSet::contiguous(256, (prio as usize) * 16, 9))
            .build()
            .unwrap()
    };
    let tasks = TaskSet::new(vec![
        task("a", 1, 0, 6, 1, 20),
        task("b", 2, 1, 6, 1, 15),
        task("c", 3, 0, 8, 2, 200),
        task("d", 4, 1, 8, 2, 120),
    ])
    .unwrap();
    (platform, tasks)
}

fn policies() -> [BusPolicy; 3] {
    [
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 2 },
        BusPolicy::Tdma { slots: 2 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `t ≤ t'` with identical estimates implies `BAT(t) ≤ BAT(t')`.
    #[test]
    fn bat_is_monotone_in_the_window(
        a in 0u64..5_000,
        b in 0u64..5_000,
        r in 1u64..2_000,
    ) {
        let (t_lo, t_hi) = (a.min(b), a.max(b));
        let (platform, tasks) = fixture();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let resp = vec![Time::from_cycles(r); tasks.len()];
        for bus_policy in policies() {
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                let config = AnalysisConfig::new(bus_policy, mode);
                for i in tasks.ids() {
                    let lo = bus::bat(&ctx, i, Time::from_cycles(t_lo), &resp, &config);
                    let hi = bus::bat(&ctx, i, Time::from_cycles(t_hi), &resp, &config);
                    prop_assert!(
                        lo <= hi,
                        "{bus_policy:?} {mode:?} {i}: BAT({t_lo})={lo} > BAT({t_hi})={hi}"
                    );
                }
            }
        }
    }

    /// Growing any *single* response-time estimate never decreases BAT
    /// (the other entries held fixed) — per-entry monotonicity, not just
    /// monotonicity in the pointwise-ordered vector.
    #[test]
    fn bat_is_monotone_in_each_response_estimate(
        t in 0u64..5_000,
        base in 1u64..1_500,
        bump in 0u64..3_000,
        victim in 0usize..4,
    ) {
        let (platform, tasks) = fixture();
        let ctx = AnalysisContext::new(&platform, &tasks).unwrap();
        let t = Time::from_cycles(t);
        let resp_lo = vec![Time::from_cycles(base); tasks.len()];
        let mut resp_hi = resp_lo.clone();
        resp_hi[victim] = Time::from_cycles(base + bump);
        for bus_policy in policies() {
            for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                let config = AnalysisConfig::new(bus_policy, mode);
                for i in tasks.ids() {
                    let lo = bus::bat(&ctx, i, t, &resp_lo, &config);
                    let hi = bus::bat(&ctx, i, t, &resp_hi, &config);
                    prop_assert!(
                        lo <= hi,
                        "{bus_policy:?} {mode:?} {i}: raising resp[{victim}] by {bump} \
                         dropped BAT from {lo} to {hi}"
                    );
                }
            }
        }
    }
}
