//! Property pin for the warm-start contract: an [`AnalysisScratch`] that
//! has just solved *something else* — a different task set, a different
//! bus policy, a different persistence mode — must produce results
//! **bitwise identical** to a cold scratch, on every field of
//! [`AnalysisResult`] (response times including deadline-miss partial
//! snapshots, schedulability, outer round count, per-task inner iteration
//! tallies, cap flag). `AnalysisResult` is `Eq`, so one comparison pins
//! all of them at once.
//!
//! Seeded solves ([`analyze_with_seed`]) are held to the same standard
//! against adversarial hints: exact responses from a *converged* run
//! (over-estimates of the init floor), truncated and over-long vectors,
//! and arbitrary junk. A hint is only ever adopted when it equals the
//! value the cold iteration starts from anyway, so no vector — however
//! wrong — may move any output bit.

use cpa_analysis::{
    analyze, analyze_with, analyze_with_seed, AnalysisConfig, AnalysisContext, AnalysisResult,
    AnalysisScratch, BusPolicy, PersistenceMode,
};
use cpa_model::{CacheBlockSet, CacheGeometry, CoreId, Platform, Priority, Task, TaskSet, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform")
}

fn generate(seed: u64, util: f64) -> (TaskSet, Platform) {
    let gen_cfg = GeneratorConfig {
        cores: 2,
        tasks_per_core: 4,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(util);
    let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
    let platform = platform_for(&gen_cfg);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(seed))
        .expect("task set");
    (tasks, platform)
}

/// Every bus policy the engine distinguishes, crossed with both modes.
fn configs() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for bus in [
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 1 },
        BusPolicy::RoundRobin { slots: 2 },
        BusPolicy::Tdma { slots: 2 },
        BusPolicy::Perfect,
    ] {
        for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
            out.push(AnalysisConfig::new(bus, mode));
        }
    }
    out
}

fn assert_bitwise(warm: &AnalysisResult, cold: &AnalysisResult, tag: &str) {
    // `AnalysisResult: Eq` covers every field; the per-field asserts
    // below only exist to make a failure readable.
    assert_eq!(
        warm.response_times(),
        cold.response_times(),
        "{tag}: response times (incl. deadline-miss snapshots)"
    );
    assert_eq!(
        warm.outer_iterations(),
        cold.outer_iterations(),
        "{tag}: outer round count"
    );
    assert_eq!(
        warm.inner_iteration_counts(),
        cold.inner_iteration_counts(),
        "{tag}: inner iteration tallies"
    );
    assert_eq!(warm, cold, "{tag}: full result");
}

/// The paper's Fig. 1 worked example (τ1, τ2 on core x; τ3 on core y),
/// the fixture ci.sh runs this suite against under
/// `CPA_WARM_CROSS_CHECK=1` (every warm solve then also re-runs cold
/// inside [`analyze_with`] and asserts equality a second time).
fn fig1() -> (Platform, TaskSet) {
    let platform = Platform::builder()
        .cores(2)
        .memory_latency(Time::from_cycles(1))
        .build()
        .unwrap();
    let tau1 = Task::builder("tau1")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(20))
        .deadline(Time::from_cycles(20))
        .core(CoreId::new(0))
        .priority(Priority::new(1))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
        .build()
        .unwrap();
    let tau2 = Task::builder("tau2")
        .processing_demand(Time::from_cycles(32))
        .memory_demand(8)
        .period(Time::from_cycles(200))
        .deadline(Time::from_cycles(200))
        .core(CoreId::new(0))
        .priority(Priority::new(2))
        .ecb(CacheBlockSet::from_blocks(256, 1..=6).unwrap())
        .ucb(CacheBlockSet::from_blocks(256, [5, 6]).unwrap())
        .build()
        .unwrap();
    let tau3 = Task::builder("tau3")
        .processing_demand(Time::from_cycles(4))
        .memory_demand(6)
        .residual_memory_demand(1)
        .period(Time::from_cycles(15))
        .deadline(Time::from_cycles(15))
        .core(CoreId::new(1))
        .priority(Priority::new(3))
        .ecb(CacheBlockSet::from_blocks(256, 5..=10).unwrap())
        .pcb(CacheBlockSet::from_blocks(256, [5, 6, 7, 8, 10]).unwrap())
        .build()
        .unwrap();
    (platform, TaskSet::new(vec![tau1, tau2, tau3]).unwrap())
}

/// Warm chains and seeded solves on the paper's own worked example: the
/// deterministic anchor of this suite (the proptests randomize around
/// it). Chains every config on one scratch, then replays the FP/Aware
/// solve seeded with its own responses (deadline-missed entries mapped
/// to the `u64::MAX` sentinel, exactly as the optimizer hands hints on).
#[test]
fn fig1_warm_chain_and_seeded_solves_match_cold() {
    let (platform, tasks) = fig1();
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let mut warm = AnalysisScratch::new();
    for config in configs() {
        let w = analyze_with(&ctx, &config, &mut warm);
        let c = analyze(&ctx, &config);
        assert_bitwise(&w, &c, &format!("fig1 {config:?}"));
    }
    let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
    let cold = analyze(&ctx, &config);
    let hint: Vec<Time> = cold
        .response_times()
        .iter()
        .map(|r| r.unwrap_or(Time::from_cycles(u64::MAX)))
        .collect();
    let seeded = analyze_with_seed(&ctx, &config, &mut warm, &hint);
    assert_bitwise(&seeded, &cold, "fig1 seeded with own responses");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One scratch chained across every BusPolicy × PersistenceMode of
    /// two different task sets (same-fingerprint retention, mode-flip
    /// gating, and cross-set delta invalidation all fire) must match a
    /// fresh scratch on every solve. The utilization range deliberately
    /// reaches overload so deadline-miss partial snapshots are compared
    /// too.
    #[test]
    fn warm_chain_matches_cold_bitwise(
        seed in any::<u64>(),
        util in 0.1f64..0.9,
    ) {
        let (tasks_a, platform) = generate(seed, util);
        let (tasks_b, _) = generate(seed.wrapping_add(1), util);
        let mut warm = AnalysisScratch::new();
        for tasks in [&tasks_a, &tasks_b] {
            let ctx = AnalysisContext::new(&platform, tasks).expect("context");
            for config in configs() {
                let w = analyze_with(&ctx, &config, &mut warm);
                let c = analyze(&ctx, &config);
                assert_bitwise(&w, &c, &format!("seed={seed} util={util} {config:?}"));
            }
        }
    }

    /// Adversarial seed vectors: converged responses (over-estimates of
    /// the init floor — the dangerous direction: trusting one would skip
    /// iterations and could hide a deadline miss), truncated, over-long,
    /// zeroed, and junk hints. None may change a single output bit, on a
    /// cold scratch or mid-chain.
    #[test]
    fn seeded_solves_match_unseeded_bitwise(
        seed in any::<u64>(),
        util in 0.1f64..0.7,
        junk in prop::collection::vec(any::<u64>(), 0..12),
    ) {
        let (tasks, platform) = generate(seed, util);
        let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
        let config = AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware);
        let cold = analyze(&ctx, &config);

        // The optimizer's actual hint: the parent's converged responses,
        // each ≥ its init floor (strictly greater whenever the task sees
        // any interference), i.e. an over-estimate the engine must refuse.
        let parent: Vec<Time> = cold
            .response_times()
            .iter()
            .map(|r| r.unwrap_or(Time::from_cycles(u64::MAX)))
            .collect();
        let mut truncated = parent.clone();
        truncated.truncate(parent.len() / 2);
        let mut overlong = parent.clone();
        overlong.push(Time::from_cycles(1));
        let zeroed = vec![Time::from_cycles(0); parent.len()];
        let junk: Vec<Time> = junk.into_iter().map(Time::from_cycles).collect();

        for (name, hint) in [
            ("parent", &parent),
            ("truncated", &truncated),
            ("overlong", &overlong),
            ("zeroed", &zeroed),
            ("junk", &junk),
        ] {
            // Cold scratch + hint.
            let seeded = analyze_with_seed(&ctx, &config, &mut AnalysisScratch::new(), hint);
            assert_bitwise(&seeded, &cold, &format!("seed={seed} hint={name} (cold scratch)"));
            // Warm scratch (previous solve of the same set) + hint: the
            // optimizer's steady state.
            let mut chained = AnalysisScratch::new();
            let _ = analyze_with(&ctx, &config, &mut chained);
            let seeded = analyze_with_seed(&ctx, &config, &mut chained, hint);
            assert_bitwise(&seeded, &cold, &format!("seed={seed} hint={name} (warm scratch)"));
        }
    }
}
