//! Property tests over randomly generated paper-style task sets: the
//! theoretical dominance and monotonicity relations the analysis promises.

use cpa_analysis::{
    analyze, AnalysisConfig, AnalysisContext, BusPolicy, CrpdApproach, PersistenceMode,
};
use cpa_model::{CacheGeometry, Platform, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Aware response times never exceed oblivious ones, for every bus
    /// policy, on random paper-style task sets — the crate's core theorem.
    #[test]
    fn aware_dominates_oblivious_on_random_sets(
        seed in any::<u64>(),
        util in 0.1f64..0.6,
        slots in 1u64..4,
    ) {
        let gen_cfg = GeneratorConfig {
            cores: 2,
            tasks_per_core: 4,
            ..GeneratorConfig::paper_default()
        }
        .with_per_core_utilization(util);
        let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
        let platform = platform_for(&gen_cfg);
        let tasks = generator
            .generate(&mut ChaCha8Rng::seed_from_u64(seed))
            .expect("task set");
        let ctx = AnalysisContext::new(&platform, &tasks).expect("context");

        for bus in [
            BusPolicy::FixedPriority,
            BusPolicy::RoundRobin { slots },
            BusPolicy::Tdma { slots },
        ] {
            let aware = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Aware));
            let oblivious = analyze(&ctx, &AnalysisConfig::new(bus, PersistenceMode::Oblivious));
            // Schedulability dominance.
            prop_assert!(
                aware.is_schedulable() || !oblivious.is_schedulable(),
                "{bus:?}: oblivious schedulable but aware not"
            );
            // Per-task WCRT dominance where both bound the task.
            if aware.is_schedulable() && oblivious.is_schedulable() {
                for i in tasks.ids() {
                    prop_assert!(
                        aware.response_time(i).unwrap() <= oblivious.response_time(i).unwrap(),
                        "{bus:?} {i}"
                    );
                }
            }
        }
    }

    /// The aware-dominates-oblivious theorem holds regardless of which
    /// CRPD approach instantiates γ (the approaches themselves are
    /// pairwise incomparable — see `CrpdApproach`'s docs).
    #[test]
    fn dominance_holds_under_every_crpd_approach(
        seed in any::<u64>(),
        util in 0.1f64..0.5,
    ) {
        let gen_cfg = GeneratorConfig {
            cores: 2,
            tasks_per_core: 4,
            ..GeneratorConfig::paper_default()
        }
        .with_per_core_utilization(util);
        let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
        let platform = platform_for(&gen_cfg);
        let tasks = generator
            .generate(&mut ChaCha8Rng::seed_from_u64(seed))
            .expect("task set");

        for approach in [CrpdApproach::EcbUnion, CrpdApproach::UcbUnion, CrpdApproach::EcbOnly] {
            let ctx = AnalysisContext::with_crpd_approach(&platform, &tasks, approach)
                .expect("context");
            let aware = analyze(
                &ctx,
                &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
            );
            let oblivious = analyze(
                &ctx,
                &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Oblivious),
            );
            prop_assert!(
                aware.is_schedulable() || !oblivious.is_schedulable(),
                "{approach:?}"
            );
            if aware.is_schedulable() && oblivious.is_schedulable() {
                for i in tasks.ids() {
                    prop_assert!(
                        aware.response_time(i).unwrap() <= oblivious.response_time(i).unwrap(),
                        "{approach:?} {i}"
                    );
                }
            }
        }
    }
}

/// Per-task WCRT is *not* a monotone function of `d_mem` (Eq. (6)'s remote
/// job count shrinks as latency grows), but the aggregate schedulability
/// trend the paper plots in Fig. 3b must hold: over a population of task
/// sets sized for the reference latency, fewer sets stay schedulable as
/// the analysed latency grows.
#[test]
fn aggregate_schedulability_declines_with_dmem() {
    let base = GeneratorConfig {
        cores: 2,
        tasks_per_core: 3,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(0.35)
    .with_period_d_mem(Time::from_cycles(5));
    let generator = TaskSetGenerator::new(base.clone()).expect("generator");
    let cfg = AnalysisConfig::new(BusPolicy::RoundRobin { slots: 2 }, PersistenceMode::Aware);

    let mut counts = Vec::new();
    for d_mem in [2u64, 5, 8] {
        let platform = Platform::builder()
            .cores(2)
            .cache(CacheGeometry::direct_mapped(base.cache_sets, 32))
            .memory_latency(Time::from_cycles(d_mem))
            .build()
            .expect("platform");
        let mut schedulable = 0u32;
        for seed in 0..40u64 {
            let tasks = generator
                .generate(&mut ChaCha8Rng::seed_from_u64(seed))
                .expect("task set");
            let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
            if analyze(&ctx, &cfg).is_schedulable() {
                schedulable += 1;
            }
        }
        counts.push(schedulable);
    }
    assert!(
        counts[0] >= counts[1] && counts[1] >= counts[2],
        "schedulability did not decline with d_mem: {counts:?}"
    );
    assert!(
        counts[0] > counts[2],
        "sweep had no effect at all: {counts:?}"
    );
}
