//! Throwaway timing probe (not a test of correctness): compares the cost
//! of the reference `bao()` walk, `BaoSegment::rebuild` and
//! `BaoSegment::eval` on a paper-default task set. Run with
//! `cargo test --release -p cpa-analysis --test perf_probe -- --ignored --nocapture`.

use std::hint::black_box;
use std::time::Instant;

use cpa_analysis::bao::{bao, bao_members, bao_segment, CarryOut};
use cpa_analysis::{AnalysisContext, PersistenceMode};
use cpa_model::{CoreId, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
#[ignore]
fn probe() {
    let gen = GeneratorConfig::paper_default().with_per_core_utilization(0.5);
    let generator = TaskSetGenerator::new(gen.clone()).expect("generator");
    let platform = cpa_experiments_platform(&gen);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(0x0DA7_E202))
        .expect("task set");
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let resp: Vec<Time> = tasks
        .iter()
        .map(|t| t.processing_demand() + ctx.d_mem() * t.memory_demand())
        .collect();
    let level = tasks.lowest_priority_id();
    let core = CoreId::new(1);
    let mode = PersistenceMode::Aware;
    let band = cpa_analysis::bao::PriorityBand::HigherOrEqual;
    let t = Time::from_cycles(100_000);

    const N: u32 = 2_000_000;

    let start = Instant::now();
    for _ in 0..N {
        black_box(bao(
            &ctx,
            black_box(level),
            core,
            black_box(t),
            &resp,
            mode,
            band,
            CarryOut::Exact,
        ));
    }
    let walk_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let members = bao_members(&ctx, level, core);
    let mut seg = bao_segment(&ctx, level, core, t, &resp, mode);
    let start = Instant::now();
    for _ in 0..N {
        seg.rebuild(black_box(&members), black_box(t), &resp, ctx.d_mem(), mode);
        black_box(&seg);
    }
    let rebuild_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    for _ in 0..N {
        seg.refresh(black_box(&members), black_box(t), &resp, ctx.d_mem(), mode);
        black_box(&seg);
    }
    let refresh_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    for _ in 0..N {
        black_box(seg.eval(black_box(t), ctx.d_mem(), CarryOut::Exact));
    }
    let eval_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    for _ in 0..N {
        black_box(seg.eval(black_box(t), ctx.d_mem(), CarryOut::Capped));
    }
    let eval_capped_ns = start.elapsed().as_nanos() as f64 / N as f64;

    let start = Instant::now();
    for _ in 0..N {
        black_box(bao_members(&ctx, black_box(level), core));
    }
    let members_ns = start.elapsed().as_nanos() as f64 / N as f64;

    eprintln!("members       : {} entries", members.len());
    eprintln!("bao() walk    : {walk_ns:8.1} ns");
    eprintln!("bao_members   : {members_ns:8.1} ns");
    eprintln!("rebuild       : {rebuild_ns:8.1} ns");
    eprintln!("refresh noop  : {refresh_ns:8.1} ns");
    eprintln!("eval exact    : {eval_ns:8.1} ns");
    eprintln!("eval capped   : {eval_capped_ns:8.1} ns");

    // Counter split over one full engine analysis of the same task set.
    let config = cpa_analysis::AnalysisConfig::new(
        cpa_analysis::BusPolicy::FixedPriority,
        PersistenceMode::Aware,
    );
    let counters = [
        "engine.same_core_hit",
        "engine.same_core_miss",
        "engine.bao_hit",
        "engine.bao_miss",
    ];
    let before: Vec<u64> = counters.iter().map(|c| cpa_obs::counter(c).get()).collect();
    black_box(cpa_analysis::analyze(&ctx, &config));
    for (name, b) in counters.iter().zip(before) {
        eprintln!("{name:24}: {}", cpa_obs::counter(name).get() - b);
    }
}

/// Local copy of `cpa_experiments::runner::platform_for` (no dev-dep on
/// the experiments crate from here).
fn cpa_experiments_platform(gen: &GeneratorConfig) -> cpa_model::Platform {
    cpa_model::Platform::builder()
        .cores(gen.cores)
        .cache(cpa_model::CacheGeometry::direct_mapped(gen.cache_sets, 32))
        .memory_latency(gen.d_mem)
        .build()
        .expect("platform")
}
