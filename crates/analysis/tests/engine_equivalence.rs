//! Differential pin: the memoized, worklist-driven engine behind
//! [`analyze`] must be *byte-identical* to the pre-refactor reference
//! sweep [`analyze_reference`] — same response times, same schedulability
//! verdict, same outer-round count — across every bus policy ×
//! persistence mode on seeded paper-style campaigns.
//!
//! The utilization grid deliberately spans schedulable, borderline and
//! overloaded sets so the deadline-miss partial snapshots and the
//! convergence paths are both exercised.

use cpa_analysis::{
    analyze, analyze_reference, AnalysisConfig, AnalysisContext, BusPolicy, PersistenceMode,
};
use cpa_model::{CacheGeometry, Platform};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform")
}

fn policies() -> Vec<BusPolicy> {
    vec![
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 1 },
        BusPolicy::RoundRobin { slots: 2 },
        BusPolicy::Tdma { slots: 2 },
        BusPolicy::Perfect,
    ]
}

fn assert_equivalent(ctx: &AnalysisContext<'_>, config: &AnalysisConfig, tag: &str) {
    let engine = analyze(ctx, config);
    let reference = analyze_reference(ctx, config);
    assert_eq!(
        engine.response_times(),
        reference.response_times(),
        "{tag}: response times diverged"
    );
    assert_eq!(
        engine.is_schedulable(),
        reference.is_schedulable(),
        "{tag}: schedulability verdict diverged"
    );
    assert_eq!(
        engine.outer_iterations(),
        reference.outer_iterations(),
        "{tag}: outer round count diverged"
    );
    assert_eq!(
        engine.hit_outer_iteration_cap(),
        reference.hit_outer_iteration_cap(),
        "{tag}: cap flag diverged"
    );
}

fn campaign(cores: usize, tasks_per_core: usize, utils: &[f64], seeds: std::ops::Range<u64>) {
    for &util in utils {
        let gen_cfg = GeneratorConfig {
            cores,
            tasks_per_core,
            ..GeneratorConfig::paper_default()
        }
        .with_per_core_utilization(util);
        let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
        let platform = platform_for(&gen_cfg);
        for seed in seeds.clone() {
            let tasks = generator
                .generate(&mut ChaCha8Rng::seed_from_u64(seed))
                .expect("task set");
            let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
            for bus in policies() {
                for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
                    let config = AnalysisConfig::new(bus, mode);
                    let tag = format!("cores={cores} util={util} seed={seed} {bus:?} {mode:?}");
                    assert_equivalent(&ctx, &config, &tag);
                }
            }
        }
    }
}

#[test]
fn engine_matches_reference_on_two_core_campaign() {
    campaign(2, 4, &[0.2, 0.4, 0.6], 0..8);
}

#[test]
fn engine_matches_reference_on_overloaded_sets() {
    // High utilization: most sets miss deadlines, pinning the partial
    // snapshot the engine returns on a miss against the reference's.
    campaign(2, 5, &[0.85, 0.95], 0..6);
}

#[test]
fn engine_matches_reference_on_four_cores() {
    campaign(4, 3, &[0.3, 0.5], 0..4);
}
