//! Property pin for the partial re-solve contract: [`analyze_with_parent`]
//! — a solve certified against a converged [`ParentSolution`] of a
//! *related* task set — must produce results **bitwise identical** to a
//! cold [`analyze`], on every field of [`AnalysisResult`] (response times
//! including deadline-miss partial snapshots, schedulability, outer round
//! count, per-task inner iteration tallies, cap flag), across every
//! [`BusPolicy`] × [`PersistenceMode`] combination.
//!
//! The three certification regimes are all exercised:
//!
//! * identical sets → full replay, any policy;
//! * TDMA/perfect bus with a genuinely perturbed set → per-task
//!   certification of the untouched cores;
//! * FP/RR with a perturbed set, and environment mismatches (different
//!   config than the parent's) → the parent is rejected and the run
//!   degrades to a plain engine solve.
//!
//! Under `CPA_WARM_CROSS_CHECK=1` (the ci.sh smoke) every
//! `analyze_with_parent` call additionally re-solves cold *inside* the
//! library and asserts equality there too.

use cpa_analysis::{
    analyze, analyze_with_parent, AnalysisConfig, AnalysisContext, AnalysisResult, AnalysisScratch,
    BusPolicy, ParentSolution, PersistenceMode,
};
use cpa_model::{CacheGeometry, CoreId, Platform, Task, TaskSet, Time};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn platform_for(config: &GeneratorConfig) -> Platform {
    Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform")
}

fn generate(seed: u64, util: f64) -> (TaskSet, Platform) {
    let gen_cfg = GeneratorConfig {
        cores: 2,
        tasks_per_core: 4,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(util);
    let generator = TaskSetGenerator::new(gen_cfg.clone()).expect("generator");
    let platform = platform_for(&gen_cfg);
    let tasks = generator
        .generate(&mut ChaCha8Rng::seed_from_u64(seed))
        .expect("task set");
    (tasks, platform)
}

/// Every bus policy the engine distinguishes, crossed with both modes.
fn configs() -> Vec<AnalysisConfig> {
    let mut out = Vec::new();
    for bus in [
        BusPolicy::FixedPriority,
        BusPolicy::RoundRobin { slots: 2 },
        BusPolicy::Tdma { slots: 2 },
        BusPolicy::Perfect,
    ] {
        for mode in [PersistenceMode::Oblivious, PersistenceMode::Aware] {
            out.push(AnalysisConfig::new(bus, mode));
        }
    }
    out
}

fn assert_bitwise(partial: &AnalysisResult, cold: &AnalysisResult, tag: &str) {
    assert_eq!(
        partial.response_times(),
        cold.response_times(),
        "{tag}: response times (incl. deadline-miss snapshots)"
    );
    assert_eq!(
        partial.outer_iterations(),
        cold.outer_iterations(),
        "{tag}: outer round count"
    );
    assert_eq!(
        partial.inner_iteration_counts(),
        cold.inner_iteration_counts(),
        "{tag}: inner iteration tallies"
    );
    assert_eq!(partial, cold, "{tag}: full result");
}

/// Rebuilds `tasks` with one task perturbed: its processing demand grows
/// by `extra` cycles and, when `move_core`, it hops to the next core —
/// the shape of an optimizer `Reassign` move.
fn perturb(tasks: &TaskSet, victim: usize, extra: u64, move_core: bool, cores: usize) -> TaskSet {
    let rebuilt: Vec<Task> = tasks
        .iter()
        .enumerate()
        .map(|(idx, t)| {
            let mut b = Task::builder(t.name())
                .processing_demand(t.processing_demand())
                .memory_demand(t.memory_demand())
                .residual_memory_demand(t.residual_memory_demand())
                .period(t.period())
                .deadline(t.deadline())
                .core(t.core())
                .priority(t.priority())
                .ecb(t.ecb().clone())
                .ucb(t.ucb().clone())
                .pcb(t.pcb().clone());
            if idx == victim {
                b = b.processing_demand(
                    t.processing_demand()
                        .saturating_add(Time::from_cycles(extra)),
                );
                if move_core {
                    b = b.core(CoreId::new((t.core().index() + 1) % cores));
                }
            }
            b.build().expect("perturbed task stays valid")
        })
        .collect();
    TaskSet::new(rebuilt).expect("perturbed set stays valid")
}

/// Identical sets: the parent is replayed outright under every policy and
/// every mode, and a parent captured under a *different* configuration is
/// rejected without influencing the result — the full cross matrix.
#[test]
fn identical_replay_and_env_mismatch_matrix() {
    let (tasks, platform) = generate(7, 0.3);
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let parents: Vec<Option<ParentSolution>> = configs()
        .iter()
        .map(|config| ParentSolution::capture(&ctx, config, &analyze(&ctx, config)))
        .collect();
    for (pi, parent_cfg) in configs().iter().enumerate() {
        let Some(parent) = &parents[pi] else {
            continue;
        };
        for child_cfg in configs() {
            let cold = analyze(&ctx, &child_cfg);
            let partial =
                analyze_with_parent(&ctx, &child_cfg, &mut AnalysisScratch::new(), parent);
            assert_bitwise(
                &partial,
                &cold,
                &format!("parent={parent_cfg:?} child={child_cfg:?}"),
            );
        }
    }
}

/// The per-task certification path genuinely fires: under TDMA, a
/// perturbation confined to one core must certify every task on the
/// other core (observable through `engine.tasks_certified`), and the
/// replay path must light `engine.parent_replays`.
#[test]
fn certification_paths_are_taken() {
    let (tasks, platform) = generate(11, 0.3);
    let perturbed = perturb(&tasks, 0, 17, false, 2);
    let ctx = AnalysisContext::new(&platform, &tasks).expect("context");
    let ctx_b = AnalysisContext::new(&platform, &perturbed).expect("context b");
    let config = AnalysisConfig::new(BusPolicy::Tdma { slots: 2 }, PersistenceMode::Aware);
    let cold = analyze(&ctx, &config);
    let parent = ParentSolution::capture(&ctx, &config, &cold).expect("schedulable parent");

    let certified = cpa_obs::counter("engine.tasks_certified");
    let replays = cpa_obs::counter("engine.parent_replays");
    let (c0, r0) = (certified.get(), replays.get());
    let partial = analyze_with_parent(&ctx_b, &config, &mut AnalysisScratch::new(), &parent);
    assert_bitwise(&partial, &analyze(&ctx_b, &config), "tdma certified");
    let untouched_core_tasks = tasks
        .iter()
        .filter(|t| t.core() != tasks.iter().next().expect("nonempty").core())
        .count() as u64;
    assert!(untouched_core_tasks > 0, "fixture needs two occupied cores");
    assert_eq!(
        certified.get() - c0,
        untouched_core_tasks,
        "every task on the untouched core must be certified"
    );

    let replayed = analyze_with_parent(&ctx, &config, &mut AnalysisScratch::new(), &parent);
    assert_bitwise(&replayed, &cold, "tdma replay");
    assert_eq!(
        replays.get() - r0,
        1,
        "identical set must take the replay path"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A parent solve certified against a one-task perturbation (the
    /// optimizer's move shapes: a content change in place, or a core
    /// move) must match the cold solve of the perturbed set bitwise, for
    /// every policy × mode. The utilization range deliberately reaches
    /// overload so certified materialization is also compared across
    /// deadline-miss aborts, and the scratch is chained across configs
    /// so partial re-solve composes with warm retention.
    #[test]
    fn partial_resolve_matches_cold_bitwise(
        seed in any::<u64>(),
        util in 0.1f64..0.9,
        victim in 0usize..8,
        extra in 1u64..200,
        move_core in any::<bool>(),
    ) {
        let (tasks_a, platform) = generate(seed, util);
        let victim = victim % tasks_a.len();
        let tasks_b = perturb(&tasks_a, victim, extra, move_core, 2);
        let ctx_a = AnalysisContext::new(&platform, &tasks_a).expect("context a");
        let ctx_b = AnalysisContext::new(&platform, &tasks_b).expect("context b");
        let mut scratch = AnalysisScratch::new();
        for config in configs() {
            let cold_a = analyze(&ctx_a, &config);
            let cold_b = analyze(&ctx_b, &config);
            let Some(parent) = ParentSolution::capture(&ctx_a, &config, &cold_a) else {
                // Unschedulable parents certify nothing; the API refuses
                // them at capture time.
                continue;
            };
            let partial = analyze_with_parent(&ctx_b, &config, &mut scratch, &parent);
            assert_bitwise(
                &partial,
                &cold_b,
                &format!("seed={seed} util={util} victim={victim} move={move_core} {config:?}"),
            );
            // And the degenerate "move that changed nothing" case: the
            // parent replays over its own set mid-chain.
            let replay = analyze_with_parent(&ctx_a, &config, &mut scratch, &parent);
            assert_bitwise(&replay, &cold_a, &format!("replay seed={seed} {config:?}"));
        }
    }
}
