//! Structural invariants of recorded RLE execution traces, for both
//! execution modes:
//!
//! * per core, exec segments are sorted, non-empty, pairwise disjoint,
//!   and confined to `[0, horizon)`;
//! * segments are *maximal* runs: two adjacent segments of one core never
//!   touch with identical `(task, stalled)` state (the RLE merge is
//!   exact, whether cycles were recorded one at a time or span-at-once);
//! * together with their idle gaps the segments tile `[0, horizon)` —
//!   checked exactly on an always-backlogged workload, where the tiling
//!   has no gaps at all;
//! * bus segments are serialized: sorted, exactly `d_mem` long, pairwise
//!   disjoint, granted within the horizon.

use cpa_model::{CacheBlockSet, CacheGeometry, CoreId, Platform, Priority, Task, TaskSet, Time};
use cpa_sim::trace::ExecutionTrace;
use cpa_sim::{BusArbitration, ReleaseModel, SimConfig, SimReport, Simulator};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generated_system(seed: u64, util: f64) -> (Platform, TaskSet) {
    let config = GeneratorConfig {
        cores: 2,
        tasks_per_core: 4,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(util);
    let platform = Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform");
    let generator = TaskSetGenerator::new(config).expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = generator.generate(&mut rng).expect("generation succeeds");
    (platform, tasks)
}

/// Checks every structural invariant; returns the per-core covered cycle
/// counts so callers can assert coverage expectations.
fn check_trace(
    trace: &ExecutionTrace,
    cores: usize,
    horizon: u64,
    d_mem: u64,
    tag: &str,
) -> Vec<u64> {
    let mut covered = vec![0u64; cores];
    for (core, cover) in covered.iter_mut().enumerate() {
        let segs: Vec<_> = trace.exec.iter().filter(|s| s.core == core).collect();
        for pair in segs.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                a.end <= b.start,
                "{tag} core {core}: segments overlap or are unsorted: {a:?} then {b:?}"
            );
            assert!(
                a.end < b.start || a.task != b.task || a.stalled != b.stalled,
                "{tag} core {core}: touching segments with identical state \
                 were not RLE-merged: {a:?} then {b:?}"
            );
        }
        for seg in &segs {
            assert!(
                seg.start < seg.end,
                "{tag} core {core}: empty segment {seg:?}"
            );
            assert!(
                seg.end <= horizon,
                "{tag} core {core}: segment past the horizon: {seg:?}"
            );
            *cover += seg.end - seg.start;
        }
    }
    for pair in trace.bus.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            a.end <= b.start,
            "{tag}: bus transactions overlap or are unsorted: {a:?} then {b:?}"
        );
    }
    for seg in &trace.bus {
        assert_eq!(
            seg.end - seg.start,
            d_mem,
            "{tag}: bus transaction is not d_mem long: {seg:?}"
        );
        assert!(
            seg.start < horizon,
            "{tag}: bus transaction granted past the horizon: {seg:?}"
        );
    }
    covered
}

fn traced_report(
    platform: &Platform,
    tasks: &TaskSet,
    config: SimConfig,
    reference: bool,
) -> SimReport {
    let sim = Simulator::new(platform, tasks, config).expect("task set fits platform");
    if reference {
        sim.run_reference()
    } else {
        sim.run()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random campaign-band systems under every arbitration: the trace of
    /// BOTH execution modes is well-formed, and both cover exactly the
    /// same number of cycles per core.
    #[test]
    fn traces_are_wellformed_in_both_modes(
        seed in 0u64..500,
        util_permille in 100u64..800,
        bus_index in 0usize..3,
        horizon in 1u64..50_000,
    ) {
        let (platform, tasks) = generated_system(seed, util_permille as f64 / 1000.0);
        let bus = [
            BusArbitration::FixedPriority,
            BusArbitration::RoundRobin { slots: 2 },
            BusArbitration::Tdma { slots: 2 },
        ][bus_index];
        let config = SimConfig::new(bus)
            .with_horizon(Time::from_cycles(horizon))
            .with_trace();
        let d_mem = platform.memory_latency().cycles();
        let cores = platform.cores();

        let fast = traced_report(&platform, &tasks, config, false);
        let reference = traced_report(&platform, &tasks, config, true);
        let fast_cover =
            check_trace(fast.trace().expect("trace on"), cores, horizon, d_mem, "fast");
        let ref_cover =
            check_trace(reference.trace().expect("trace on"), cores, horizon, d_mem, "reference");
        prop_assert_eq!(fast_cover, ref_cover);
    }
}

/// On an always-backlogged core the tiling has no idle gaps: segments are
/// back-to-back from 0 to the horizon in both modes.
#[test]
fn backlogged_core_trace_tiles_the_horizon_exactly() {
    let platform = Platform::builder()
        .cores(1)
        .memory_latency(Time::from_cycles(5))
        .build()
        .expect("platform");
    // Demand 40 + 10·5 = 90 per 50-cycle period: permanently overloaded,
    // the core never idles once released.
    let ecb = CacheBlockSet::contiguous(256, 0, 10);
    let task = Task::builder("hog")
        .processing_demand(Time::from_cycles(40))
        .memory_demand(10)
        .residual_memory_demand(10)
        .period(Time::from_cycles(50))
        .deadline(Time::from_cycles(50))
        .core(CoreId::new(0))
        .priority(Priority::new(1))
        .ecb(ecb.clone())
        .pcb(CacheBlockSet::contiguous(256, 0, 0))
        .ucb(CacheBlockSet::contiguous(256, 0, 0))
        .build()
        .expect("task");
    let tasks = TaskSet::new(vec![task]).expect("task set");
    let horizon = 10_000u64;
    let config = SimConfig::new(BusArbitration::FixedPriority)
        .with_horizon(Time::from_cycles(horizon))
        .with_releases(ReleaseModel::Synchronous)
        .with_trace();
    for reference in [false, true] {
        let report = traced_report(&platform, &tasks, config, reference);
        let trace = report.trace().expect("trace on");
        let segs: Vec<_> = trace.exec.iter().filter(|s| s.core == 0).collect();
        assert_eq!(segs.first().expect("nonempty").start, 0);
        assert_eq!(segs.last().expect("nonempty").end, horizon);
        for pair in segs.windows(2) {
            assert_eq!(
                pair[0].end, pair[1].start,
                "mode reference={reference}: gap on a backlogged core: {:?} then {:?}",
                pair[0], pair[1]
            );
        }
    }
}
