//! Differential pin: the event-skipping fast path behind
//! [`Simulator::run`] must be *byte-identical* to the retained
//! cycle-stepped loop [`Simulator::run_reference`] — the full
//! [`SimReport`] (per-task released/completed/deadline-miss/response-time
//! statistics, bus transaction and busy-cycle totals, per-task RNG draw
//! counts) plus the complete RLE execution trace — across every bus
//! arbitration × release model, on seeded campaign-style task sets and on
//! proptest-randomized ones.
//!
//! The utilization grid deliberately spans idle-heavy, saturated and
//! overloaded sets so long dead spans, back-to-back bus traffic, deep
//! preemption nesting and the incomplete-at-horizon tail are all hit.

use cpa_model::{CacheGeometry, Platform, TaskSet, Time};
use cpa_sim::{BusArbitration, ReleaseModel, SimConfig, Simulator};
use cpa_workload::{GeneratorConfig, TaskSetGenerator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn generated_system(
    seed: u64,
    util: f64,
    cores: usize,
    tasks_per_core: usize,
) -> (Platform, TaskSet) {
    let config = GeneratorConfig {
        cores,
        tasks_per_core,
        ..GeneratorConfig::paper_default()
    }
    .with_per_core_utilization(util);
    let platform = Platform::builder()
        .cores(config.cores)
        .cache(CacheGeometry::direct_mapped(config.cache_sets, 32))
        .memory_latency(config.d_mem)
        .build()
        .expect("valid platform");
    let generator = TaskSetGenerator::new(config).expect("valid config");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let tasks = generator.generate(&mut rng).expect("generation succeeds");
    (platform, tasks)
}

fn arbitrations() -> [BusArbitration; 5] {
    [
        BusArbitration::FixedPriority,
        BusArbitration::RoundRobin { slots: 1 },
        BusArbitration::RoundRobin { slots: 2 },
        BusArbitration::Tdma { slots: 1 },
        BusArbitration::Tdma { slots: 2 },
    ]
}

fn release_models(seed: u64) -> [ReleaseModel; 2] {
    [
        ReleaseModel::Synchronous,
        ReleaseModel::Sporadic {
            seed,
            max_extra_percent: 40,
        },
    ]
}

/// Runs both executors on the same system and asserts full report
/// equality, with targeted per-field diffs first for readable failures.
fn assert_equivalent(platform: &Platform, tasks: &TaskSet, config: SimConfig, tag: &str) {
    let fast = Simulator::new(platform, tasks, config)
        .expect("task set fits platform")
        .run();
    let reference = Simulator::new(platform, tasks, config)
        .expect("task set fits platform")
        .run_reference();
    for id in tasks.ids() {
        assert_eq!(
            fast.task(id),
            reference.task(id),
            "{tag}: per-task stats diverged for {id} (incl. rng_draws)"
        );
    }
    assert_eq!(
        fast.bus_transactions, reference.bus_transactions,
        "{tag}: bus transaction totals diverged"
    );
    assert_eq!(
        fast.bus_busy_cycles, reference.bus_busy_cycles,
        "{tag}: bus busy-cycle totals diverged"
    );
    assert_eq!(
        fast.trace(),
        reference.trace(),
        "{tag}: RLE execution traces diverged"
    );
    assert_eq!(fast, reference, "{tag}: full report diverged");
}

fn campaign(utils: &[f64], seeds: std::ops::Range<u64>, horizon: u64) {
    for &util in utils {
        for seed in seeds.clone() {
            let (platform, tasks) = generated_system(seed, util, 2, 4);
            for bus in arbitrations() {
                for releases in release_models(0xC0FFEE ^ seed) {
                    let config = SimConfig::new(bus)
                        .with_horizon(Time::from_cycles(horizon))
                        .with_releases(releases)
                        .with_trace();
                    let tag = format!("util={util} seed={seed} {bus:?} {releases:?}");
                    assert_equivalent(&platform, &tasks, config, &tag);
                }
            }
        }
    }
}

#[test]
fn fast_path_matches_reference_on_idle_heavy_sets() {
    campaign(&[0.15, 0.35], 0..4, 120_000);
}

#[test]
fn fast_path_matches_reference_on_saturated_sets() {
    campaign(&[0.55], 0..4, 120_000);
}

#[test]
fn fast_path_matches_reference_on_overloaded_sets() {
    // Deadline misses and the incomplete-at-horizon tail accounting.
    campaign(&[0.85], 0..3, 120_000);
}

#[test]
fn fast_path_matches_reference_on_four_cores() {
    for seed in 0..3 {
        let (platform, tasks) = generated_system(seed, 0.4, 4, 3);
        for bus in arbitrations() {
            let config = SimConfig::new(bus)
                .with_horizon(Time::from_cycles(100_000))
                .with_trace();
            assert_equivalent(
                &platform,
                &tasks,
                config,
                &format!("4core seed={seed} {bus:?}"),
            );
        }
    }
}

#[test]
fn fast_path_matches_reference_at_degenerate_horizons() {
    // Horizon boundaries: 0 (no work), 1 (one stepped cycle), a prime
    // that lands mid-transaction and mid-burst.
    let (platform, tasks) = generated_system(7, 0.45, 2, 4);
    for horizon in [0u64, 1, 7, 97, 1_003] {
        for bus in arbitrations() {
            let config = SimConfig::new(bus)
                .with_horizon(Time::from_cycles(horizon))
                .with_trace();
            assert_equivalent(
                &platform,
                &tasks,
                config,
                &format!("horizon={horizon} {bus:?}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized campaign-profile systems: any utilization in the
    /// campaign band, any small task count, any seed, any arbitration and
    /// release model — fast path and reference stay byte-identical.
    #[test]
    fn fast_path_matches_reference_on_random_systems(
        seed in 0u64..1_000,
        util_permille in 100u64..900,
        tasks_per_core in 2usize..6,
        bus_index in 0usize..5,
        sporadic in 0usize..2,
        horizon in 1u64..60_000,
    ) {
        let util = util_permille as f64 / 1000.0;
        let (platform, tasks) = generated_system(seed, util, 2, tasks_per_core);
        let releases = if sporadic == 1 {
            ReleaseModel::Sporadic { seed: seed ^ 0x5EED, max_extra_percent: 40 }
        } else {
            ReleaseModel::Synchronous
        };
        let config = SimConfig::new(arbitrations()[bus_index])
            .with_horizon(Time::from_cycles(horizon))
            .with_releases(releases)
            .with_trace();
        let fast = Simulator::new(&platform, &tasks, config).expect("fits").run();
        let reference = Simulator::new(&platform, &tasks, config).expect("fits").run_reference();
        prop_assert_eq!(fast, reference);
    }
}
