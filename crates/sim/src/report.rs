//! Simulation results.

use cpa_model::{TaskId, Time};
use serde::Serialize;

use crate::trace::ExecutionTrace;

/// Per-task simulation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct TaskStats {
    /// Jobs released within the horizon.
    pub released: u64,
    /// Jobs that completed within the horizon.
    pub completed: u64,
    /// Largest observed response time.
    pub max_response: Time,
    /// Sum of response times (for averaging).
    pub total_response: Time,
    /// Jobs that completed after their absolute deadline (plus jobs still
    /// incomplete past it at the horizon).
    pub deadline_misses: u64,
    /// Bus transactions issued by this task's jobs.
    pub bus_accesses: u64,
    /// Bus accesses that were persistent-block loads (first loads or
    /// reloads after eviction by other tasks — the CPRO traffic).
    pub pcb_loads: u64,
    /// Bus accesses caused by post-preemption UCB reloads (CRPD traffic).
    pub crpd_reloads: u64,
    /// Sporadic inter-arrival jitter draws consumed by this task's release
    /// process. Part of the report so the event-skipping fast path is
    /// pinned to consume exactly the reference's RNG stream.
    pub rng_draws: u64,
}

impl TaskStats {
    /// Mean observed response time, if any job completed.
    #[must_use]
    pub fn mean_response(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.total_response.cycles() as f64 / self.completed as f64)
    }
}

/// Whole-run simulation report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimReport {
    per_task: Vec<TaskStats>,
    /// Cycles the bus spent transferring data.
    pub bus_busy_cycles: u64,
    /// Total bus transactions served.
    pub bus_transactions: u64,
    /// Simulated horizon.
    pub horizon: Time,
    pub(crate) trace: Option<ExecutionTrace>,
}

impl SimReport {
    pub(crate) fn new(tasks: usize, horizon: Time) -> Self {
        SimReport {
            per_task: vec![TaskStats::default(); tasks],
            bus_busy_cycles: 0,
            bus_transactions: 0,
            horizon,
            trace: None,
        }
    }

    pub(crate) fn task_mut(&mut self, id: TaskId) -> &mut TaskStats {
        &mut self.per_task[id.index()]
    }

    /// Statistics of one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn task(&self, id: TaskId) -> &TaskStats {
        &self.per_task[id.index()]
    }

    /// Per-task statistics in priority order.
    #[must_use]
    pub fn tasks(&self) -> &[TaskStats] {
        &self.per_task
    }

    /// `true` if no job missed its deadline.
    #[must_use]
    pub fn no_deadline_misses(&self) -> bool {
        self.per_task.iter().all(|t| t.deadline_misses == 0)
    }

    /// The recorded execution trace, if
    /// [`SimConfig::record_trace`](crate::SimConfig) was set.
    #[must_use]
    pub fn trace(&self) -> Option<&ExecutionTrace> {
        self.trace.as_ref()
    }

    /// Observed bus utilization over the horizon.
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        if self.horizon.is_zero() {
            0.0
        } else {
            self.bus_busy_cycles as f64 / self.horizon.cycles() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut r = SimReport::new(2, Time::from_cycles(100));
        r.task_mut(TaskId::new(0)).completed = 4;
        r.task_mut(TaskId::new(0)).total_response = Time::from_cycles(40);
        r.bus_busy_cycles = 25;
        assert_eq!(r.task(TaskId::new(0)).mean_response(), Some(10.0));
        assert_eq!(r.task(TaskId::new(1)).mean_response(), None);
        assert!(r.no_deadline_misses());
        r.task_mut(TaskId::new(1)).deadline_misses = 1;
        assert!(!r.no_deadline_misses());
        assert!((r.bus_utilization() - 0.25).abs() < 1e-12);
        assert_eq!(r.tasks().len(), 2);
    }
}
