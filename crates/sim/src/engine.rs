//! The simulation engine: a cycle-granular stepper and two drivers.
//!
//! The engine is split into two layers:
//!
//! * **the stepper** ([`Simulator::step`]): executes exactly one cycle —
//!   releases, bus completion, per-core scheduling/execution, bus grant —
//!   and is the single source of truth for the simulated semantics;
//! * **the drivers**: [`Simulator::run`] (the default) interleaves stepped
//!   *event* cycles with bulk-executed dead spans computed by the
//!   event-horizon module ([`skip`]), while [`Simulator::run_reference`]
//!   steps every cycle. Both produce byte-identical [`SimReport`]s —
//!   pinned by `tests/skip_equivalence.rs` and re-checked in situ by the
//!   `sim_engine` CI bench.

use std::collections::VecDeque;

use cpa_model::{ModelError, Platform, TaskId, TaskSet, Time};
use rand::Rng as _;
use rand::SeedableRng as _;
use rand_chacha::ChaCha8Rng;

use crate::config::{BusArbitration, ReleaseModel, SimConfig};
use crate::report::SimReport;
use crate::trace::TraceRecorder;

mod skip;

/// What a single bus transaction loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadKind {
    /// First load (or post-eviction reload) of a persistent block into the
    /// given cache set.
    Pcb(usize),
    /// One access of the residual demand `MD^r`; optionally takes
    /// ownership of a non-persistent set.
    Residual(Option<usize>),
    /// Post-preemption reload of a useful block (CRPD traffic).
    Ucb(usize),
}

#[derive(Debug)]
struct Job {
    task: TaskId,
    release: u64,
    abs_deadline: u64,
    remaining_compute: u64,
    pending_loads: VecDeque<LoadKind>,
    started: bool,
    /// UCB sets owned at the last preemption, to diff at resume.
    snapshot: Option<Vec<usize>>,
    /// Was this job the one running on its core last cycle?
    was_running: bool,
    done: bool,
}

#[derive(Debug)]
struct BusState {
    busy_until: u64,
    current: Option<usize>, // job arena index
    rr_cursor: usize,
    rr_remaining: u64,
}

/// The discrete-event (cycle-stepped) multicore simulator.
///
/// See the crate docs for the executed model and an example.
#[derive(Debug)]
pub struct Simulator<'a> {
    platform: &'a Platform,
    tasks: &'a TaskSet,
    config: SimConfig,
    /// Per core, per cache set: the task owning the resident block.
    caches: Vec<Vec<Option<TaskId>>>,
    jobs: Vec<Job>,
    /// Active (released, incomplete) job indices per core.
    ready: Vec<Vec<usize>>,
    next_release: Vec<u64>,
    rngs: Vec<ChaCha8Rng>,
    bus: BusState,
    now: u64,
    report: SimReport,
    recorder: TraceRecorder,
    /// Cycles the event-skipping driver jumped over (0 under
    /// [`Simulator::run_reference`]).
    cycles_skipped: u64,
    /// Dead spans the event-skipping driver executed in bulk.
    skip_spans: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for one task set on one platform.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::validate_against`] errors.
    pub fn new(
        platform: &'a Platform,
        tasks: &'a TaskSet,
        config: SimConfig,
    ) -> Result<Self, ModelError> {
        tasks.validate_against(platform)?;
        let n = tasks.len();
        let rngs = (0..n)
            .map(|i| {
                let seed = match config.releases {
                    ReleaseModel::Synchronous => 0,
                    ReleaseModel::Sporadic { seed, .. } => seed,
                };
                ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        Ok(Simulator {
            platform,
            tasks,
            config,
            caches: vec![vec![None; platform.cache().sets()]; platform.cores()],
            jobs: Vec::new(),
            ready: vec![Vec::new(); platform.cores()],
            next_release: vec![0; n],
            rngs,
            bus: BusState {
                busy_until: 0,
                current: None,
                rr_cursor: 0,
                rr_remaining: 0,
            },
            now: 0,
            report: SimReport::new(n, config.horizon),
            recorder: TraceRecorder::new(platform.cores(), config.record_trace),
            cycles_skipped: 0,
            skip_spans: 0,
        })
    }

    /// Runs the simulation to the configured horizon and returns the
    /// report. Jobs still incomplete at the horizon whose deadline has
    /// passed are counted as deadline misses.
    ///
    /// This is the event-skipping fast path: it steps every *interesting*
    /// cycle exactly and jumps the dead spans in between (see the
    /// [`skip`] module for the event-horizon computation). The result is
    /// byte-identical to [`Simulator::run_reference`].
    #[must_use]
    pub fn run(mut self) -> SimReport {
        let _span = cpa_obs::span!("sim.run");
        let horizon = self.config.horizon.cycles();
        while self.now < horizon {
            self.step();
            self.skip_ahead(horizon);
        }
        self.finish(horizon)
    }

    /// Runs the simulation stepping every single cycle — the pre-fast-path
    /// loop, retained as the differential reference for
    /// `tests/skip_equivalence.rs`, the `sim_engine` bench gate, and
    /// `cpa-validate --reference-sim`.
    #[must_use]
    pub fn run_reference(mut self) -> SimReport {
        let _span = cpa_obs::span!("sim.run");
        let horizon = self.config.horizon.cycles();
        while self.now < horizon {
            self.step();
        }
        self.finish(horizon)
    }

    /// Executes exactly one cycle: the four phases, then the clock tick.
    /// Both drivers funnel through this, so the semantics cannot drift.
    fn step(&mut self) {
        self.release_jobs();
        self.complete_bus_transaction();
        self.schedule_and_execute();
        self.grant_bus();
        self.now += 1;
    }

    /// Horizon-end accounting shared by both drivers.
    fn finish(mut self, horizon: u64) -> SimReport {
        // Account incomplete-but-late jobs.
        for job in &self.jobs {
            if !job.done && job.abs_deadline < horizon {
                self.report.task_mut(job.task).deadline_misses += 1;
            }
        }
        self.observe_run(horizon);
        self.report.trace = self.recorder.finish();
        self.report
    }

    /// Reports the run's totals through `cpa-obs`: cumulative counters for
    /// campaign metrics and one `sim.report` event for traces. Counters are
    /// only touched when a subscriber is active, so untraced simulations pay
    /// a single branch.
    fn observe_run(&self, horizon: u64) {
        if !cpa_obs::active() {
            return;
        }
        let released: u64 = self.tasks.ids().map(|i| self.report.task(i).released).sum();
        let completed: u64 = self
            .tasks
            .ids()
            .map(|i| self.report.task(i).completed)
            .sum();
        let misses: u64 = self
            .tasks
            .ids()
            .map(|i| self.report.task(i).deadline_misses)
            .sum();
        cpa_obs::counter("sim.runs").incr();
        // `sim.cycles` is the *simulated* horizon; the event-skipping
        // driver only steps `sim.cycles_stepped` of them and jumps the
        // rest, so the stepped/skipped split makes the skip ratio visible
        // (`cpa-trace sim` reports it per run).
        cpa_obs::counter("sim.cycles").add(horizon);
        cpa_obs::counter("sim.cycles_stepped").add(horizon - self.cycles_skipped);
        cpa_obs::counter("sim.cycles_skipped").add(self.cycles_skipped);
        cpa_obs::counter("sim.skip_spans").add(self.skip_spans);
        cpa_obs::counter("sim.jobs_released").add(released);
        cpa_obs::counter("sim.jobs_completed").add(completed);
        cpa_obs::counter("sim.deadline_misses").add(misses);
        cpa_obs::counter("sim.bus_transactions").add(self.report.bus_transactions);
        cpa_obs::counter("sim.bus_busy_cycles").add(self.report.bus_busy_cycles);
        // Bus-slot occupancy in permille, binned for the distribution view.
        cpa_obs::histogram!(
            "sim.bus_occupancy_permille",
            (self.report.bus_utilization() * 1000.0) as u64
        );
        cpa_obs::event!(
            "sim.report",
            horizon = horizon,
            cycles_stepped = horizon - self.cycles_skipped,
            cycles_skipped = self.cycles_skipped,
            skip_spans = self.skip_spans,
            released = released,
            completed = completed,
            deadline_misses = misses,
            bus_transactions = self.report.bus_transactions,
            bus_busy_cycles = self.report.bus_busy_cycles,
        );
    }

    fn d_mem(&self) -> u64 {
        self.platform.memory_latency().cycles()
    }

    fn release_jobs(&mut self) {
        for i in self.tasks.ids() {
            if self.next_release[i.index()] != self.now {
                continue;
            }
            let task = &self.tasks[i];
            let release = self.now;
            let job = Job {
                task: i,
                release,
                abs_deadline: release + task.deadline().cycles(),
                remaining_compute: task.processing_demand().cycles(),
                pending_loads: VecDeque::new(),
                started: false,
                snapshot: None,
                was_running: false,
                done: false,
            };
            let idx = self.jobs.len();
            self.jobs.push(job);
            self.ready[task.core().index()].push(idx);
            self.report.task_mut(i).released += 1;
            cpa_obs::event!("sim.release", task = i.index(), t = self.now);

            let period = task.period().cycles();
            let extra = match self.config.releases {
                ReleaseModel::Synchronous => 0,
                ReleaseModel::Sporadic {
                    max_extra_percent, ..
                } => {
                    let max_extra = period.saturating_mul(u64::from(max_extra_percent)) / 100;
                    if max_extra == 0 {
                        0
                    } else {
                        // Draw counts are part of the report so the
                        // event-skipping pin also covers RNG consumption.
                        self.report.task_mut(i).rng_draws += 1;
                        self.rngs[i.index()].gen_range(0..=max_extra)
                    }
                }
            };
            self.next_release[i.index()] = release + period + extra;
        }
    }

    /// Delivers a finished bus transaction (the bus is non-preemptive:
    /// the load completes even if its job was preempted meanwhile).
    fn complete_bus_transaction(&mut self) {
        if self.bus.current.is_none() || self.now < self.bus.busy_until {
            return;
        }
        let job_idx = self.bus.current.take().expect("checked above");
        let (task, core, kind) = {
            let job = &mut self.jobs[job_idx];
            let kind = job.pending_loads.pop_front().expect("load was in flight");
            (job.task, self.tasks[job.task].core().index(), kind)
        };
        let stats = self.report.task_mut(task);
        stats.bus_accesses += 1;
        match kind {
            LoadKind::Pcb(set) => {
                stats.pcb_loads += 1;
                self.caches[core][set] = Some(task);
            }
            LoadKind::Residual(Some(set)) => {
                self.caches[core][set] = Some(task);
            }
            LoadKind::Residual(None) => {}
            LoadKind::Ucb(set) => {
                stats.crpd_reloads += 1;
                self.caches[core][set] = Some(task);
            }
        }
        self.report.bus_transactions += 1;
        self.report.bus_busy_cycles += self.d_mem();
    }

    /// Index (into the arena) of the highest-priority active job on a
    /// core, if any.
    fn pick(&self, core: usize) -> Option<usize> {
        self.ready[core]
            .iter()
            .copied()
            .min_by_key(|&j| (self.jobs[j].task, self.jobs[j].release))
    }

    fn schedule_and_execute(&mut self) {
        for core in 0..self.platform.cores() {
            let Some(running) = self.pick(core) else {
                self.recorder.record(core, self.now, None);
                continue;
            };
            // Preemption bookkeeping: jobs that were running but are no
            // longer chosen snapshot their owned UCB sets.
            let preempted: Vec<usize> = self.ready[core]
                .iter()
                .copied()
                .filter(|&j| j != running && self.jobs[j].was_running)
                .collect();
            for j in preempted {
                let task = self.jobs[j].task;
                let owned: Vec<usize> = self.tasks[task]
                    .ucb()
                    .iter()
                    .filter(|&s| self.caches[core][s] == Some(task))
                    .collect();
                let job = &mut self.jobs[j];
                job.was_running = false;
                if job.started {
                    job.snapshot = Some(owned);
                }
            }

            let task_id = self.jobs[running].task;
            // First dispatch: queue the job's memory work.
            if !self.jobs[running].started {
                let loads = self.initial_loads(task_id, core);
                let job = &mut self.jobs[running];
                job.pending_loads = loads;
                job.started = true;
            }
            // Resume after preemption: reload evicted useful blocks.
            if let Some(snapshot) = self.jobs[running].snapshot.take() {
                if !self.jobs[running].was_running {
                    let reloads: Vec<LoadKind> = snapshot
                        .into_iter()
                        .filter(|&s| self.caches[core][s] != Some(task_id))
                        .map(LoadKind::Ucb)
                        .collect();
                    for load in reloads.into_iter().rev() {
                        self.jobs[running].pending_loads.push_front(load);
                    }
                }
            }
            self.jobs[running].was_running = true;

            let waiting_for_bus = !self.jobs[running].pending_loads.is_empty();
            self.recorder
                .record(core, self.now, Some((task_id, waiting_for_bus)));
            if waiting_for_bus {
                continue; // stalled on memory
            }
            let job = &mut self.jobs[running];
            if job.remaining_compute > 0 {
                job.remaining_compute -= 1;
            }
            if job.remaining_compute == 0 {
                job.done = true;
                let response = self.now + 1 - job.release;
                let (task, deadline) = (job.task, job.abs_deadline);
                self.ready[core].retain(|&j| j != running);
                let stats = self.report.task_mut(task);
                stats.completed += 1;
                stats.max_response = stats.max_response.max(Time::from_cycles(response));
                stats.total_response += Time::from_cycles(response);
                let missed = self.now + 1 > deadline;
                if missed {
                    stats.deadline_misses += 1;
                }
                cpa_obs::event!(
                    "sim.complete",
                    task = task.index(),
                    t = self.now + 1,
                    response = response,
                    missed = missed,
                );
            }
        }
    }

    /// The memory work of a fresh job: missing persistent blocks plus the
    /// residual demand, capped at `MD` total (Eq. (10)'s `min`: a job
    /// never issues more than its isolation worst case).
    fn initial_loads(&self, task_id: TaskId, core: usize) -> VecDeque<LoadKind> {
        let task = &self.tasks[task_id];
        let md = task.memory_demand();
        let md_r = task.residual_memory_demand();
        let missing_pcbs: Vec<usize> = task
            .pcb()
            .iter()
            .filter(|&s| self.caches[core][s] != Some(task_id))
            .collect();
        let pcb_budget = md.saturating_sub(md_r).min(missing_pcbs.len() as u64) as usize;
        let residual_count = md_r.min(md);
        // Residual accesses cycle over the non-persistent footprint,
        // churning ownership there (which is what evicts neighbours and
        // produces CPRO for them).
        let churn: Vec<usize> = task.ecb().difference(task.pcb()).iter().collect();
        let mut loads = VecDeque::with_capacity(pcb_budget + residual_count as usize);
        for &set in missing_pcbs.iter().take(pcb_budget) {
            loads.push_back(LoadKind::Pcb(set));
        }
        for k in 0..residual_count {
            let target = if churn.is_empty() {
                None
            } else {
                Some(churn[(k as usize) % churn.len()])
            };
            loads.push_back(LoadKind::Residual(target));
        }
        loads
    }

    /// Pending-bus cores: the currently scheduled job per core, if it is
    /// stalled on a load and not already being served.
    fn requesting_job(&self, core: usize) -> Option<usize> {
        let job = self.pick(core)?;
        if self.bus.current == Some(job) {
            return None;
        }
        let j = &self.jobs[job];
        (j.started && !j.pending_loads.is_empty()).then_some(job)
    }

    fn grant_bus(&mut self) {
        if self.bus.current.is_some() && self.now < self.bus.busy_until {
            return;
        }
        let cores = self.platform.cores();
        let d_mem = self.d_mem();
        let grant = match self.config.bus {
            BusArbitration::FixedPriority => (0..cores)
                .filter_map(|c| self.requesting_job(c))
                .min_by_key(|&j| (self.jobs[j].task, self.jobs[j].release)),
            BusArbitration::RoundRobin { slots } => {
                let mut chosen = None;
                for _ in 0..cores {
                    if self.bus.rr_remaining == 0 {
                        self.bus.rr_cursor = (self.bus.rr_cursor + 1) % cores;
                        self.bus.rr_remaining = slots;
                    }
                    if let Some(j) = self.requesting_job(self.bus.rr_cursor) {
                        self.bus.rr_remaining -= 1;
                        chosen = Some(j);
                        break;
                    }
                    // Work-conserving: skip to the next core.
                    self.bus.rr_remaining = 0;
                }
                chosen
            }
            BusArbitration::Tdma { slots } => {
                // Grants only at slot boundaries; the slot's owner either
                // uses it or it idles.
                if !self.now.is_multiple_of(d_mem) {
                    None
                } else {
                    let slot = self.now / d_mem;
                    let owner = ((slot / slots) % cores as u64) as usize;
                    self.requesting_job(owner)
                }
            }
        };
        if let Some(job) = grant {
            self.bus.current = Some(job);
            self.bus.busy_until = self.now + d_mem;
            self.recorder
                .record_bus(self.jobs[job].task, self.now, self.now + d_mem);
            // Queue depth at grant time: cores left waiting on the bus.
            if cpa_obs::timing_enabled() {
                let waiting = (0..cores)
                    .filter(|&c| self.requesting_job(c).is_some_and(|j| j != job))
                    .count() as u64;
                cpa_obs::histogram_record("sim.bus_queue_depth", waiting);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_model::{CacheBlockSet, CoreId, Priority, Task};

    fn platform(cores: usize, d_mem: u64) -> Platform {
        Platform::builder()
            .cores(cores)
            .memory_latency(Time::from_cycles(d_mem))
            .build()
            .unwrap()
    }

    #[allow(clippy::too_many_arguments)] // test fixture
    fn task(
        name: &str,
        prio: u32,
        core: usize,
        pd: u64,
        md: u64,
        md_r: u64,
        period: u64,
        ecb_start: usize,
        ecb_len: usize,
        pcb_len: usize,
    ) -> Task {
        let ecb = CacheBlockSet::contiguous(256, ecb_start, ecb_len);
        let pcb = CacheBlockSet::contiguous(256, ecb_start, pcb_len.min(ecb_len));
        Task::builder(name)
            .processing_demand(Time::from_cycles(pd))
            .memory_demand(md)
            .residual_memory_demand(md_r)
            .period(Time::from_cycles(period))
            .deadline(Time::from_cycles(period))
            .core(CoreId::new(core))
            .priority(Priority::new(prio))
            .ucb(pcb.clone())
            .ecb(ecb)
            .pcb(pcb)
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_first_job_pays_pcbs_then_persists() {
        // PD 10, MD 8, MD^r 2, 6 PCBs. d_mem 5. First job: 6 PCB loads +
        // 2 residual = 8 accesses → R = 10 + 8·5 = 50. Later jobs: only 2
        // residual → R = 10 + 2·5 = 20.
        let p = platform(1, 5);
        let ts = TaskSet::new(vec![task("t", 1, 0, 10, 8, 2, 200, 0, 8, 6)]).unwrap();
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(1_000));
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        let stats = report.task(TaskId::new(0));
        assert_eq!(stats.released, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.max_response, Time::from_cycles(50));
        // 5 jobs: 8 + 4×2 accesses.
        assert_eq!(stats.bus_accesses, 16);
        assert_eq!(stats.pcb_loads, 6);
        assert_eq!(stats.deadline_misses, 0);
        assert_eq!(report.bus_transactions, 16);
        assert_eq!(report.bus_busy_cycles, 80);
    }

    #[test]
    fn same_core_neighbour_evicts_pcbs_cpro() {
        // Two tasks sharing cache sets on one core: the high-priority
        // task's residual churn overlaps the low one's PCBs, forcing PCB
        // reloads (CPRO) on every job.
        let p = platform(1, 5);
        let hi = task("hi", 1, 0, 10, 4, 4, 100, 0, 4, 0); // churns sets 0..4
        let lo = task("lo", 2, 0, 10, 6, 0, 300, 0, 6, 6); // PCBs 0..6
        let ts = TaskSet::new(vec![hi, lo]).unwrap();
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(900));
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        let lo_stats = report.task(TaskId::new(1));
        assert_eq!(lo_stats.completed, 3);
        // Job 1: 6 PCB loads. Jobs 2,3: sets 0..4 were churned by "hi"
        // (3–4 of its jobs ran in between), so 4 PCBs reload each time.
        assert_eq!(lo_stats.pcb_loads, 6 + 4 + 4);
        assert_eq!(lo_stats.bus_accesses, lo_stats.pcb_loads);
    }

    #[test]
    fn preemption_triggers_ucb_reloads() {
        // Low task (PD long) gets preempted by high task whose churn
        // evicts its UCBs; resume pays CRPD reloads.
        let p = platform(1, 2);
        let hi = task("hi", 1, 0, 10, 3, 3, 60, 0, 3, 0); // churns sets 0..3
        let lo = task("lo", 2, 0, 100, 3, 0, 400, 0, 3, 3); // UCB/PCB 0..3
        let ts = TaskSet::new(vec![hi, lo]).unwrap();
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(400));
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        let lo_stats = report.task(TaskId::new(1));
        assert_eq!(lo_stats.completed, 1);
        assert!(lo_stats.crpd_reloads > 0, "preemptions must cost reloads");
    }

    #[test]
    fn md_caps_job_traffic() {
        // md < md_r + |PCB|: the job must not exceed MD accesses.
        let p = platform(1, 5);
        let ts = TaskSet::new(vec![task("t", 1, 0, 10, 3, 1, 500, 0, 8, 8)]).unwrap();
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(499));
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        let stats = report.task(TaskId::new(0));
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.bus_accesses, 3);
    }

    #[test]
    fn tdma_is_not_work_conserving() {
        // One task on core 0 of a 2-core platform, TDMA s=1, d_mem 10:
        // core 0 owns every other 10-cycle slot. First access waits for
        // slot 0 (granted at t=0), second must wait for slot 2 (t=20).
        let p = platform(2, 10);
        let ts = TaskSet::new(vec![task("t", 1, 0, 5, 2, 2, 1_000, 0, 2, 0)]).unwrap();
        let cfg_tdma =
            SimConfig::new(BusArbitration::Tdma { slots: 1 }).with_horizon(Time::from_cycles(500));
        let tdma = Simulator::new(&p, &ts, cfg_tdma).unwrap().run();
        let cfg_rr = SimConfig::new(BusArbitration::RoundRobin { slots: 1 })
            .with_horizon(Time::from_cycles(500));
        let rr = Simulator::new(&p, &ts, cfg_rr).unwrap().run();
        // RR (work-conserving) back-to-back: 2·10 + 5 = 25.
        assert_eq!(rr.task(TaskId::new(0)).max_response, Time::from_cycles(25));
        // TDMA: second access waits out core 1's slot: 10 idle cycles more.
        assert_eq!(
            tdma.task(TaskId::new(0)).max_response,
            Time::from_cycles(35)
        );
    }

    #[test]
    fn cross_core_contention_delays() {
        let p = platform(2, 5);
        let mk =
            |name: &str, prio, core, start| task(name, prio, core, 20, 10, 10, 500, start, 10, 0);
        let solo_ts = TaskSet::new(vec![mk("a", 1, 0, 0)]).unwrap();
        let solo_p = platform(1, 5);
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(499));
        let solo = Simulator::new(&solo_p, &solo_ts, cfg).unwrap().run();

        let pair_ts = TaskSet::new(vec![mk("a", 1, 0, 0), mk("b", 2, 1, 100)]).unwrap();
        let pair = Simulator::new(&p, &pair_ts, cfg).unwrap().run();
        // "a" wins FP arbitration, so it is unaffected; "b" is delayed.
        assert_eq!(
            solo.task(TaskId::new(0)).max_response,
            pair.task(TaskId::new(0)).max_response
        );
        assert!(pair.task(TaskId::new(1)).max_response > pair.task(TaskId::new(0)).max_response);
        // Bus utilization is sane.
        assert!(pair.bus_utilization() > 0.0 && pair.bus_utilization() <= 1.0);
    }

    #[test]
    fn deadline_misses_detected_when_overloaded() {
        let p = platform(1, 5);
        // Demand 10 + 10·5 = 60 per 50-cycle period: overload.
        let ts = TaskSet::new(vec![task("t", 1, 0, 10, 10, 10, 50, 0, 10, 0)]).unwrap();
        let cfg =
            SimConfig::new(BusArbitration::FixedPriority).with_horizon(Time::from_cycles(1_000));
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        assert!(report.task(TaskId::new(0)).deadline_misses > 0);
        assert!(!report.no_deadline_misses());
    }

    #[test]
    fn sporadic_releases_are_spaced_by_at_least_the_period() {
        let p = platform(1, 5);
        let ts = TaskSet::new(vec![task("t", 1, 0, 10, 2, 2, 100, 0, 2, 0)]).unwrap();
        let cfg = SimConfig::new(BusArbitration::FixedPriority)
            .with_horizon(Time::from_cycles(10_000))
            .with_releases(ReleaseModel::Sporadic {
                seed: 9,
                max_extra_percent: 50,
            });
        let report = Simulator::new(&p, &ts, cfg).unwrap().run();
        let released = report.task(TaskId::new(0)).released;
        // With up to +50% inter-arrival, between 10_000/150 and 10_000/100.
        assert!((66..=100).contains(&released), "{released}");
        // Deterministic under the same seed.
        let again = Simulator::new(&p, &ts, cfg).unwrap().run();
        assert_eq!(again.task(TaskId::new(0)).released, released);
    }
}
