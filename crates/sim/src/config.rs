//! Simulator configuration.

use cpa_model::Time;
use serde::{Deserialize, Serialize};

/// Bus arbitration policy executed by the simulator (the concrete
/// counterparts of the analysed policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusArbitration {
    /// Pending accesses are served highest task priority first
    /// (non-preemptively once started).
    FixedPriority,
    /// Cores are served in cyclic order, up to `slots` consecutive
    /// accesses per visit; cores without pending requests are skipped
    /// (work-conserving).
    RoundRobin {
        /// Consecutive accesses granted per core visit.
        slots: u64,
    },
    /// Fixed time-division schedule: the bus cycles through `m · slots`
    /// slots of `d_mem` cycles, core `c` owning slots
    /// `[c·slots, (c+1)·slots)`. A slot unused by its owner stays idle
    /// (non-work-conserving).
    Tdma {
        /// Slots per core per TDMA cycle.
        slots: u64,
    },
}

/// How job releases are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReleaseModel {
    /// Strictly periodic releases, all tasks released together at time 0
    /// (the synchronous critical instant).
    Synchronous,
    /// Sporadic releases: each inter-arrival is `T + U(0, jitter_num/jitter_den · T)`,
    /// drawn reproducibly from `seed`.
    Sporadic {
        /// RNG seed.
        seed: u64,
        /// Extra inter-arrival as a percentage of the period (0–100+).
        max_extra_percent: u32,
    },
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Bus arbitration policy.
    pub bus: BusArbitration,
    /// Release pattern.
    pub releases: ReleaseModel,
    /// Simulated horizon in cycles.
    pub horizon: Time,
    /// Record an execution trace (core occupancy + bus transactions) for
    /// Gantt rendering. Off by default — tracing long horizons allocates.
    pub record_trace: bool,
}

impl SimConfig {
    /// Creates a configuration with synchronous releases and a default
    /// 1 000 000-cycle horizon.
    #[must_use]
    pub fn new(bus: BusArbitration) -> Self {
        SimConfig {
            bus,
            releases: ReleaseModel::Synchronous,
            horizon: Time::from_cycles(1_000_000),
            record_trace: false,
        }
    }

    /// Returns a copy with a different horizon.
    #[must_use]
    pub fn with_horizon(mut self, horizon: Time) -> Self {
        self.horizon = horizon;
        self
    }

    /// Returns a copy with a different release model.
    #[must_use]
    pub fn with_releases(mut self, releases: ReleaseModel) -> Self {
        self.releases = releases;
        self
    }

    /// Returns a copy that records an execution trace (see
    /// [`crate::trace::render_gantt`]).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(BusArbitration::Tdma { slots: 3 })
            .with_horizon(Time::from_cycles(42))
            .with_releases(ReleaseModel::Sporadic {
                seed: 7,
                max_extra_percent: 50,
            });
        assert_eq!(c.bus, BusArbitration::Tdma { slots: 3 });
        assert_eq!(c.horizon.cycles(), 42);
        assert!(matches!(c.releases, ReleaseModel::Sporadic { seed: 7, .. }));
    }
}
