//! Discrete-event multicore simulator: cores, private caches, shared bus.
//!
//! The paper's evaluation is analytic, but its worked example (Fig. 1) is a
//! concrete schedule: jobs releasing, preempting, loading cache blocks and
//! contending for the memory bus. This crate executes exactly that model so
//! the analysis bounds can be checked against observed behaviour:
//!
//! * partitioned fixed-priority **preemptive scheduling** per core;
//! * a private direct-mapped instruction cache per core, tracked at cache-
//!   set granularity (who owns each set);
//! * a shared memory bus serving one access per `d_mem` cycles under
//!   **FP**, **RR** or **TDMA** arbitration;
//! * the task memory model of §IV: a job loads its missing persistent
//!   blocks (at most once while they stay cached — cache persistence),
//!   issues its residual demand `MD^r` against its non-persistent sets,
//!   and reloads evicted useful blocks after preemptions (CRPD) — PCB
//!   evictions by same-core neighbours surface as CPRO, emergently.
//!
//! Observed response times are *witnesses*: they can only validate, never
//! refute, the analytic WCRT (`observed ≤ analyzed` for every task of a
//! schedulable set — see the workspace integration tests).
//!
//! [`Simulator::run`] is an **event-skipping** executor: it steps only the
//! cycles at which state can change (releases, bus completions,
//! compute-burst ends, TDMA slot boundaries) and jumps the dead spans in
//! between, byte-identically to the retained cycle-stepped
//! [`Simulator::run_reference`] loop (see DESIGN.md §11 and
//! `tests/skip_equivalence.rs`).
//!
//! # Example
//!
//! ```
//! use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};
//! use cpa_sim::{BusArbitration, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::builder().cores(2).memory_latency(Time::from_cycles(5)).build()?;
//! let mk = |name: &str, prio, core| -> Result<Task, cpa_model::ModelError> {
//!     Task::builder(name)
//!         .processing_demand(Time::from_cycles(50))
//!         .memory_demand(10)
//!         .residual_memory_demand(2)
//!         .period(Time::from_cycles(1_000))
//!         .deadline(Time::from_cycles(1_000))
//!         .core(CoreId::new(core))
//!         .priority(Priority::new(prio))
//!         .ecb(CacheBlockSet::contiguous(256, core * 20, 8))
//!         .pcb(CacheBlockSet::contiguous(256, core * 20, 8))
//!         .build()
//! };
//! let tasks = TaskSet::new(vec![mk("a", 1, 0)?, mk("b", 2, 1)?])?;
//! let config = SimConfig::new(BusArbitration::RoundRobin { slots: 2 })
//!     .with_horizon(Time::from_cycles(5_000));
//! let report = Simulator::new(&platform, &tasks, config)?.run();
//! assert_eq!(report.task(cpa_model::TaskId::new(0)).completed, 5);
//! assert_eq!(report.task(cpa_model::TaskId::new(0)).deadline_misses, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod engine;
mod report;
pub mod trace;

pub use config::{BusArbitration, ReleaseModel, SimConfig};
pub use engine::Simulator;
pub use report::{SimReport, TaskStats};
pub use trace::ExecutionTrace;
