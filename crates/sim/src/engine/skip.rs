//! Event-horizon computation for the event-skipping fast path.
//!
//! [`Simulator::run`](super::Simulator::run) alternates one exactly
//! stepped cycle with bulk-executed work from this module, in two tiers:
//!
//! * **dead spans** ([`Simulator::skip_ahead`]'s jump): the half-open
//!   range of cycles up to (excluding) the next cycle at which the
//!   simulation state can change at all. Per core the span extends the
//!   RLE trace and bulk-decrements the running job's `remaining_compute`;
//!   nothing else can move.
//! * **serial bus phases** ([`Simulator::batch_transactions`]): runs of
//!   back-to-back bus completions and re-grants inside a window with no
//!   releases and no compute-burst ends. Each such cycle is executed by
//!   calling the *real* stepper phases `complete_bus_transaction` and
//!   `grant_bus` — identical mutations by construction — while the
//!   per-core scheduling scan, provably a no-op there, is skipped.
//!
//! # Why the event set is sufficient
//!
//! Inside a dead span no stepper phase can do anything, because every
//! state transition is anchored to one of the candidate events:
//!
//! * **job release** — `release_jobs` fires exactly at `next_release[i]`;
//!   releases are the only way the per-core ready sets grow, and the only
//!   RNG consumer. The earliest `next_release` bounds the span.
//! * **bus completion** — `complete_bus_transaction` fires exactly at
//!   `bus.busy_until`; it is the only place `pending_loads` shrink,
//!   caches mutate, and bus statistics accrue. While the bus is busy,
//!   `grant_bus` early-returns without touching arbiter state.
//! * **compute-burst end** — the only per-cycle mutation inside a span is
//!   the running, unstalled job's `remaining_compute -= 1`; it completes
//!   (and leaves the ready set) at `now + remaining - 1`, which bounds
//!   the span, so bulk-decrementing is exact and never reaches zero
//!   inside a span.
//! * **TDMA slot boundary** — the only situation in which an *idle* bus
//!   can grant later without any other event happening first: TDMA only
//!   grants at multiples of `d_mem`, so with a request pending the next
//!   boundary bounds the span. FP and RR are work-conserving — they
//!   grant in the same cycle a request appears, and requests only appear
//!   at event cycles — so "idle bus + pending request" cannot survive a
//!   stepped cycle under them (the code still guards it conservatively).
//! * **horizon** — the driver loop's own bound.
//!
//! Dispatch and resume work (first-load queuing, post-preemption UCB
//! reload queuing, preemption snapshots) happens in the first cycle a job
//! is picked, which is always the stepped cycle right after the event
//! that changed the pick; `next_event_cycle` detects a pending dispatch
//! or resume (`!started`, `!was_running`, or a live snapshot) and refuses
//! to skip. Round-robin arbiter state is a fixed point under idle
//! no-requester cycles (the cursor walks all `m` cores, a net no-op, and
//! `rr_remaining` is already 0 after any failed grant), so skipping those
//! cycles leaves the arbiter bit-identical to stepping them.
//!
//! # Why batched transaction cycles skip the scheduling scan
//!
//! `batch_transactions` only runs inside a window bounded by the earliest
//! release, the earliest compute-burst end, and the horizon, and it stops
//! before completing any job's *final* pending load. Within that window
//! the per-core picks cannot change (ready sets only change at releases
//! and job completions), no dispatch or resume work is due (the picked
//! jobs were verified steady), stalled jobs stay stalled (every served
//! job keeps at least one pending load) and computing jobs keep computing
//! (the window ends strictly before any burst does). So the reference's
//! `schedule_and_execute` reduces, cycle for cycle, to trace recording
//! plus `remaining_compute -= 1` — exactly what the batch applies in bulk
//! afterwards — while `release_jobs` is a no-op. Completions and grants
//! are *not* reimplemented: the batch calls the stepper's own phase
//! functions at the same cycles the reference would, so arbiter state
//! (including the RR cursor walk and the TDMA boundary rule), cache
//! ownership, statistics, and the bus trace evolve bit-identically.
//!
//! The equivalence is pinned by `tests/skip_equivalence.rs` across every
//! arbitration × release model and by the `sim_engine` bench, which
//! cross-checks full reports while timing the ≥5× speedup gate.

use super::Simulator;
use crate::config::BusArbitration;

impl Simulator<'_> {
    /// Advances from `self.now` to the next cycle that truly needs the
    /// stepper, executing everything in between in bulk: dead spans are
    /// jumped, serial bus phases are batched. A no-op when the very next
    /// cycle must be stepped.
    pub(super) fn skip_ahead(&mut self, horizon: u64) {
        while let Some(until) = self.next_event_cycle(horizon) {
            self.execute_span(until);
            if !self.batch_transactions(horizon) {
                return;
            }
        }
    }

    /// Bulk-executes the dead span `[self.now, until)`: extends each
    /// core's RLE trace and decrements the running unstalled jobs'
    /// remaining compute. `until` must not exceed the next event cycle.
    fn execute_span(&mut self, until: u64) {
        let span = until - self.now;
        if span == 0 {
            return;
        }
        for core in 0..self.platform.cores() {
            match self.pick(core) {
                None => self.recorder.record_span(core, self.now, span, None),
                Some(j) => {
                    let job = &self.jobs[j];
                    let (task, stalled) = (job.task, !job.pending_loads.is_empty());
                    self.recorder
                        .record_span(core, self.now, span, Some((task, stalled)));
                    if !stalled {
                        // `until` is bounded by this job's completion
                        // cycle, so the bulk decrement stays positive.
                        self.jobs[j].remaining_compute -= span;
                    }
                }
            }
        }
        self.skip_spans += 1;
        self.cycles_skipped += span;
        self.now = until;
    }

    /// Inline-executes a serial bus phase starting at `self.now`: while
    /// the only thing happening is a transaction completing and the bus
    /// being re-granted, runs those two stepper phases directly and skips
    /// the provably no-op rest of the cycle (see the module docs for the
    /// argument). Returns `true` if any cycle was executed this way —
    /// the caller then re-evaluates the event horizon — and `false` when
    /// the cycle at `self.now` needs a full step.
    fn batch_transactions(&mut self, horizon: u64) -> bool {
        // Only a completion due exactly now starts a batch; any other
        // event (release, burst end, TDMA boundary) needs the stepper.
        if self.bus.current.is_none() || self.bus.busy_until != self.now {
            return false;
        }
        // The window: strictly before the earliest release, the earliest
        // compute-burst end, and the horizon, the per-core schedule is
        // frozen. (Steadiness of every pick was just verified by
        // `next_event_cycle`, and a pure jump changes no state.)
        let mut window = horizon;
        for i in self.tasks.ids() {
            window = window.min(self.next_release[i.index()]);
        }
        for core in 0..self.platform.cores() {
            if let Some(j) = self.pick(core) {
                let job = &self.jobs[j];
                if job.pending_loads.is_empty() {
                    window = window.min(self.now + job.remaining_compute - 1);
                }
            }
        }

        let start = self.now;
        let d_mem = self.d_mem();
        loop {
            let completion = self.bus.busy_until;
            if completion >= window {
                // Cycles up to the window end are dead: the bus stays
                // busy past it and nothing else can move before it.
                self.now = window.max(start);
                break;
            }
            let served = self.bus.current.expect("batch invariant: bus busy");
            if self.jobs[served].pending_loads.len() < 2 {
                // A job's *final* load unstalls it the cycle it lands —
                // that cycle changes the schedule, so leave it (and
                // everything after) to the stepper.
                self.now = completion;
                break;
            }
            // Execute the completion cycle with the stepper's own phases.
            self.now = completion;
            self.complete_bus_transaction();
            self.grant_bus();
            if self.bus.current.is_none() {
                // Only TDMA idles with a request pending: grants happen
                // at slot boundaries, so try exactly those. FP/RR are
                // work-conserving and regrant in the completion cycle.
                let mut granted = false;
                if let BusArbitration::Tdma { .. } = self.config.bus {
                    let mut boundary = completion + d_mem;
                    while boundary < window {
                        self.now = boundary;
                        self.grant_bus();
                        if self.bus.current.is_some() {
                            granted = true;
                            break;
                        }
                        boundary += d_mem;
                    }
                }
                if !granted {
                    // No grant can land before the window end (TDMA), or
                    // the arbiter genuinely left the bus idle with no
                    // requester change possible (FP/RR: the remaining
                    // cycle is identical to what the reference computes,
                    // so handing back after this cycle is exact).
                    self.now = match self.config.bus {
                        BusArbitration::Tdma { .. } => window,
                        _ => completion + 1,
                    };
                    break;
                }
            }
        }

        let end = self.now;
        if end == start {
            return false;
        }
        // Record the batch as one span: within the window every core's
        // (task, stalled) state is constant, and computing jobs burn one
        // cycle each — the same bulk application as a dead span.
        self.now = start;
        self.execute_span(end);
        true
    }

    /// The earliest cycle `> self.now` at which the state can change, or
    /// `None` when the very next cycle must be stepped (an event is due
    /// now, or a conservative guard fired).
    fn next_event_cycle(&self, horizon: u64) -> Option<u64> {
        let now = self.now;
        if now >= horizon {
            return None;
        }
        let mut next = horizon;
        for i in self.tasks.ids() {
            next = next.min(self.next_release[i.index()]);
        }
        if self.bus.current.is_some() {
            next = next.min(self.bus.busy_until);
        }
        let mut idle_request = false;
        for core in 0..self.platform.cores() {
            let Some(j) = self.pick(core) else {
                continue; // an idle core stays idle until a release
            };
            let job = &self.jobs[j];
            if !job.started || !job.was_running || job.snapshot.is_some() {
                // Dispatch or resume work is due this cycle: initial
                // loads, UCB reloads, or preemption bookkeeping.
                return None;
            }
            if job.pending_loads.is_empty() {
                if job.remaining_compute == 0 {
                    return None; // completes the moment it is stepped
                }
                next = next.min(now + job.remaining_compute - 1);
            } else if self.bus.current.is_none() {
                idle_request = true;
            }
            // Stalled with the bus busy: the next change is the bus
            // completion, already accounted above.
        }
        if idle_request {
            match self.config.bus {
                BusArbitration::Tdma { .. } => {
                    // Idle bus, pending request: the next grant decision
                    // is at the next slot boundary.
                    next = next.min(now.next_multiple_of(self.d_mem()));
                }
                // Work-conserving arbiters grant the cycle a request
                // exists; this state should not survive a stepped cycle,
                // but stepping is always a safe fallback.
                BusArbitration::FixedPriority | BusArbitration::RoundRobin { .. } => return None,
            }
        }
        (next > now).then_some(next)
    }
}
