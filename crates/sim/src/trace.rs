//! Execution traces and their Gantt-style text rendering.
//!
//! When [`SimConfig::record_trace`](crate::SimConfig) is set, the
//! simulator RLE-compresses, per core and per cycle, which job ran and
//! whether it was stalled on the bus, plus every bus transaction. The
//! result renders as the kind of schedule diagram the paper draws in
//! Fig. 1.

use cpa_model::{TaskId, TaskSet};
use serde::Serialize;

/// A maximal run of cycles during which one core executed one task in one
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ExecSegment {
    /// Core index.
    pub core: usize,
    /// Task whose job occupied the core.
    pub task: TaskId,
    /// First cycle of the segment.
    pub start: u64,
    /// One past the last cycle.
    pub end: u64,
    /// `true` while the job was stalled waiting for the memory bus.
    pub stalled: bool,
}

/// One bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BusSegment {
    /// Task the transaction served.
    pub task: TaskId,
    /// Grant cycle.
    pub start: u64,
    /// Completion cycle (start + `d_mem`).
    pub end: u64,
}

/// A full recorded execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ExecutionTrace {
    /// Core occupancy segments, in increasing start order per core.
    pub exec: Vec<ExecSegment>,
    /// Bus transactions in grant order.
    pub bus: Vec<BusSegment>,
}

/// Incremental RLE recorder used by the engine.
#[derive(Debug, Default)]
pub(crate) struct TraceRecorder {
    enabled: bool,
    open: Vec<Option<ExecSegment>>,
    trace: ExecutionTrace,
}

impl TraceRecorder {
    pub(crate) fn new(cores: usize, enabled: bool) -> Self {
        TraceRecorder {
            enabled,
            open: vec![None; cores],
            trace: ExecutionTrace::default(),
        }
    }

    /// Records what `core` did during cycle `now`.
    pub(crate) fn record(&mut self, core: usize, now: u64, running: Option<(TaskId, bool)>) {
        self.record_span(core, now, 1, running);
    }

    /// Records `len` consecutive cycles `[start, start + len)` of one core
    /// state in one call — exactly equivalent to `len` [`Self::record`]
    /// calls, which is what makes the event-skipping simulator's traces
    /// byte-identical to the cycle-stepped ones.
    pub(crate) fn record_span(
        &mut self,
        core: usize,
        start: u64,
        len: u64,
        running: Option<(TaskId, bool)>,
    ) {
        if !self.enabled || len == 0 {
            return;
        }
        match (self.open[core], running) {
            (Some(seg), Some((task, stalled)))
                if seg.task == task && seg.stalled == stalled && seg.end == start =>
            {
                self.open[core] = Some(ExecSegment {
                    end: start + len,
                    ..seg
                });
            }
            (open, running) => {
                if let Some(seg) = open {
                    self.trace.exec.push(seg);
                }
                self.open[core] = running.map(|(task, stalled)| ExecSegment {
                    core,
                    task,
                    start,
                    end: start + len,
                    stalled,
                });
            }
        }
    }

    pub(crate) fn record_bus(&mut self, task: TaskId, start: u64, end: u64) {
        if self.enabled {
            self.trace.bus.push(BusSegment { task, start, end });
        }
    }

    pub(crate) fn finish(mut self) -> Option<ExecutionTrace> {
        if !self.enabled {
            return None;
        }
        for seg in self.open.into_iter().flatten() {
            self.trace.exec.push(seg);
        }
        self.trace.exec.sort_by_key(|s| (s.core, s.start));
        Some(self.trace)
    }
}

/// Renders a recorded execution as a Gantt-style text diagram, one row per
/// core plus a bus row, `width` character cells over `[0, until)` cycles.
///
/// Cell glyphs: the task's index digit (`1` = highest priority τ1) while
/// computing, the same letter dimmed to `·`-prefixed lowercase is not
/// used — stalls render as `▒` and idle as `.`; the bus row shows the
/// issuing task's digit.
///
/// ```
/// use cpa_sim::trace::{render_gantt, ExecutionTrace};
/// # use cpa_model::{CacheBlockSet, CoreId, Platform, Priority, Task, TaskSet, Time};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let platform = Platform::builder().cores(1).memory_latency(Time::from_cycles(2)).build()?;
/// # let task = Task::builder("t")
/// #     .processing_demand(Time::from_cycles(4)).memory_demand(1)
/// #     .period(Time::from_cycles(50)).deadline(Time::from_cycles(50))
/// #     .core(CoreId::new(0)).priority(Priority::new(1)).cache_sets(256).build()?;
/// # let tasks = TaskSet::new(vec![task])?;
/// let config = cpa_sim::SimConfig::new(cpa_sim::BusArbitration::FixedPriority)
///     .with_horizon(Time::from_cycles(20))
///     .with_trace();
/// let report = cpa_sim::Simulator::new(&platform, &tasks, config)?.run();
/// let diagram = render_gantt(report.trace().unwrap(), &tasks, 20, 20);
/// assert!(diagram.contains("core 1"));
/// assert!(diagram.contains("bus"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn render_gantt(trace: &ExecutionTrace, tasks: &TaskSet, until: u64, width: usize) -> String {
    let until = until.max(1);
    let width = width.max(1);
    let cores = trace.exec.iter().map(|s| s.core + 1).max().unwrap_or(1);
    let cell_of = |t: u64| ((t as u128 * width as u128) / until as u128) as usize;

    let glyph = |task: TaskId| -> char {
        let idx = task.index() + 1;
        if idx < 10 {
            char::from_digit(idx as u32, 10).expect("single digit")
        } else {
            (b'a' + ((idx - 10) % 26) as u8) as char
        }
    };

    let mut out = String::new();
    for core in 0..cores {
        let mut row = vec!['.'; width];
        for seg in trace
            .exec
            .iter()
            .filter(|s| s.core == core && s.start < until)
        {
            let from = cell_of(seg.start);
            let to = cell_of(seg.end.min(until).saturating_sub(1)).min(width - 1);
            for cell in row.iter_mut().take(to + 1).skip(from) {
                *cell = if seg.stalled { '▒' } else { glyph(seg.task) };
            }
        }
        out.push_str(&format!(
            "core {} |{}|\n",
            core + 1,
            row.iter().collect::<String>()
        ));
    }
    let mut bus_row = vec!['.'; width];
    for seg in trace.bus.iter().filter(|s| s.start < until) {
        let from = cell_of(seg.start);
        let to = cell_of(seg.end.min(until).saturating_sub(1)).min(width - 1);
        for cell in bus_row.iter_mut().take(to + 1).skip(from) {
            *cell = glyph(seg.task);
        }
    }
    out.push_str(&format!(
        "bus    |{}|\n",
        bus_row.iter().collect::<String>()
    ));
    let _ = tasks; // reserved for richer labels
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(core: usize, task: usize, start: u64, end: u64, stalled: bool) -> ExecSegment {
        ExecSegment {
            core,
            task: TaskId::new(task),
            start,
            end,
            stalled,
        }
    }

    #[test]
    fn recorder_rle_merges_contiguous_same_state() {
        let mut r = TraceRecorder::new(1, true);
        for t in 0..5 {
            r.record(0, t, Some((TaskId::new(0), false)));
        }
        r.record(0, 5, Some((TaskId::new(0), true))); // state change
        r.record(0, 6, None); // idle
        r.record(0, 7, Some((TaskId::new(1), false)));
        let trace = r.finish().unwrap();
        assert_eq!(
            trace.exec,
            vec![
                seg(0, 0, 0, 5, false),
                seg(0, 0, 5, 6, true),
                seg(0, 1, 7, 8, false),
            ]
        );
    }

    #[test]
    fn disabled_recorder_is_free() {
        let mut r = TraceRecorder::new(2, false);
        r.record(0, 0, Some((TaskId::new(0), false)));
        r.record_bus(TaskId::new(0), 0, 5);
        assert!(r.finish().is_none());
    }

    #[test]
    fn gantt_shape() {
        let trace = ExecutionTrace {
            exec: vec![seg(0, 0, 0, 10, false), seg(1, 1, 5, 10, true)],
            bus: vec![BusSegment {
                task: TaskId::new(1),
                start: 5,
                end: 10,
            }],
        };
        let tasks_unused = dummy_tasks();
        let g = render_gantt(&trace, &tasks_unused, 10, 10);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("core 1 |1111111111|"));
        assert!(lines[1].contains("▒▒▒▒▒"));
        assert!(lines[2].starts_with("bus    |.....22222|"));
    }

    fn dummy_tasks() -> TaskSet {
        use cpa_model::{CoreId, Priority, Task, Time};
        TaskSet::new(vec![Task::builder("a")
            .processing_demand(Time::from_cycles(1))
            .memory_demand(1)
            .period(Time::from_cycles(10))
            .deadline(Time::from_cycles(10))
            .core(CoreId::new(0))
            .priority(Priority::new(1))
            .cache_sets(4)
            .build()
            .unwrap()])
        .unwrap()
    }
}
