//! `cpa-pool` — the deterministic dynamic-scheduling worker pool shared
//! by the experiment sweeps (`cpa-experiments`) and the differential
//! campaigns (`cpa-validate`).
//!
//! # Why not static striping
//!
//! Both drivers used to hand workers a fixed stride (`item += threads`).
//! That load-imbalances badly on exactly this workload: unschedulable
//! task sets iterate the WCRT outer loop to its cap while schedulable
//! ones converge in a few sweeps, so one stripe can carry most of the
//! long tail. Here workers instead *claim* contiguous chunks from a
//! shared [`AtomicUsize`] cursor (`fetch_add`) — a fast worker that
//! drains its chunk simply claims the next one, so the tail spreads
//! itself across threads with one relaxed RMW per chunk.
//!
//! # Determinism argument
//!
//! Dynamic scheduling changes *which thread* computes an item, never
//! *what* is computed or *how results combine*:
//!
//! 1. Each item's work is a pure function of `(item index, shared
//!    state)` — per-item RNGs are seeded from the index, never from a
//!    shared stream.
//! 2. Workers record `(chunk_start, results)` pairs privately; after the
//!    join, [`map`] sorts the pairs by `chunk_start` and flattens them.
//!    The returned `Vec` is therefore in item-index order at any thread
//!    count and any chunk size — callers fold it sequentially, so even
//!    non-associative reductions (f64 sums) are byte-identical.
//! 3. Trace events are stamped with a collision-free [`scope_key`]
//!    derived from the item index, so the canonical `(scope, seq)` sort
//!    in `cpa-obs` restores one global order.
//!
//! # Thread-count policy
//!
//! [`resolve_threads`] is the single policy for both drivers: an
//! explicit request (`threads > 0`) is honored verbatim; `0` means
//! auto-detect via [`std::thread::available_parallelism`], capped at
//! [`MAX_AUTO_THREADS`]. The cap exists because sweep items are
//! memory-bound (shared cache-block set unions) and oversubscribing
//! large machines was observed to slow campaigns down; it previously
//! lived only in `campaign.rs` while `runner.rs` spawned unbounded —
//! the drivers now cannot diverge.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Auto-detected parallelism is capped here; see the crate docs for why.
/// An explicit `threads` request is never capped. The cap itself can be
/// overridden per-process via [`MAX_AUTO_THREADS_ENV`].
pub const MAX_AUTO_THREADS: usize = 8;

/// Environment variable overriding [`MAX_AUTO_THREADS`] for auto-detected
/// worker counts (`CPA_MAX_AUTO_THREADS=16`). Unset, empty, zero, or
/// unparsable values fall back to the built-in cap. Explicit `--threads`
/// requests are never capped, so this only matters on hosts with more
/// cores than the default cap where re-running with a flag is awkward
/// (CI images, batch schedulers).
pub const MAX_AUTO_THREADS_ENV: &str = "CPA_MAX_AUTO_THREADS";

/// Items per claimed chunk when the caller does not fix one.
///
/// Small enough that a long-tail chunk cannot hold more than a sliver of
/// the run hostage, large enough that the shared-cursor RMW and the
/// per-chunk `Vec` bookkeeping stay negligible against per-item work in
/// the hundreds of microseconds.
const DEFAULT_CHUNK: usize = 4;

/// Scheduling knobs for [`map`]. Construct with [`PoolOptions::new`] and
/// refine with the builder methods.
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    threads: usize,
    chunk: usize,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolOptions {
    /// Auto-detected thread count, default chunk size.
    #[must_use]
    pub fn new() -> Self {
        Self {
            threads: 0,
            chunk: 0,
        }
    }

    /// Requests an explicit worker count; `0` restores auto-detection.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Requests an explicit chunk size; `0` restores the default.
    ///
    /// Output is byte-identical at any chunk size (see the crate docs);
    /// the knob exists for benchmarks and the determinism proptests.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// The worker count this configuration resolves to.
    #[must_use]
    pub fn threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// The chunk size this configuration resolves to.
    #[must_use]
    pub fn chunk(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            DEFAULT_CHUNK
        }
    }
}

/// Resolves a requested worker count to an actual one: explicit requests
/// (`requested > 0`) are honored verbatim; `0` auto-detects and caps at
/// [`MAX_AUTO_THREADS`] (or the [`MAX_AUTO_THREADS_ENV`] override). A
/// clamped auto-detection emits one `pool.threads_clamped` event so a
/// trace of the run records that the host had more cores than were used.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let detected = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    clamp_auto(detected, auto_cap())
}

/// The effective auto-detect cap: [`MAX_AUTO_THREADS_ENV`] when it parses
/// to a positive integer, the built-in [`MAX_AUTO_THREADS`] otherwise.
fn auto_cap() -> usize {
    std::env::var(MAX_AUTO_THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&cap| cap > 0)
        .unwrap_or(MAX_AUTO_THREADS)
}

/// Applies the cap to a detected core count, recording a clamp as a
/// structured event (not a counter: it is one fact about the host, not a
/// meter that accumulates).
fn clamp_auto(detected: usize, cap: usize) -> usize {
    if detected > cap {
        cpa_obs::event!("pool.threads_clamped", detected = detected, cap = cap);
        cap
    } else {
        detected
    }
}

/// Width of the item field in a [`scope_key`]: items occupy the low 40
/// bits, epochs the high 24.
const SCOPE_ITEM_BITS: u32 = 40;

/// Packs `(epoch, item)` into one collision-free `u64` trace scope.
///
/// The old ad-hoc packing in `runner.rs` (`epoch * 2^32 + set`, with
/// wrapping arithmetic) silently aliased scopes once an item index
/// crossed `2^32`. This split gives 2^24 epochs x 2^40 items, panics
/// instead of aliasing, and is order-preserving in both fields — and
/// `scope_key(0, item) == item`, so single-epoch drivers (the campaign)
/// keep their historical scope values and trace bytes.
#[must_use]
pub fn scope_key(epoch: u64, item: u64) -> u64 {
    assert!(
        epoch < (1 << (64 - SCOPE_ITEM_BITS)),
        "scope epoch {epoch} exceeds 24 bits"
    );
    assert!(
        item < (1 << SCOPE_ITEM_BITS),
        "scope item {item} exceeds 40 bits"
    );
    (epoch << SCOPE_ITEM_BITS) | item
}

/// Runs `work` over `0..items` on a deterministic dynamic-scheduling
/// pool and returns the per-item results in item-index order.
///
/// * `epoch` — trace-scope epoch for this parallel region; take one per
///   region from [`cpa_obs::next_scope_epoch`]. Before each item the
///   pool calls `cpa_obs::set_scope(scope_key(epoch, item))`, so events
///   the item emits sort canonically regardless of worker assignment.
/// * `init` — per-worker state constructor (scratch buffers, generator
///   handles); called once per spawned worker.
/// * `work(state, item)` — must be a pure function of the item index and
///   whatever `init` captured; it must not depend on which worker runs
///   it or on claim order.
///
/// Worker states are constructed fresh per call; see [`map_with`] for
/// the variant that chains caller-owned states across calls.
///
/// Counters: `pool.chunks_claimed` counts every chunk claim;
/// `pool.chunks_stolen` counts claims beyond a worker's fair share
/// (`ceil(chunks / threads)`) — work it would never have seen under
/// static partitioning. `cpa-trace` reports the stolen/claimed ratio.
pub fn map<S, R, I, W>(items: usize, opts: PoolOptions, epoch: u64, init: I, work: W) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
{
    let mut states: Vec<S> = Vec::new();
    map_with(items, opts, epoch, init, &mut states, work)
}

/// [`map`] over caller-owned worker states: worker `i` always borrows
/// `states[i]`, so a driver that re-invokes with the same vector chains
/// per-worker state *across* parallel regions — warm-started analysis
/// scratches survive from one batch (or one sweep point) to the next
/// instead of being rebuilt per call. Missing states are constructed
/// with `init` on the calling thread before any worker starts; extra
/// states (from an earlier call with more threads) are left untouched.
///
/// Single-worker runs execute inline on the calling thread — no spawn,
/// no join — with the caller's obs ordering state saved and restored
/// around the region, so per-item scoping stays canonical and the
/// caller's own event ordering is unperturbed. Multi-worker runs use
/// scoped threads exactly like before; outputs are byte-identical
/// either way (the determinism argument in the crate docs does not
/// depend on where an item runs).
pub fn map_with<S, R, I, W>(
    items: usize,
    opts: PoolOptions,
    epoch: u64,
    init: I,
    states: &mut Vec<S>,
    work: W,
) -> Vec<R>
where
    S: Send,
    R: Send,
    I: Fn(usize) -> S + Sync,
    W: Fn(&mut S, usize) -> R + Sync,
{
    let threads = opts.threads();
    let chunk = opts.chunk();
    let chunks_claimed = cpa_obs::counter("pool.chunks_claimed");
    let chunks_stolen = cpa_obs::counter("pool.chunks_stolen");
    // Unlike the chunk meters above (scheduling artifacts, excluded from
    // deterministic exports), the item count depends only on the workload:
    // it is the pool's work-unit counter for per-stage attribution.
    cpa_obs::counter("pool.items").add(items as u64);
    while states.len() < threads {
        states.push(init(states.len()));
    }

    if threads == 1 {
        let caller = cpa_obs::scope_state();
        let state = &mut states[0];
        let mut out = Vec::with_capacity(items);
        chunks_claimed.add(items.div_ceil(chunk) as u64);
        for item in 0..items {
            cpa_obs::set_scope(scope_key(epoch, item as u64));
            out.push(work(state, item));
        }
        cpa_obs::restore_scope_state(caller);
        return out;
    }

    let total_chunks = items.div_ceil(chunk);
    let fair_share = total_chunks.div_ceil(threads.max(1));
    let cursor = AtomicUsize::new(0);

    // Each worker collects (chunk_start, results) pairs; the claim order
    // is racy but the post-join sort keyed on chunk_start restores the
    // one canonical item order.
    let mut per_worker: Vec<Vec<(usize, Vec<R>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = states
            .iter_mut()
            .take(threads)
            .map(|state| {
                let cursor = &cursor;
                let work = &work;
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    let mut claims = 0usize;
                    loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= items {
                            break;
                        }
                        claims += 1;
                        chunks_claimed.incr();
                        if claims > fair_share {
                            chunks_stolen.incr();
                        }
                        let end = (start + chunk).min(items);
                        let mut results = Vec::with_capacity(end - start);
                        for item in start..end {
                            cpa_obs::set_scope(scope_key(epoch, item as u64));
                            results.push(work(state, item));
                        }
                        claimed.push((start, results));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });

    let mut chunks: Vec<(usize, Vec<R>)> = per_worker.drain(..).flatten().collect();
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items);
    for (_, results) in chunks {
        out.extend(results);
    }
    debug_assert_eq!(out.len(), items);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn explicit_thread_requests_are_verbatim() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(MAX_AUTO_THREADS + 5), MAX_AUTO_THREADS + 5);
    }

    #[test]
    fn auto_detection_is_capped_and_env_overrides() {
        // One test, run serially within itself: the override variable is
        // process-global, so splitting these assertions across #[test]
        // functions would race under the parallel test runner.
        std::env::remove_var(MAX_AUTO_THREADS_ENV);
        let auto = resolve_threads(0);
        assert!(auto >= 1);
        assert!(auto <= MAX_AUTO_THREADS);
        assert_eq!(auto_cap(), MAX_AUTO_THREADS);
        for bogus in ["", "0", "-3", "lots"] {
            std::env::set_var(MAX_AUTO_THREADS_ENV, bogus);
            assert_eq!(auto_cap(), MAX_AUTO_THREADS, "bogus value {bogus:?}");
        }
        std::env::set_var(MAX_AUTO_THREADS_ENV, " 16 ");
        assert_eq!(auto_cap(), 16);
        std::env::remove_var(MAX_AUTO_THREADS_ENV);

        // The clamp policy itself, independent of the host's core count.
        assert_eq!(clamp_auto(4, 8), 4);
        assert_eq!(clamp_auto(8, 8), 8);
        assert_eq!(clamp_auto(64, 8), 8);
    }

    #[test]
    fn scope_keys_are_injective_and_item_preserving() {
        assert_eq!(scope_key(0, 7), 7, "epoch 0 preserves raw item scopes");
        assert_eq!(scope_key(1, 0), 1 << 40);
        // The old wrapping packing aliased (epoch, item) and
        // (epoch + 1, item - 2^32); the split packing cannot.
        assert_ne!(scope_key(1, 123), scope_key(2, 123));
        assert_ne!(scope_key(1, 1 << 33), scope_key(3, 0));
    }

    #[test]
    #[should_panic(expected = "exceeds 24 bits")]
    fn oversized_epochs_panic_instead_of_aliasing() {
        let _ = scope_key(1 << 24, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 40 bits")]
    fn oversized_items_panic_instead_of_aliasing() {
        let _ = scope_key(0, 1 << 40);
    }

    #[test]
    fn map_returns_items_in_index_order() {
        for threads in [1, 2, 5] {
            let opts = PoolOptions::new().with_threads(threads).with_chunk(3);
            let out = map(10, opts, 0, |_| (), |(), i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_zero_items() {
        let out: Vec<usize> = map(0, PoolOptions::new().with_threads(2), 0, |_| (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn workers_see_their_own_state() {
        // Per-worker accumulators must not leak across items in a way
        // that depends on scheduling: state resets are the caller's job,
        // but identity (which worker index seeded the state) is fixed at
        // init time and the per-item *results* stay index-pure here.
        let opts = PoolOptions::new().with_threads(4).with_chunk(1);
        let out = map(
            64,
            opts,
            0,
            |_worker| 0u64,
            |calls, i| {
                *calls += 1;
                i as u64 + 1
            },
        );
        assert_eq!(out, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn map_with_chains_state_across_calls() {
        let opts = PoolOptions::new().with_threads(1).with_chunk(2);
        let mut states: Vec<u64> = Vec::new();
        let a = map_with(
            4,
            opts,
            0,
            |_| 0u64,
            &mut states,
            |acc, i| {
                *acc += 1;
                i
            },
        );
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(states, vec![4], "state survives the call");
        let _ = map_with(3, opts, 1, |_| 0u64, &mut states, |acc, _| *acc += 1);
        assert_eq!(states, vec![7], "second call chained onto the first");
    }

    #[test]
    fn map_with_tops_up_missing_states_and_keeps_extras() {
        let mut states: Vec<usize> = vec![100];
        let _ = map_with(
            8,
            PoolOptions::new().with_threads(3).with_chunk(1),
            0,
            |worker| worker * 10,
            &mut states,
            |_, i| i,
        );
        // Worker 0 kept its pre-existing state; 1 and 2 were initialized.
        assert_eq!(states.len(), 3);
        assert_eq!(states[0], 100);
        assert_eq!(&states[1..], &[10, 20]);
        // A later single-threaded call must not drop the extra states.
        let _ = map_with(
            2,
            PoolOptions::new().with_threads(1),
            1,
            |_| 0,
            &mut states,
            |_, i| i,
        );
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn inline_execution_restores_the_callers_ordering_state() {
        // The single-worker path runs on the calling thread; afterwards
        // the caller's scope and sequence counter must look exactly as
        // they did before, or its later events would collide with its
        // earlier ones in the canonical (scope, seq) order.
        cpa_obs::set_scope(77);
        cpa_obs::event!("pool.test_before");
        let before = cpa_obs::scope_state();
        let _ = map(
            4,
            PoolOptions::new().with_threads(1),
            0,
            |_| (),
            |(), i| {
                cpa_obs::event!("pool.test_item");
                i
            },
        );
        assert_eq!(cpa_obs::scope_state(), before);
    }

    proptest! {
        /// The determinism claim, mechanically: any (threads, chunk)
        /// produces exactly the sequential map.
        #[test]
        fn pool_matches_sequential_map(
            items in 0usize..80,
            threads in 1usize..6,
            chunk in 1usize..12,
        ) {
            let opts = PoolOptions::new().with_threads(threads).with_chunk(chunk);
            let out = map(items, opts, 0, |_| (), |(), i| i.wrapping_mul(2654435761));
            let expected: Vec<usize> =
                (0..items).map(|i| i.wrapping_mul(2654435761)).collect();
            prop_assert_eq!(out, expected);
        }
    }
}
