//! `cpa-telemetry`: deterministic exporters and bench trajectory tooling over
//! [`cpa-obs`](cpa_obs).
//!
//! Three layers (see DESIGN.md §14):
//!
//! * **Exporters** — [`chrome_trace`] renders the structured event stream and
//!   span-tree self-profile as a Chrome Trace Event / Perfetto JSON document;
//!   [`openmetrics`] renders counters and histograms as an OpenMetrics text
//!   exposition. In [`ExportScope::Deterministic`] both are byte-identical
//!   for the same seed at any `--threads`/`--chunk` setting.
//! * **Stage attribution** — [`StageReport`] folds a counter-delta snapshot
//!   and the self-profile into per-pipeline-stage rows (wall time, calls,
//!   work items, throughput), the breakdown shown by `cpa-trace`.
//! * **Bench records** — [`BenchRecord`] is the versioned schema shared by
//!   every `BENCH_*.json` gate and `results/bench_history.jsonl`;
//!   [`diff_records`] implements the `cpa-trace bench diff` regression gate.
//!
//! ## Determinism contract
//!
//! Events are deterministic by construction (the `(scope, seq)` canonical
//! order), but two meter families are **scheduling artifacts**: counters that
//! measure the worker pool itself ([`SCHEDULING_METERS`] — chunk claims,
//! steals, scratch reuses vary with `--threads`/`--chunk`), and `pool.*`
//! spans (chunk counts vary with `--chunk`). Deterministic exports drop the
//! former and hoist the latter, and never carry wall-clock values; the span
//! timeline uses logical call-count ticks instead. [`ExportScope::Full`]
//! keeps everything (and is correspondingly not byte-stable).
//!
//! Like `cpa-obs`, this crate has no external dependencies.

mod chrome;
pub mod json;
mod openmetrics;
mod record;
mod stage;

pub use chrome::chrome_trace;
pub use json::{parse as parse_json, JsonValue};
pub use openmetrics::{openmetrics, sanitize_metric_name, validate as validate_openmetrics};
pub use record::{
    civil_from_epoch_secs, diff_records, git_rev, latest_per_bench, load_records,
    parse_min_speedup, parse_records, utc_date, BenchDiff, BenchRecord, DiffEntry, GateCheck,
    BENCH_SCHEMA_VERSION, DEFAULT_REGRESSION_THRESHOLD,
};
pub use stage::{
    stage_for_counter, stage_for_span, StageReport, StageRow, StageSpec, PIPELINE_STAGES,
};

/// How much of the observed state an export includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExportScope {
    /// Only seed-deterministic meters: byte-identical output across thread
    /// counts and chunk sizes for the same seed.
    #[default]
    Deterministic,
    /// Everything, including scheduling meters and wall-clock nanoseconds.
    Full,
}

/// Counters whose values depend on scheduling (`--threads`/`--chunk`), not on
/// the workload: excluded from deterministic exports.
///
/// The three `engine.warm_*`-family meters measure warm-start chain
/// history — what the *previous* solve on the same per-worker scratch
/// left behind. The optimizer and the chained sweep drivers
/// (`evaluate_point_chained`) chain freely per worker, so which item
/// warms which is a pool artifact; the `experiments.chain_*` meters
/// count those cross-point links and scale with the worker count.
/// (Analysis *results* and the hit/miss meters stay bitwise-equal warm
/// vs cold by construction; only these bookkeeping meters vary.)
pub const SCHEDULING_METERS: &[&str] = &[
    "analysis.context_recycles",
    "engine.scratch_reuses",
    "engine.warm_starts",
    "engine.segments_reused",
    "engine.inner_iters_saved",
    "experiments.chain_points_linked",
    "experiments.chain_workers",
    "pool.chunks_claimed",
    "pool.chunks_stolen",
];

/// Whether a counter/histogram name is a scheduling artifact.
#[must_use]
pub fn is_scheduling_meter(name: &str) -> bool {
    SCHEDULING_METERS.contains(&name)
}

/// Whether a span name is a scheduling artifact (the pool's chunk machinery —
/// its call counts depend on `--chunk`).
#[must_use]
pub fn is_scheduling_span(name: &str) -> bool {
    name.starts_with("pool.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_meter_classification() {
        assert!(is_scheduling_meter("pool.chunks_claimed"));
        assert!(is_scheduling_meter("engine.scratch_reuses"));
        assert!(is_scheduling_meter("engine.segments_reused"));
        assert!(is_scheduling_meter("engine.inner_iters_saved"));
        assert!(is_scheduling_meter("experiments.chain_points_linked"));
        assert!(is_scheduling_meter("experiments.chain_workers"));
        assert!(!is_scheduling_meter("experiments.sets_evaluated"));
        assert!(!is_scheduling_meter("engine.seed_hints_adopted"));
        assert!(!is_scheduling_meter("engine.curve_hit"));
        assert!(!is_scheduling_meter("pool.items"));
        assert!(!is_scheduling_meter("sim.runs"));
        assert!(is_scheduling_span("pool.chunk"));
        assert!(!is_scheduling_span("wcrt.analyze"));
    }
}
