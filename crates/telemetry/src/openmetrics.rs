//! OpenMetrics text exposition for `cpa-obs` counters and histograms.
//!
//! The exposition is a pure function of a [`MetricsSnapshot`]: snapshot
//! entries are already name-sorted, metric names are sanitized
//! deterministically, and histogram buckets expand to cumulative `le` series
//! with power-of-two upper bounds matching `cpa_obs::Histogram`'s bucketing
//! (bucket `b` covers `[2^(b-1), 2^b)`, so its inclusive upper bound is
//! `2^b - 1`). In [`ExportScope::Deterministic`] the scheduling meters
//! (chunk-claim and scratch-reuse counters, whose values depend on
//! `--threads`/`--chunk`) are omitted so the bytes depend only on the seed.

use crate::{is_scheduling_meter, ExportScope};
use cpa_obs::{Histogram, MetricsSnapshot};
use std::fmt::Write as _;

/// Renders the snapshot as an OpenMetrics text exposition, terminated by
/// `# EOF`.
#[must_use]
pub fn openmetrics(snapshot: &MetricsSnapshot, scope: ExportScope) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        if scope == ExportScope::Deterministic && is_scheduling_meter(name) {
            continue;
        }
        let metric = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric}_total {value}");
    }
    for (name, hist) in &snapshot.histograms {
        if scope == ExportScope::Deterministic && is_scheduling_meter(name) {
            continue;
        }
        write_histogram(&sanitize_metric_name(name), hist, &mut out);
    }
    out.push_str("# EOF\n");
    out
}

fn write_histogram(metric: &str, hist: &Histogram, out: &mut String) {
    let _ = writeln!(out, "# TYPE {metric} histogram");
    let mut cumulative = 0u64;
    for (b, &n) in hist.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        // Bucket 0 holds exactly the value 0; bucket b>0 covers
        // [2^(b-1), 2^b), inclusive upper bound 2^b - 1 (saturating at the
        // top bucket, which holds everything up to u64::MAX).
        let le: u64 = if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        };
        let _ = writeln!(out, "{metric}_bucket{{le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count);
    let _ = writeln!(out, "{metric}_sum {}", hist.sum);
    let _ = writeln!(out, "{metric}_count {}", hist.count);
}

/// Maps a dotted `cpa-obs` meter name onto the OpenMetrics name charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Structurally validates an OpenMetrics exposition: every line is a comment
/// or a `name{labels} value` sample, and the document ends with `# EOF`.
/// Returns the number of sample lines.
pub fn validate(exposition: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut saw_eof = false;
    for (lineno, line) in exposition.lines().enumerate() {
        if saw_eof {
            return Err(format!("line {}: content after # EOF", lineno + 1));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (name, kind) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
            if name.is_empty() || !matches!(kind, "counter" | "histogram" | "gauge") {
                return Err(format!("line {}: malformed TYPE line", lineno + 1));
            }
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {}: expected `name value`", lineno + 1));
        };
        let bare = name.split('{').next().unwrap_or("");
        if bare.is_empty()
            || !bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: invalid metric name `{bare}`", lineno + 1));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!(
                "line {}: invalid sample value `{value}`",
                lineno + 1
            ));
        }
        samples += 1;
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_as_total_samples() {
        let snapshot = MetricsSnapshot {
            counters: vec![("sim.runs".into(), 42)],
            histograms: vec![],
        };
        let text = openmetrics(&snapshot, ExportScope::Deterministic);
        assert_eq!(text, "# TYPE sim_runs counter\nsim_runs_total 42\n# EOF\n");
        assert_eq!(validate(&text), Ok(1));
    }

    #[test]
    fn deterministic_scope_drops_scheduling_meters() {
        let snapshot = MetricsSnapshot {
            counters: vec![("pool.chunks_claimed".into(), 9), ("sim.runs".into(), 1)],
            histograms: vec![],
        };
        let det = openmetrics(&snapshot, ExportScope::Deterministic);
        assert!(!det.contains("pool_chunks_claimed"));
        assert!(det.contains("sim_runs_total 1"));
        let full = openmetrics(&snapshot, ExportScope::Full);
        assert!(full.contains("pool_chunks_claimed_total 9"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_power_of_two_bounds() {
        let mut hist = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            hist.record(v);
        }
        let snapshot = MetricsSnapshot {
            counters: vec![],
            histograms: vec![("sim.queue".into(), hist)],
        };
        let text = openmetrics(&snapshot, ExportScope::Deterministic);
        assert!(text.contains("sim_queue_bucket{le=\"0\"} 1"));
        assert!(text.contains("sim_queue_bucket{le=\"1\"} 2"));
        assert!(text.contains("sim_queue_bucket{le=\"3\"} 4"));
        assert!(text.contains("sim_queue_bucket{le=\"1023\"} 5"));
        assert!(text.contains("sim_queue_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("sim_queue_sum 1006"));
        assert!(text.contains("sim_queue_count 5"));
        assert_eq!(validate(&text), Ok(7));
    }

    #[test]
    fn sanitizer_covers_dots_and_leading_digits() {
        assert_eq!(
            sanitize_metric_name("wcrt.outer_cap_hits"),
            "wcrt_outer_cap_hits"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
    }

    #[test]
    fn validator_rejects_truncated_expositions() {
        assert!(validate("# TYPE x counter\nx_total 1\n").is_err());
        assert!(validate("x_total notanumber\n# EOF\n").is_err());
    }
}
