//! Versioned bench records, the bench-trajectory history, and the regression
//! diff behind `cpa-trace bench diff`.
//!
//! Every bench gate (the five `BENCH_*.json` emitters) serializes one
//! [`BenchRecord`]: schema version, bench id, workload description, git
//! revision, date, harness config, informational metrics, **throughput**
//! entries (higher-is-better, the values the regression gate compares), gate
//! results, and an optional per-stage breakdown. Records append as JSON lines
//! to `results/bench_history.jsonl`, building a trajectory across PRs;
//! [`diff_records`] compares the latest record per bench and flags any
//! throughput entry that dropped by more than the threshold (default 15%).

use crate::json::{parse, JsonValue};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Current `BenchRecord` schema version.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default relative throughput drop that counts as a regression.
pub const DEFAULT_REGRESSION_THRESHOLD: f64 = 0.15;

/// One gate evaluated by a bench harness.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Gate label (e.g. `speedup_vs_reference`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Threshold the harness enforces.
    pub gate: f64,
    /// Whether the harness considered the gate passed.
    pub pass: bool,
}

/// One bench run, in the unified schema shared by all `BENCH_*.json` files
/// and `results/bench_history.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Stable bench id (`analysis_engine`, `sim_engine`, `sweep_e2e`,
    /// `optimize`, `obs_overhead`).
    pub bench: String,
    /// Human description of the measured workload.
    pub workload: String,
    /// `git rev-parse --short=12 HEAD`, or `unknown` outside a checkout.
    pub git_rev: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Harness configuration knobs, insertion-ordered.
    pub config: Vec<(String, JsonValue)>,
    /// Informational measurements (not diffed).
    pub metrics: Vec<(String, JsonValue)>,
    /// Higher-is-better throughput figures; `bench diff` compares these.
    pub throughput: Vec<(String, f64)>,
    /// Gate outcomes.
    pub gates: Vec<GateCheck>,
    /// Optional per-stage breakdown (see [`crate::StageReport::to_json_value`]).
    pub stages: Option<JsonValue>,
}

impl BenchRecord {
    /// Starts a record for `bench` measuring `workload`, stamped with the
    /// current git revision and date (overridable via `CPA_BENCH_GIT_REV` /
    /// `CPA_BENCH_DATE` for reproducible fixtures).
    #[must_use]
    pub fn new(bench: &str, workload: &str) -> Self {
        BenchRecord {
            schema: BENCH_SCHEMA_VERSION,
            bench: bench.to_string(),
            workload: workload.to_string(),
            git_rev: git_rev(),
            date: utc_date(),
            config: Vec::new(),
            metrics: Vec::new(),
            throughput: Vec::new(),
            gates: Vec::new(),
            stages: None,
        }
    }

    /// Adds a config knob.
    pub fn push_config(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.config.push((key.to_string(), value.into()));
    }

    /// Adds an informational metric.
    pub fn push_metric(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.metrics.push((key.to_string(), value.into()));
    }

    /// Adds a throughput figure (higher is better; diffed by `bench diff`).
    pub fn push_throughput(&mut self, key: &str, value: f64) {
        self.throughput.push((key.to_string(), value));
    }

    /// Adds a gate outcome.
    pub fn push_gate(&mut self, name: &str, value: f64, gate: f64, pass: bool) {
        self.gates.push(GateCheck {
            name: name.to_string(),
            value,
            gate,
            pass,
        });
    }

    /// Whether every recorded gate passed.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.gates.iter().all(|g| g.pass)
    }

    /// Encodes the record as a [`JsonValue`] with stable key order.
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let pairs = |items: &[(String, JsonValue)]| JsonValue::Object(items.to_vec());
        let mut fields = vec![
            ("schema".to_string(), JsonValue::U64(self.schema)),
            ("bench".to_string(), JsonValue::from(self.bench.clone())),
            (
                "workload".to_string(),
                JsonValue::from(self.workload.clone()),
            ),
            ("git_rev".to_string(), JsonValue::from(self.git_rev.clone())),
            ("date".to_string(), JsonValue::from(self.date.clone())),
            ("config".to_string(), pairs(&self.config)),
            ("metrics".to_string(), pairs(&self.metrics)),
            (
                "throughput".to_string(),
                JsonValue::Object(
                    self.throughput
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::F64(*v)))
                        .collect(),
                ),
            ),
            (
                "gates".to_string(),
                JsonValue::Array(
                    self.gates
                        .iter()
                        .map(|g| {
                            JsonValue::Object(vec![
                                ("name".to_string(), JsonValue::from(g.name.clone())),
                                ("value".to_string(), JsonValue::F64(g.value)),
                                ("gate".to_string(), JsonValue::F64(g.gate)),
                                ("pass".to_string(), JsonValue::Bool(g.pass)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(stages) = &self.stages {
            fields.push(("stages".to_string(), stages.clone()));
        }
        JsonValue::Object(fields)
    }

    /// Encodes the record as a single-line JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Decodes a record from a parsed JSON value.
    pub fn from_json_value(value: &JsonValue) -> Result<BenchRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bench record missing string field `{key}`"))
        };
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("bench record missing `schema`")?;
        if schema > BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench record schema {schema} is newer than supported {BENCH_SCHEMA_VERSION}"
            ));
        }
        let object_pairs = |key: &str| -> Vec<(String, JsonValue)> {
            match value.get(key) {
                Some(JsonValue::Object(fields)) => fields.clone(),
                _ => Vec::new(),
            }
        };
        let throughput = match value.get("throughput") {
            Some(JsonValue::Object(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("non-numeric throughput entry `{k}`"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        let gates = match value.get("gates") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|g| {
                    Ok(GateCheck {
                        name: g
                            .get("name")
                            .and_then(JsonValue::as_str)
                            .ok_or("gate missing `name`")?
                            .to_string(),
                        value: g
                            .get("value")
                            .and_then(JsonValue::as_f64)
                            .ok_or("gate missing `value`")?,
                        gate: g
                            .get("gate")
                            .and_then(JsonValue::as_f64)
                            .ok_or("gate missing `gate`")?,
                        pass: g
                            .get("pass")
                            .and_then(JsonValue::as_bool)
                            .ok_or("gate missing `pass`")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            _ => Vec::new(),
        };
        Ok(BenchRecord {
            schema,
            bench: str_field("bench")?,
            workload: str_field("workload")?,
            git_rev: str_field("git_rev")?,
            date: str_field("date")?,
            config: object_pairs("config"),
            metrics: object_pairs("metrics"),
            throughput,
            gates,
            stages: value.get("stages").cloned(),
        })
    }

    /// Parses a record from a JSON document.
    pub fn from_json(text: &str) -> Result<BenchRecord, String> {
        BenchRecord::from_json_value(&parse(text)?)
    }

    /// Writes the record (plus trailing newline) to `path`, replacing any
    /// existing file — the `BENCH_*.json` convention.
    pub fn write_json_file(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, format!("{}\n", self.to_json()))
    }

    /// Appends the record as one JSON line to the history file at `path`,
    /// creating parent directories as needed.
    pub fn append_history(&self, path: &str) -> std::io::Result<()> {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        writeln!(file, "{}", self.to_json())
    }
}

/// Loads bench records from `text`: either a JSON array of records or JSON
/// lines (one record per non-empty line) — `BENCH_*.json` files are a
/// one-line special case of the latter. Lines starting with `#` are
/// comments: baseline files use them to annotate re-baselining events
/// (when and why the reference numbers jumped).
pub fn parse_records(text: &str) -> Result<Vec<BenchRecord>, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('[') {
        let doc = parse(text)?;
        let items = doc.as_array().ok_or("expected a JSON array")?;
        return items.iter().map(BenchRecord::from_json_value).collect();
    }
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let stripped = line.trim();
        if stripped.is_empty() || stripped.starts_with('#') {
            continue;
        }
        let record =
            BenchRecord::from_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        records.push(record);
    }
    if records.is_empty() {
        return Err("no bench records found".to_string());
    }
    Ok(records)
}

/// Reads and parses bench records from a file.
pub fn load_records(path: &str) -> Result<Vec<BenchRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_records(&text).map_err(|e| format!("{path}: {e}"))
}

/// Keeps the latest record per bench id (last occurrence wins, matching
/// append-order history files).
#[must_use]
pub fn latest_per_bench(records: &[BenchRecord]) -> Vec<&BenchRecord> {
    let mut latest: Vec<&BenchRecord> = Vec::new();
    for record in records {
        if let Some(slot) = latest.iter_mut().find(|r| r.bench == record.bench) {
            *slot = record;
        } else {
            latest.push(record);
        }
    }
    latest
}

/// One compared throughput entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Bench id.
    pub bench: String,
    /// Throughput key.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (0.0 when the metric disappeared).
    pub current: f64,
    /// Whether the drop exceeds the threshold (or the metric disappeared).
    pub regressed: bool,
}

impl DiffEntry {
    /// Relative change, `current / baseline - 1`.
    #[must_use]
    pub fn change(&self) -> f64 {
        if self.baseline == 0.0 {
            0.0
        } else {
            self.current / self.baseline - 1.0
        }
    }
}

/// Result of diffing current records against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BenchDiff {
    /// Relative-drop threshold used.
    pub threshold: f64,
    /// Compared entries, baseline order.
    pub entries: Vec<DiffEntry>,
    /// Bench ids present in the baseline but absent from the current set.
    pub missing_benches: Vec<String>,
    /// `bench/gate` labels for gates failing in the current records.
    pub failed_gates: Vec<String>,
    /// Violated `--min-speedup STAGE=K` floors (see
    /// [`BenchDiff::enforce_minimums`]).
    pub failed_minimums: Vec<String>,
}

impl BenchDiff {
    /// Entries that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regressed).collect()
    }

    /// Whether the diff passes (no regressions, no missing benches, no
    /// failed gates, no violated minimums).
    #[must_use]
    pub fn pass(&self) -> bool {
        self.regressions().is_empty()
            && self.missing_benches.is_empty()
            && self.failed_gates.is_empty()
            && self.failed_minimums.is_empty()
    }

    /// Enforces declarative floors on the *current* records (the
    /// `bench diff --min-speedup STAGE=K` flag): for each `(name, bound)`
    /// pair the latest current record carrying a throughput entry or gate
    /// named `name` must report a value `≥ bound`. A missing name fails —
    /// a floor that silently stops being measured is not a passing floor.
    pub fn enforce_minimums(&mut self, current: &[BenchRecord], minimums: &[(String, f64)]) {
        let current = latest_per_bench(current);
        for (name, bound) in minimums {
            let mut found: Option<(&str, f64)> = None;
            for record in &current {
                if let Some((_, v)) = record.throughput.iter().find(|(k, _)| k == name) {
                    found = Some((&record.bench, *v));
                } else if let Some(g) = record.gates.iter().find(|g| &g.name == name) {
                    found = Some((&record.bench, g.value));
                }
            }
            match found {
                Some((_, value)) if value >= *bound => {}
                Some((bench, value)) => self.failed_minimums.push(format!(
                    "{bench}/{name}: {value:.3} below required minimum {bound}"
                )),
                None => self.failed_minimums.push(format!(
                    "{name}: not found in current records (required >= {bound})"
                )),
            }
        }
    }

    /// Renders the diff as an aligned text table plus a verdict line.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:<28} {:>12} {:>12} {:>8}  verdict",
            "bench", "metric", "baseline", "current", "change"
        );
        for entry in &self.entries {
            let _ = writeln!(
                out,
                "{:<16} {:<28} {:>12.3} {:>12.3} {:>+7.1}%  {}",
                entry.bench,
                entry.metric,
                entry.baseline,
                entry.current,
                entry.change() * 100.0,
                if entry.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for bench in &self.missing_benches {
            let _ = writeln!(out, "{bench:<16} (bench missing from current records)");
        }
        for gate in &self.failed_gates {
            let _ = writeln!(out, "gate failed in current records: {gate}");
        }
        for min in &self.failed_minimums {
            let _ = writeln!(out, "minimum violated: {min}");
        }
        let _ = writeln!(
            out,
            "verdict: {} ({} compared, {} regressed, threshold {:.0}%)",
            if self.pass() { "PASS" } else { "FAIL" },
            self.entries.len(),
            self.regressions().len(),
            self.threshold * 100.0
        );
        out
    }

    /// Encodes the diff as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                JsonValue::Object(vec![
                    ("bench".to_string(), JsonValue::from(e.bench.clone())),
                    ("metric".to_string(), JsonValue::from(e.metric.clone())),
                    ("baseline".to_string(), JsonValue::F64(e.baseline)),
                    ("current".to_string(), JsonValue::F64(e.current)),
                    ("change".to_string(), JsonValue::F64(e.change())),
                    ("regressed".to_string(), JsonValue::Bool(e.regressed)),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            ("threshold".to_string(), JsonValue::F64(self.threshold)),
            ("pass".to_string(), JsonValue::Bool(self.pass())),
            ("entries".to_string(), JsonValue::Array(entries)),
            (
                "missing_benches".to_string(),
                JsonValue::Array(
                    self.missing_benches
                        .iter()
                        .map(|b| JsonValue::from(b.clone()))
                        .collect(),
                ),
            ),
            (
                "failed_gates".to_string(),
                JsonValue::Array(
                    self.failed_gates
                        .iter()
                        .map(|g| JsonValue::from(g.clone()))
                        .collect(),
                ),
            ),
            (
                "failed_minimums".to_string(),
                JsonValue::Array(
                    self.failed_minimums
                        .iter()
                        .map(|m| JsonValue::from(m.clone()))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }
}

/// Diffs the latest current record per bench against the latest baseline
/// record per bench. A throughput entry regresses when
/// `current < baseline * (1 - threshold)`; a throughput key or whole bench
/// that disappeared also fails.
#[must_use]
pub fn diff_records(
    baseline: &[BenchRecord],
    current: &[BenchRecord],
    threshold: f64,
) -> BenchDiff {
    let baseline = latest_per_bench(baseline);
    let current = latest_per_bench(current);
    let mut diff = BenchDiff {
        threshold,
        ..BenchDiff::default()
    };
    for base in &baseline {
        let Some(cur) = current.iter().find(|r| r.bench == base.bench) else {
            diff.missing_benches.push(base.bench.clone());
            continue;
        };
        for (metric, base_value) in &base.throughput {
            let cur_value = cur
                .throughput
                .iter()
                .find(|(name, _)| name == metric)
                .map(|(_, v)| *v);
            let (cur_value, regressed) = match cur_value {
                Some(v) => (v, v < base_value * (1.0 - threshold)),
                None => (0.0, true),
            };
            diff.entries.push(DiffEntry {
                bench: base.bench.clone(),
                metric: metric.clone(),
                baseline: *base_value,
                current: cur_value,
                regressed,
            });
        }
    }
    for record in &current {
        for gate in &record.gates {
            if !gate.pass {
                diff.failed_gates
                    .push(format!("{}/{}", record.bench, gate.name));
            }
        }
    }
    diff
}

/// Parses one `--min-speedup` spec of the form `STAGE=K` (e.g.
/// `fig2_fp_panel_speedup=5.0`) into a `(name, bound)` pair for
/// [`BenchDiff::enforce_minimums`].
pub fn parse_min_speedup(spec: &str) -> Result<(String, f64), String> {
    let (name, bound) = spec
        .split_once('=')
        .ok_or_else(|| format!("--min-speedup expects STAGE=K, got `{spec}`"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("--min-speedup expects STAGE=K, got `{spec}`"));
    }
    let bound: f64 = bound
        .trim()
        .parse()
        .map_err(|_| format!("--min-speedup expects a numeric bound, got `{spec}`"))?;
    if !bound.is_finite() {
        return Err(format!("--min-speedup bound must be finite, got `{spec}`"));
    }
    Ok((name.to_string(), bound))
}

/// Resolves the git revision for bench stamping. Honors `CPA_BENCH_GIT_REV`
/// (used by fixtures), falls back to `git rev-parse`, then `"unknown"`.
#[must_use]
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("CPA_BENCH_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Current UTC date as `YYYY-MM-DD`. Honors `CPA_BENCH_DATE` for fixtures.
#[must_use]
pub fn utc_date() -> String {
    if let Ok(date) = std::env::var("CPA_BENCH_DATE") {
        return date;
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_from_epoch_secs(secs)
}

/// Converts Unix seconds to a `YYYY-MM-DD` UTC date (Howard Hinnant's
/// `civil_from_days`).
#[must_use]
pub fn civil_from_epoch_secs(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, throughput: &[(&str, f64)]) -> BenchRecord {
        let mut r = BenchRecord::new(bench, "test workload");
        r.git_rev = "abc123".to_string();
        r.date = "2026-01-01".to_string();
        for (k, v) in throughput {
            r.push_throughput(k, *v);
        }
        r
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = record("analysis_engine", &[("speedup", 2.5)]);
        r.push_config("sets", JsonValue::U64(25));
        r.push_metric("tasks", JsonValue::U64(400));
        r.push_gate("speedup", 2.5, 2.0, true);
        r.stages = Some(JsonValue::Object(vec![(
            "total_nanos".to_string(),
            JsonValue::U64(7),
        )]));
        let parsed = BenchRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        assert!(parsed.pass());
    }

    #[test]
    fn rejects_newer_schema_and_garbage() {
        assert!(BenchRecord::from_json("{\"schema\":999,\"bench\":\"x\"}").is_err());
        assert!(BenchRecord::from_json("not json").is_err());
        assert!(BenchRecord::from_json("{}").is_err());
    }

    #[test]
    fn history_keeps_last_record_per_bench() {
        let records = vec![
            record("a", &[("t", 1.0)]),
            record("b", &[("t", 5.0)]),
            record("a", &[("t", 2.0)]),
        ];
        let latest = latest_per_bench(&records);
        assert_eq!(latest.len(), 2);
        assert_eq!(latest[0].throughput[0].1, 2.0);
    }

    #[test]
    fn diff_flags_large_drops_only() {
        let baseline = vec![record("a", &[("t", 100.0), ("u", 10.0)])];
        let current = vec![record("a", &[("t", 90.0), ("u", 8.0)])];
        let diff = diff_records(&baseline, &current, 0.15);
        assert_eq!(diff.entries.len(), 2);
        assert!(!diff.entries[0].regressed, "-10% is within threshold");
        assert!(diff.entries[1].regressed, "-20% exceeds threshold");
        assert!(!diff.pass());
        assert!(diff.render_text().contains("REGRESSED"));
    }

    #[test]
    fn diff_fails_on_missing_bench_metric_or_gate() {
        let baseline = vec![record("a", &[("t", 1.0)]), record("b", &[("t", 1.0)])];
        let mut cur_a = record("a", &[]);
        cur_a.push_gate("dominance", 0.0, 1.0, false);
        let diff = diff_records(&baseline, &[cur_a], 0.15);
        assert_eq!(diff.missing_benches, vec!["b".to_string()]);
        assert_eq!(diff.entries.len(), 1);
        assert!(diff.entries[0].regressed, "missing metric regresses");
        assert_eq!(diff.failed_gates, vec!["a/dominance".to_string()]);
        assert!(!diff.pass());
    }

    #[test]
    fn identical_records_pass() {
        let baseline = vec![record("a", &[("t", 3.0)])];
        let diff = diff_records(&baseline, &baseline, 0.15);
        assert!(diff.pass());
        let doc = parse(&diff.to_json()).unwrap();
        assert_eq!(doc.get("pass").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parse_records_accepts_jsonl_and_arrays() {
        let a = record("a", &[("t", 1.0)]).to_json();
        let b = record("b", &[("t", 2.0)]).to_json();
        let jsonl = format!("{a}\n{b}\n");
        assert_eq!(parse_records(&jsonl).unwrap().len(), 2);
        let array = format!("[{a},{b}]");
        assert_eq!(parse_records(&array).unwrap().len(), 2);
        assert!(parse_records("").is_err());
        assert!(parse_records("{\"schema\":1}\n").is_err());
    }

    #[test]
    fn parse_records_skips_comment_lines() {
        let a = record("a", &[("t", 1.0)]).to_json();
        let text = format!(
            "# re-baselined 2026-08-09: warm-start engine landed\n{a}\n  # indented comment\n"
        );
        let records = parse_records(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].bench, "a");
        assert!(parse_records("# only comments\n").is_err());
    }

    #[test]
    fn min_speedup_specs_parse_and_enforce() {
        assert_eq!(
            parse_min_speedup("stage=2.5").unwrap(),
            ("stage".to_string(), 2.5)
        );
        assert!(parse_min_speedup("no-equals").is_err());
        assert!(parse_min_speedup("=3").is_err());
        assert!(parse_min_speedup("stage=abc").is_err());

        let mut rec = record("sweep_e2e", &[("sets_per_sec", 100.0)]);
        rec.push_gate("fig2_fp_panel_speedup", 3.0, 1.5, true);
        let current = vec![rec];
        // Throughput floor met, gate floor met.
        let mut diff = BenchDiff::default();
        diff.enforce_minimums(
            &current,
            &[
                ("sets_per_sec".to_string(), 90.0),
                ("fig2_fp_panel_speedup".to_string(), 2.0),
            ],
        );
        assert!(diff.pass(), "{:?}", diff.failed_minimums);
        // Gate floor violated.
        let mut diff = BenchDiff::default();
        diff.enforce_minimums(&current, &[("fig2_fp_panel_speedup".to_string(), 5.0)]);
        assert_eq!(diff.failed_minimums.len(), 1);
        assert!(!diff.pass());
        assert!(diff.render_text().contains("minimum violated"));
        assert!(diff.to_json().contains("failed_minimums"));
        // Missing metric fails.
        let mut diff = BenchDiff::default();
        diff.enforce_minimums(&current, &[("nonexistent".to_string(), 1.0)]);
        assert!(!diff.pass());
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_epoch_secs(0), "1970-01-01");
        assert_eq!(civil_from_epoch_secs(951_782_400), "2000-02-29");
        assert_eq!(civil_from_epoch_secs(1_754_697_600), "2025-08-09");
    }
}
