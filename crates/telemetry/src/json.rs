//! Minimal deterministic JSON document model.
//!
//! `cpa-telemetry`, like `cpa-obs`, takes no external dependencies, so it
//! carries its own tiny JSON value type: a writer whose byte output is a pure
//! function of the value (object keys keep insertion order — callers insert in
//! canonical order), and a recursive-descent parser for reading bench records
//! and validating exported artifacts in tests and `cpa-trace bench diff`.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
///
/// Numbers distinguish unsigned/signed integers from floats so that counter
/// values survive a round-trip bit-exactly; objects are association lists to
/// keep serialization order (and therefore output bytes) deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object (first match), or `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::U64(n) => Some(n as f64),
            JsonValue::I64(n) => Some(n as f64),
            JsonValue::F64(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::U64(n) => Some(n),
            JsonValue::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Appends the canonical encoding of this value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::F64(n) => write_f64(*n, out),
            JsonValue::Str(s) => write_json_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Encodes the value as a standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::U64(n)
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        JsonValue::F64(n)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

/// Writes `value` with RFC 8259 escaping (same contract as
/// `cpa_obs`'s internal string writer).
pub fn write_json_string(value: &str, out: &mut String) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes an `f64` deterministically: integral values gain a trailing `.0`
/// (so re-parsing keeps float-ness), non-finite values become `null`.
pub fn write_f64(value: f64, out: &mut String) {
    if !value.is_finite() {
        out.push_str("null");
    } else if value == value.trunc() && value.abs() < 1e15 {
        let _ = write!(out, "{:.1}", value);
    } else {
        let _ = write!(out, "{}", value);
    }
}

/// Parses a complete JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!(
            "trailing content at byte {} of JSON document",
            parser.pos
        ));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of JSON document".to_string()),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our own
                            // artifacts; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is
                    // always a valid boundary walk).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(JsonValue::I64(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = "{\"a\":[1,-2,3.5,true,null],\"b\":{\"c\":\"x\\ny\"}}";
        let value = parse(doc).unwrap();
        assert_eq!(value.to_json(), doc);
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\ny")
        );
    }

    #[test]
    fn integers_keep_exact_width() {
        let value = parse("18446744073709551615").unwrap();
        assert_eq!(value, JsonValue::U64(u64::MAX));
        assert_eq!(value.to_json(), "18446744073709551615");
        assert_eq!(parse("-7").unwrap(), JsonValue::I64(-7));
    }

    #[test]
    fn floats_write_with_trailing_point_zero() {
        assert_eq!(JsonValue::F64(2.0).to_json(), "2.0");
        assert_eq!(parse("2.0").unwrap(), JsonValue::F64(2.0));
        assert_eq!(JsonValue::F64(2.5).to_json(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let mut out = String::new();
        write_json_string("a\u{1}b", &mut out);
        assert_eq!(out, "\"a\\u0001b\"");
        assert_eq!(parse(&out).unwrap().as_str(), Some("a\u{1}b"));
    }
}
