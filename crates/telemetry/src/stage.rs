//! Per-stage pipeline attribution.
//!
//! A [`StageReport`] folds the span-tree self-profile and a counter-delta
//! snapshot into the pipeline phases of a run — workload generation,
//! cache/CFG extraction, the analysis fixed point, simulation, oracle/shrink
//! validation, optimizer moves, and the optimizer result cache — answering
//! "where did the time go and how fast was each stage" in one table.
//!
//! Attribution is prefix-driven: every profile node contributes its **self**
//! wall time to the first [`StageSpec`] whose span prefix matches the node
//! name, and every positive counter delta lands in the first stage whose
//! counter prefix matches. Unmatched time/counters fall into the `other` row,
//! so the table always sums to the observed total.

use crate::json::JsonValue;
use cpa_obs::{format_nanos, MetricsSnapshot, ProfileNode};
use std::fmt::Write as _;

/// One pipeline stage: its display name and the meter-name prefixes that
/// attribute spans and counters to it.
#[derive(Debug, Clone, Copy)]
pub struct StageSpec {
    /// Stage label used in tables and JSON.
    pub name: &'static str,
    /// Span-name prefixes whose self time belongs to this stage.
    pub span_prefixes: &'static [&'static str],
    /// Counter-name prefixes whose deltas belong to this stage.
    pub counter_prefixes: &'static [&'static str],
    /// The counter whose delta is this stage's unit of work (drives the
    /// throughput column), if it has a natural one.
    pub work_counter: Option<&'static str>,
}

/// The pipeline stages, in attribution order (first matching prefix wins, so
/// the more specific `optimize.cache_` row precedes the general `optimize.`
/// row).
pub const PIPELINE_STAGES: &[StageSpec] = &[
    StageSpec {
        name: "workload-gen",
        span_prefixes: &["workload."],
        counter_prefixes: &["workload."],
        work_counter: Some("workload.sets_generated"),
    },
    StageSpec {
        name: "extraction",
        span_prefixes: &["cfg.", "cache."],
        counter_prefixes: &["cfg.", "cache."],
        work_counter: None,
    },
    StageSpec {
        name: "analysis",
        span_prefixes: &["wcrt."],
        counter_prefixes: &["wcrt.", "engine.", "analysis."],
        work_counter: Some("engine.tasks_solved"),
    },
    StageSpec {
        name: "simulation",
        span_prefixes: &["sim."],
        counter_prefixes: &["sim."],
        work_counter: Some("sim.runs"),
    },
    StageSpec {
        name: "oracle-shrink",
        span_prefixes: &["oracle.", "shrink.", "campaign."],
        counter_prefixes: &["oracle.", "shrink.", "campaign."],
        work_counter: Some("campaign.checked_sets"),
    },
    StageSpec {
        name: "result-cache",
        span_prefixes: &[],
        counter_prefixes: &["optimize.cache_"],
        work_counter: Some("optimize.cache_hits"),
    },
    StageSpec {
        name: "optimizer",
        span_prefixes: &["optimize."],
        counter_prefixes: &["optimize."],
        work_counter: Some("optimize.candidates"),
    },
    StageSpec {
        name: "sweep-driver",
        span_prefixes: &["experiments."],
        counter_prefixes: &["experiments."],
        work_counter: Some("experiments.sets_evaluated"),
    },
    StageSpec {
        name: "pool",
        span_prefixes: &["pool."],
        counter_prefixes: &["pool."],
        work_counter: Some("pool.items"),
    },
];

/// Aggregated activity of one pipeline stage.
#[derive(Debug, Clone, Default)]
pub struct StageRow {
    /// Stage label (one of [`PIPELINE_STAGES`], or `"other"`).
    pub stage: &'static str,
    /// Self wall time attributed to the stage, in nanoseconds.
    pub wall_nanos: u64,
    /// Completed span executions attributed to the stage.
    pub calls: u64,
    /// Work-unit count (delta of the stage's work counter).
    pub work_items: u64,
    /// Positive counter deltas attributed to the stage, name-sorted.
    pub counters: Vec<(String, u64)>,
}

impl StageRow {
    /// Work items per second of attributed wall time, when both are known.
    #[must_use]
    pub fn throughput_per_s(&self) -> Option<f64> {
        if self.work_items > 0 && self.wall_nanos > 0 {
            Some(self.work_items as f64 * 1e9 / self.wall_nanos as f64)
        } else {
            None
        }
    }

    fn is_active(&self) -> bool {
        self.wall_nanos > 0 || self.calls > 0 || self.work_items > 0 || !self.counters.is_empty()
    }
}

/// The per-stage breakdown of a run: one row per active stage plus `other`.
#[derive(Debug, Clone, Default)]
pub struct StageReport {
    /// Active stages, in pipeline order; `other` last when non-empty.
    pub rows: Vec<StageRow>,
    /// Total profiled wall time (sum of all span self times).
    pub total_nanos: u64,
}

impl StageReport {
    /// Builds a report from a counter-delta snapshot and a span-tree profile.
    #[must_use]
    pub fn from_parts(delta: &MetricsSnapshot, profile: &ProfileNode) -> StageReport {
        let mut rows: Vec<StageRow> = PIPELINE_STAGES
            .iter()
            .map(|spec| StageRow {
                stage: spec.name,
                ..StageRow::default()
            })
            .collect();
        let mut other = StageRow {
            stage: "other",
            ..StageRow::default()
        };
        let mut total_nanos = 0u64;
        attribute_spans(profile, true, &mut rows, &mut other, &mut total_nanos);
        for (name, value) in &delta.counters {
            if *value == 0 {
                continue;
            }
            let row = match stage_for_counter(name) {
                Some(i) => &mut rows[i],
                None => &mut other,
            };
            row.counters.push((name.clone(), *value));
        }
        for (i, spec) in PIPELINE_STAGES.iter().enumerate() {
            if let Some(work) = spec.work_counter {
                rows[i].work_items = delta
                    .counters
                    .iter()
                    .find(|(name, _)| name == work)
                    .map_or(0, |(_, v)| *v);
            }
        }
        let mut rows: Vec<StageRow> = rows.into_iter().filter(StageRow::is_active).collect();
        if other.is_active() {
            rows.push(other);
        }
        StageReport { rows, total_nanos }
    }

    /// Captures a report from the live `cpa-obs` registry: counter deltas
    /// relative to `baseline`, profile as currently accumulated.
    #[must_use]
    pub fn capture(baseline: &MetricsSnapshot) -> StageReport {
        let delta = cpa_obs::metrics_snapshot().delta_since(baseline);
        let profile = cpa_obs::profile_snapshot();
        StageReport::from_parts(&delta, &profile)
    }

    /// Renders the breakdown as an aligned text table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let total = self.total_nanos.max(1);
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>6} {:>10} {:>12} {:>12}",
            "stage", "wall", "%", "calls", "items", "items/s"
        );
        for row in &self.rows {
            let throughput = row
                .throughput_per_s()
                .map_or_else(|| "-".to_string(), format_rate);
            let _ = writeln!(
                out,
                "{:<14} {:>10} {:>5.1}% {:>10} {:>12} {:>12}",
                row.stage,
                format_nanos(row.wall_nanos),
                100.0 * row.wall_nanos as f64 / total as f64,
                row.calls,
                row.work_items,
                throughput
            );
        }
        let _ = writeln!(
            out,
            "total wall (self times): {}",
            format_nanos(self.total_nanos)
        );
        out
    }

    /// Encodes the report as a JSON value (stable key order).
    #[must_use]
    pub fn to_json_value(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                let mut fields = vec![
                    ("stage".to_string(), JsonValue::from(row.stage)),
                    ("wall_nanos".to_string(), JsonValue::U64(row.wall_nanos)),
                    ("calls".to_string(), JsonValue::U64(row.calls)),
                    ("items".to_string(), JsonValue::U64(row.work_items)),
                ];
                if let Some(rate) = row.throughput_per_s() {
                    fields.push(("items_per_s".to_string(), JsonValue::F64(rate)));
                }
                fields.push((
                    "counters".to_string(),
                    JsonValue::Object(
                        row.counters
                            .iter()
                            .map(|(name, value)| (name.clone(), JsonValue::U64(*value)))
                            .collect(),
                    ),
                ));
                JsonValue::Object(fields)
            })
            .collect();
        JsonValue::Object(vec![
            ("total_nanos".to_string(), JsonValue::U64(self.total_nanos)),
            ("stages".to_string(), JsonValue::Array(rows)),
        ])
    }

    /// Encodes the report as a standalone JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }
}

fn attribute_spans(
    node: &ProfileNode,
    is_root: bool,
    rows: &mut [StageRow],
    other: &mut StageRow,
    total_nanos: &mut u64,
) {
    if !is_root {
        let self_nanos = node.self_nanos();
        *total_nanos += self_nanos;
        let row = match stage_for_span(&node.name) {
            Some(i) => &mut rows[i],
            None => other,
        };
        row.wall_nanos += self_nanos;
        row.calls += node.calls;
    }
    for child in &node.children {
        attribute_spans(child, false, rows, other, total_nanos);
    }
}

/// Index of the first stage whose span prefixes match `name`.
#[must_use]
pub fn stage_for_span(name: &str) -> Option<usize> {
    PIPELINE_STAGES.iter().position(|spec| {
        spec.span_prefixes
            .iter()
            .any(|prefix| name.starts_with(prefix))
    })
}

/// Index of the first stage whose counter prefixes match `name`.
#[must_use]
pub fn stage_for_counter(name: &str) -> Option<usize> {
    PIPELINE_STAGES.iter().position(|spec| {
        spec.counter_prefixes
            .iter()
            .any(|prefix| name.starts_with(prefix))
    })
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k/s", rate / 1e3)
    } else {
        format!("{rate:.1}/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_fixture() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("engine.tasks_solved".into(), 200),
                ("optimize.cache_hits".into(), 7),
                ("optimize.candidates".into(), 50),
                ("sim.runs".into(), 12),
                ("unmapped.counter".into(), 3),
                ("wcrt.outer_cap_hits".into(), 0),
            ],
            histograms: vec![],
        }
    }

    fn profile_fixture() -> ProfileNode {
        let mut root = ProfileNode::new("");
        root.record(&["pool.chunk", "wcrt.analyze"], 1_000);
        root.record(&["pool.chunk", "wcrt.analyze", "wcrt.bracket"], 400);
        root.record(&["sim.run"], 500);
        root.record(&["mystery.step"], 250);
        root
    }

    #[test]
    fn cache_counters_outrank_the_general_optimizer_row() {
        assert_eq!(
            stage_for_counter("optimize.cache_hits").map(|i| PIPELINE_STAGES[i].name),
            Some("result-cache")
        );
        assert_eq!(
            stage_for_counter("optimize.candidates").map(|i| PIPELINE_STAGES[i].name),
            Some("optimizer")
        );
    }

    #[test]
    fn report_attributes_spans_counters_and_work() {
        let report = StageReport::from_parts(&delta_fixture(), &profile_fixture());
        let analysis = report.rows.iter().find(|r| r.stage == "analysis").unwrap();
        // wcrt.analyze self = 1000 - 400 (child) = 600, plus wcrt.bracket 400.
        assert_eq!(analysis.wall_nanos, 1_000);
        assert_eq!(analysis.calls, 2);
        assert_eq!(analysis.work_items, 200);
        assert!(analysis.throughput_per_s().unwrap() > 0.0);

        let cache = report
            .rows
            .iter()
            .find(|r| r.stage == "result-cache")
            .unwrap();
        assert_eq!(cache.work_items, 7);
        assert_eq!(cache.counters, vec![("optimize.cache_hits".to_string(), 7)]);

        // pool.chunk self time (0 here) and the unmatched span/counter land in
        // `other`; zero-delta counters are dropped.
        let other = report.rows.iter().find(|r| r.stage == "other").unwrap();
        assert_eq!(other.wall_nanos, 250);
        assert_eq!(other.counters, vec![("unmapped.counter".to_string(), 3)]);
        assert!(!report
            .rows
            .iter()
            .any(|r| r.counters.iter().any(|(n, _)| n == "wcrt.outer_cap_hits")));

        assert_eq!(report.total_nanos, 1_750);
    }

    #[test]
    fn empty_inputs_produce_an_empty_report() {
        let report = StageReport::from_parts(&MetricsSnapshot::default(), &ProfileNode::new(""));
        assert!(report.rows.is_empty());
        assert_eq!(report.total_nanos, 0);
        assert_eq!(report.to_json(), "{\"total_nanos\":0,\"stages\":[]}");
    }

    #[test]
    fn json_encoding_is_stable_and_parses() {
        let report = StageReport::from_parts(&delta_fixture(), &profile_fixture());
        let doc = crate::json::parse(&report.to_json()).unwrap();
        assert_eq!(doc.get("total_nanos").unwrap().as_u64(), Some(1_750));
        assert!(doc.get("stages").unwrap().as_array().unwrap().len() >= 4);
    }
}
