//! Chrome Trace Event / Perfetto JSON exporter.
//!
//! The export carries two processes:
//!
//! * **pid 0 — events.** Every structured [`Event`] becomes an instant event
//!   (`"ph":"i"`) whose track (`tid`) is the event's logical `scope` and whose
//!   timestamp is its `seq`. Both are deterministic by construction, so this
//!   half of the trace is byte-identical across thread counts.
//! * **pid 1 — self-profile.** The span tree becomes nested complete events
//!   (`"ph":"X"`) on a **logical-tick** timeline: a node's duration is its
//!   call count plus the durations of its children, laid out depth-first.
//!   Wall-clock nanoseconds are scheduling noise, so they never drive the
//!   timeline; in [`ExportScope::Full`] they are attached as an `args` field
//!   instead (and the export is no longer byte-stable across runs).
//!
//! In [`ExportScope::Deterministic`] (the default for `--export chrome`),
//! scheduling-artifact span nodes (the `pool.*` chunk machinery, whose call
//! counts depend on `--chunk`/`--threads`) are hoisted out of the tree: their
//! children are merged into the parent, summing same-name siblings, so the
//! remaining tree shape depends only on the workload.

use crate::{is_scheduling_span, ExportScope};
use cpa_obs::{Event, ProfileNode};
use std::fmt::Write as _;

/// Renders events plus the span-tree self-profile as a Chrome Trace Event
/// JSON document (one trace event per line inside `traceEvents`).
#[must_use]
pub fn chrome_trace(events: &[Event], profile: &ProfileNode, scope: ExportScope) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"events (tid = scope, ts = seq)\"}},\n",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"self-profile (logical ticks)\"}}",
    );
    for event in events {
        out.push_str(",\n");
        write_instant(event, &mut out);
    }
    let normalized = normalize_profile(profile, scope);
    let mut cursor = 0u64;
    for child in &normalized.children {
        write_span(child, &mut cursor, scope, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

fn write_instant(event: &Event, out: &mut String) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}",
        event.name, event.scope, event.seq
    );
    if !event.fields.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":");
            value.write_json(out);
        }
        out.push('}');
    }
    out.push('}');
}

/// Logical duration of a node: one tick per completed call plus room for the
/// children. Guarantees every child interval nests strictly inside its parent.
fn weight(node: &ProfileNode) -> u64 {
    node.calls.max(1) + node.children.iter().map(weight).sum::<u64>()
}

fn write_span(node: &ProfileNode, cursor: &mut u64, scope: ExportScope, out: &mut String) {
    let dur = weight(node);
    let start = *cursor;
    let _ = write!(
        out,
        ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":{start},\"dur\":{dur},\
         \"args\":{{\"calls\":{}",
        node.name, node.calls
    );
    if scope == ExportScope::Full {
        let _ = write!(out, ",\"nanos\":{}", node.nanos);
    }
    out.push_str("}}");
    let mut child_cursor = start;
    for child in &node.children {
        write_span(child, &mut child_cursor, scope, out);
    }
    *cursor = start + dur;
}

/// Rebuilds the span tree for export: merges same-name siblings, sorts every
/// level by name (the registry sorts by wall time, which is nondeterministic),
/// and in deterministic scope hoists scheduling-artifact nodes.
fn normalize_profile(node: &ProfileNode, scope: ExportScope) -> ProfileNode {
    let mut out = ProfileNode::new(&node.name);
    out.calls = node.calls;
    out.nanos = node.nanos;
    for child in &node.children {
        let child = normalize_profile(child, scope);
        if scope == ExportScope::Deterministic && is_scheduling_span(&child.name) {
            for grandchild in child.children {
                merge_child(&mut out, grandchild);
            }
        } else {
            merge_child(&mut out, child);
        }
    }
    out.children.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

fn merge_child(parent: &mut ProfileNode, child: ProfileNode) {
    if let Some(existing) = parent.children.iter_mut().find(|c| c.name == child.name) {
        existing.calls += child.calls;
        existing.nanos = existing.nanos.saturating_add(child.nanos);
        for grandchild in child.children {
            merge_child(existing, grandchild);
        }
    } else {
        parent.children.push(child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_obs::FieldValue;

    fn profile_fixture() -> ProfileNode {
        let mut root = ProfileNode::new("");
        // Two pool.chunk executions whose split differs with chunk size: the
        // same wcrt.analyze work lands under both.
        root.record(&["pool.chunk", "wcrt.analyze"], 100);
        root.record(&["pool.chunk", "wcrt.analyze"], 50);
        root.record(&["pool.chunk"], 10);
        root.record(&["pool.chunk"], 10);
        root.record(&["sim.run"], 30);
        root
    }

    #[test]
    fn deterministic_export_hoists_pool_spans() {
        let trace = chrome_trace(&[], &profile_fixture(), ExportScope::Deterministic);
        assert!(!trace.contains("pool.chunk"), "pool spans must be hoisted");
        assert!(trace.contains("\"name\":\"wcrt.analyze\""));
        assert!(trace.contains("\"name\":\"sim.run\""));
        assert!(
            !trace.contains("nanos"),
            "deterministic export carries no wall time"
        );
    }

    #[test]
    fn full_export_keeps_pool_spans_and_nanos() {
        let trace = chrome_trace(&[], &profile_fixture(), ExportScope::Full);
        assert!(trace.contains("pool.chunk"));
        assert!(trace.contains("\"nanos\":150"));
    }

    #[test]
    fn events_map_to_instants_on_their_scope_track() {
        let events = vec![Event {
            scope: 3,
            seq: 7,
            name: "wcrt.outer",
            fields: vec![("iter", FieldValue::U64(2))],
        }];
        let root = ProfileNode::new("");
        let trace = chrome_trace(&events, &root, ExportScope::Deterministic);
        assert!(trace.contains(
            "{\"name\":\"wcrt.outer\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":3,\"ts\":7,\
             \"args\":{\"iter\":2}}"
        ));
        crate::json::parse(&trace).expect("chrome trace must be valid JSON");
    }

    #[test]
    fn spans_nest_and_siblings_merge() {
        let trace = chrome_trace(&[], &profile_fixture(), ExportScope::Deterministic);
        let doc = crate::json::parse(&trace).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        // pool.chunk hoisted: wcrt.analyze (merged 2 calls) and sim.run remain.
        assert_eq!(spans.len(), 2);
        let wcrt = spans
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("wcrt.analyze"))
            .unwrap();
        assert_eq!(
            wcrt.get("args").unwrap().get("calls").unwrap().as_u64(),
            Some(2)
        );
    }
}
