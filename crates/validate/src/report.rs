//! Structured campaign reports.
//!
//! A campaign produces a [`ValidationReport`]: campaign options, per-oracle
//! check/violation counters, the recorded violations (with repro-file
//! pointers once the shrinker has run), and wall-clock statistics. The
//! report serializes to JSON for CI consumption; [`ValidationReport::summary`]
//! renders the one-line human version.

use serde::Serialize;

use crate::oracle::OracleKind;

/// Check/violation counters for one oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OracleStat {
    /// Individual comparisons performed.
    pub checks: u64,
    /// Comparisons that failed.
    pub violations: u64,
}

impl OracleStat {
    fn merge(&mut self, other: &OracleStat) {
        self.checks += other.checks;
        self.violations += other.violations;
    }
}

/// Counters for all four oracles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct OracleStats {
    /// Observed behaviour within analytical bounds.
    pub soundness: OracleStat,
    /// Aware bounds never exceed oblivious bounds.
    pub dominance: OracleStat,
    /// Same seed reproduces identical results.
    pub determinism: OracleStat,
    /// Simulator bookkeeping invariants.
    pub accounting: OracleStat,
}

impl OracleStats {
    /// The counter bucket for `kind`.
    pub fn stat_mut(&mut self, kind: OracleKind) -> &mut OracleStat {
        match kind {
            OracleKind::Soundness => &mut self.soundness,
            OracleKind::Dominance => &mut self.dominance,
            OracleKind::Determinism => &mut self.determinism,
            OracleKind::Accounting => &mut self.accounting,
        }
    }

    /// Adds another stats block into this one (campaign merge step).
    pub fn merge(&mut self, other: &OracleStats) {
        self.soundness.merge(&other.soundness);
        self.dominance.merge(&other.dominance);
        self.determinism.merge(&other.determinism);
        self.accounting.merge(&other.accounting);
    }

    /// Total comparisons across all oracles.
    #[must_use]
    pub fn total_checks(&self) -> u64 {
        self.soundness.checks
            + self.dominance.checks
            + self.determinism.checks
            + self.accounting.checks
    }

    /// Total failed comparisons across all oracles.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.soundness.violations
            + self.dominance.violations
            + self.determinism.violations
            + self.accounting.violations
    }
}

/// One violation as it appears in the campaign report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ViolationRecord {
    /// Campaign-wide index of the offending task set.
    pub set_index: u64,
    /// Derived seed that regenerates the task set.
    pub set_seed: u64,
    /// The oracle that failed.
    pub oracle: OracleKind,
    /// What diverged.
    pub message: String,
    /// Path of the minimized repro file, once written.
    pub repro: Option<String>,
}

/// The deterministic portion of a campaign result: everything except
/// wall-clock timing. Two campaigns with the same options must produce
/// equal `CampaignStats` regardless of thread count.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CampaignStats {
    /// Task sets generated and checked.
    pub checked_sets: u64,
    /// Task sets the generator failed to produce (counted, not checked).
    pub generation_failures: u64,
    /// Task sets with at least one schedulable analysis configuration.
    pub schedulable_sets: u64,
    /// Per-oracle counters.
    pub oracles: OracleStats,
    /// Recorded violations, ordered by set index.
    pub violations: Vec<ViolationRecord>,
}

/// Campaign options echoed into the report.
#[derive(Debug, Clone, Serialize)]
pub struct OptionsSummary {
    /// Requested number of task sets.
    pub sets: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads used.
    pub threads: usize,
    /// RR/TDMA slot count.
    pub slots: u64,
    /// Whether the quick (smoke) profile was active.
    pub quick: bool,
    /// Fault-injection mode label.
    pub inject: String,
    /// Whether the cycle-stepped reference simulator was used instead of
    /// the event-skipping fast path.
    pub reference_sim: bool,
}

/// The full campaign report.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationReport {
    /// Report schema version.
    pub schema: u32,
    /// Options the campaign ran with.
    pub options: OptionsSummary,
    /// Deterministic result counters.
    pub stats: CampaignStats,
    /// Campaign duration in seconds.
    pub wall_clock_secs: f64,
    /// Throughput over the whole campaign.
    pub sets_per_second: f64,
}

/// Current report schema version.
pub const REPORT_SCHEMA: u32 = 1;

impl ValidationReport {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.stats.oracles.total_violations() == 0 && self.stats.generation_failures == 0
    }

    /// Pretty-printed JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let o = &self.stats.oracles;
        format!(
            "{}: {} sets, {} checks ({} soundness, {} dominance, {} determinism, {} accounting), \
             {} violations in {:.1}s ({:.1} sets/s)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.stats.checked_sets,
            o.total_checks(),
            o.soundness.checks,
            o.dominance.checks,
            o.determinism.checks,
            o.accounting.checks,
            o.total_violations(),
            self.wall_clock_secs,
            self.sets_per_second,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_bucket() {
        let mut a = OracleStats::default();
        a.stat_mut(OracleKind::Soundness).checks = 3;
        a.stat_mut(OracleKind::Accounting).violations = 1;
        let mut b = OracleStats::default();
        b.stat_mut(OracleKind::Soundness).checks = 2;
        b.stat_mut(OracleKind::Dominance).checks = 5;
        a.merge(&b);
        assert_eq!(a.soundness.checks, 5);
        assert_eq!(a.dominance.checks, 5);
        assert_eq!(a.total_checks(), 10);
        assert_eq!(a.total_violations(), 1);
    }

    #[test]
    fn report_json_and_summary_reflect_outcome() {
        let report = ValidationReport {
            schema: REPORT_SCHEMA,
            options: OptionsSummary {
                sets: 10,
                seed: 1,
                threads: 2,
                slots: 2,
                quick: true,
                inject: "none".to_string(),
                reference_sim: false,
            },
            stats: CampaignStats {
                checked_sets: 10,
                ..CampaignStats::default()
            },
            wall_clock_secs: 1.5,
            sets_per_second: 6.7,
        };
        assert!(report.passed());
        assert!(report.summary().starts_with("PASS: 10 sets"));
        let json = report.to_json();
        assert!(json.contains("\"checked_sets\": 10"), "{json}");
        assert!(json.contains("\"schema\": 1"), "{json}");
    }
}
