//! Differential soundness validation of the analysis against the simulator.
//!
//! The analytical WCRT bounds of [`cpa_analysis`] are upper bounds on
//! behaviour the cycle-accurate simulator of [`cpa_sim`] can actually
//! exhibit. This crate cross-checks the two on randomized workloads from
//! [`cpa_workload`], at campaign scale, and — when a check fails — shrinks
//! the offending task set to a minimal, replayable counterexample.
//!
//! # Oracles
//!
//! | Oracle | Property checked |
//! |---|---|
//! | *soundness* | every observed response time ≤ the analytical WCRT of a schedulable config, and no simulated deadline miss |
//! | *dominance* | persistence-aware bounds never exceed persistence-oblivious ones (Lemmas 1–2 refine, never relax) |
//! | *determinism* | same seed ⇒ bit-identical task set, analysis result, and [`cpa_sim::SimReport`] |
//! | *accounting* | simulator bookkeeping invariants (completions ≤ releases, bus-transaction totals consistent, …) |
//!
//! # Example
//!
//! A miniature campaign (CI-sized; `cpa-validate run` drives the full
//! version):
//!
//! ```
//! use cpa_validate::{run_campaign, CampaignOptions};
//!
//! let opts = CampaignOptions::new().with_sets(4).with_quick(true);
//! let outcome = run_campaign(&opts);
//! assert_eq!(outcome.report.stats.checked_sets, 4);
//! assert!(outcome.report.passed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod campaign;
pub mod oracle;
pub mod report;
pub mod repro;
pub mod shrink;

pub use campaign::{run_campaign, CampaignOptions, CampaignOutcome, ViolationCase};
pub use oracle::{
    check_task_set, platform_for_tasks, CheckOptions, Inject, OracleKind, SetOutcome, Violation,
};
pub use report::{CampaignStats, OracleStat, OracleStats, ValidationReport, ViolationRecord};
pub use repro::{Repro, ReproError};
pub use shrink::{shrink_case, ShrinkOutcome};
