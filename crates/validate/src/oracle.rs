//! The differential oracles checked on every generated task set.
//!
//! [`check_task_set`] runs the full analysis matrix (every bus policy ×
//! persistence mode × CRPD approach) and the cycle-accurate simulator
//! (synchronous and, optionally, sporadic releases) on one task set, and
//! compares the two against the properties listed in the crate docs.
//!
//! The checker is deliberately *pure*: same inputs, same
//! [`SetOutcome`] — which is itself one of the properties it verifies
//! (the determinism oracle re-runs analysis and simulation and demands
//! bit-identical results).

use std::fmt;
use std::str::FromStr;

use cpa_analysis::{
    analyze, analyze_with, AnalysisConfig, AnalysisContext, AnalysisResult, AnalysisScratch,
    BusPolicy, ContextBuffers, CrpdApproach, PersistenceMode,
};
use cpa_model::{CacheGeometry, ModelError, Platform, TaskSet, Time};
use cpa_sim::{BusArbitration, ReleaseModel, SimConfig, SimReport, Simulator};
use serde::{Deserialize, Serialize};

use crate::report::OracleStats;

/// Upper bound on recorded [`Violation`]s per task set; the per-oracle
/// counters keep counting past it.
const MAX_VIOLATIONS_PER_SET: usize = 8;

/// Which oracle a check or violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OracleKind {
    /// Observed behaviour within analytical bounds.
    Soundness,
    /// Persistence-aware bounds ≤ persistence-oblivious bounds.
    Dominance,
    /// Same seed reproduces bit-identical results.
    Determinism,
    /// Simulator bookkeeping invariants.
    Accounting,
}

impl OracleKind {
    /// Short machine-friendly label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            OracleKind::Soundness => "soundness",
            OracleKind::Dominance => "dominance",
            OracleKind::Determinism => "determinism",
            OracleKind::Accounting => "accounting",
        }
    }
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deliberate fault injection, used to exercise the violation-handling
/// pipeline (shrinker, repro files, exit codes) end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Inject {
    /// No injection: every reported violation is a real finding.
    #[default]
    None,
    /// Tighten the soundness oracle to an unsatisfiable bound so any
    /// completed job trips it.
    Soundness,
    /// Require *strict* dominance, which fails whenever aware and
    /// oblivious bounds coincide.
    Dominance,
}

impl Inject {
    /// Short machine-friendly label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Inject::None => "none",
            Inject::Soundness => "soundness",
            Inject::Dominance => "dominance",
        }
    }
}

impl fmt::Display for Inject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Inject {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Inject::None),
            "soundness" => Ok(Inject::Soundness),
            "dominance" => Ok(Inject::Dominance),
            other => Err(format!(
                "unknown injection `{other}` (expected none, soundness, or dominance)"
            )),
        }
    }
}

/// One failed check, with a human-readable description of what diverged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The oracle that failed.
    pub oracle: OracleKind,
    /// What was compared and how it diverged.
    pub message: String,
}

/// Everything that parameterizes one oracle bundle run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckOptions {
    /// RR/TDMA slot count for both analysis and simulation.
    pub slots: u64,
    /// Upper bound on the simulated horizon (cycles); the horizon is
    /// `4 × max period`, capped here.
    pub horizon_cap: u64,
    /// Also simulate sporadic releases (synchronous is always simulated).
    pub sporadic: bool,
    /// Seed for the sporadic inter-arrival jitter.
    pub sporadic_seed: u64,
    /// CRPD approaches to cover in the analysis matrix.
    pub approaches: Vec<CrpdApproach>,
    /// Run the determinism oracle (re-analyze and re-simulate).
    pub determinism: bool,
    /// Fault injection mode.
    pub inject: Inject,
    /// Escape hatch: drive the cycle-stepped reference simulator loop
    /// instead of the event-skipping fast path (see DESIGN.md §11). The
    /// two are pinned byte-identical, so this only changes wall-clock
    /// time; it exists to cross-check the fast path in the field.
    #[serde(default)]
    pub reference_sim: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            slots: 2,
            horizon_cap: 1_500_000,
            sporadic: true,
            sporadic_seed: 0x00C0_FFEE,
            approaches: vec![
                CrpdApproach::EcbUnion,
                CrpdApproach::UcbUnion,
                CrpdApproach::EcbOnly,
            ],
            determinism: true,
            inject: Inject::None,
            reference_sim: false,
        }
    }
}

impl CheckOptions {
    /// The full default bundle.
    #[must_use]
    pub fn new() -> Self {
        CheckOptions::default()
    }

    /// A cheaper bundle for smoke campaigns: shorter horizon, synchronous
    /// releases only, one CRPD approach.
    #[must_use]
    pub fn quick() -> Self {
        CheckOptions {
            horizon_cap: 400_000,
            sporadic: false,
            approaches: vec![CrpdApproach::EcbUnion],
            ..CheckOptions::default()
        }
    }
}

/// Result of running the oracle bundle on one task set.
#[derive(Debug, Clone, Default)]
pub struct SetOutcome {
    /// Per-oracle check and violation counts.
    pub stats: OracleStats,
    /// Recorded violations (capped at a few per set; counts are exact).
    pub violations: Vec<Violation>,
    /// Whether any (bus, mode, approach) configuration was schedulable.
    pub any_schedulable: bool,
}

impl SetOutcome {
    fn record(&mut self, kind: OracleKind, ok: bool, message: impl FnOnce() -> String) {
        let stat = self.stats.stat_mut(kind);
        stat.checks += 1;
        if !ok {
            stat.violations += 1;
            if self.violations.len() < MAX_VIOLATIONS_PER_SET {
                self.violations.push(Violation {
                    oracle: kind,
                    message: message(),
                });
            }
        }
    }
}

/// Runs one simulation, honouring the [`CheckOptions::reference_sim`]
/// escape hatch: the event-skipping fast path by default, the retained
/// cycle-stepped loop when asked.
fn run_sim(
    platform: &Platform,
    tasks: &TaskSet,
    config: SimConfig,
    reference: bool,
) -> Result<cpa_sim::SimReport, ModelError> {
    let sim = Simulator::new(platform, tasks, config)?;
    Ok(if reference {
        sim.run_reference()
    } else {
        sim.run()
    })
}

/// Maps an analysed bus policy to its simulated counterpart.
#[must_use]
pub fn arbitration_of(bus: BusPolicy) -> BusArbitration {
    match bus {
        BusPolicy::FixedPriority | BusPolicy::Perfect => BusArbitration::FixedPriority,
        BusPolicy::RoundRobin { slots } => BusArbitration::RoundRobin { slots },
        BusPolicy::Tdma { slots } => BusArbitration::Tdma { slots },
    }
}

/// The simulated horizon for a task set: `4 × max period`, capped.
#[must_use]
pub fn horizon_for(tasks: &TaskSet, cap: u64) -> Time {
    let max_period = tasks.iter().map(|t| t.period().cycles()).max().unwrap_or(1);
    Time::from_cycles(max_period.saturating_mul(4).min(cap).max(1))
}

/// Builds the smallest platform a task set fits on: `max core + 1` cores,
/// a direct-mapped cache matching the set's footprint capacity (32-byte
/// lines, as everywhere in this workspace), and the given `d_mem`.
///
/// # Errors
///
/// Returns the [`ModelError`] of the platform builder for degenerate
/// parameters (e.g. zero `d_mem`).
pub fn platform_for_tasks(tasks: &TaskSet, d_mem: Time) -> Result<Platform, ModelError> {
    let cores = tasks
        .iter()
        .map(|t| t.core().index() + 1)
        .max()
        .unwrap_or(1);
    Platform::builder()
        .cores(cores)
        .cache(CacheGeometry::direct_mapped(tasks.cache_sets().max(1), 32))
        .memory_latency(d_mem)
        .build()
}

struct MatrixEntry {
    approach: CrpdApproach,
    bus: BusPolicy,
    aware: AnalysisResult,
    oblivious: AnalysisResult,
}

fn release_label(releases: ReleaseModel) -> &'static str {
    match releases {
        ReleaseModel::Synchronous => "sync",
        ReleaseModel::Sporadic { .. } => "sporadic",
    }
}

/// Runs the full oracle bundle on one task set.
///
/// # Errors
///
/// Returns a [`ModelError`] when the task set does not fit the platform —
/// a configuration mistake of the caller, not an oracle violation.
pub fn check_task_set(
    platform: &Platform,
    tasks: &TaskSet,
    opts: &CheckOptions,
) -> Result<SetOutcome, ModelError> {
    check_task_set_with(
        platform,
        tasks,
        opts,
        &mut AnalysisScratch::new(),
        &mut ContextBuffers::new(),
    )
}

/// [`check_task_set`] with caller-owned engine scratch and context-table
/// buffers, for campaign workers that validate long streams of sets. The
/// scratch's warm-start state is forgotten on entry, so retention stays
/// strictly within this set's analysis matrix (where every solve shares
/// one task set) and the outcome is identical to a fresh-scratch run —
/// the determinism oracle re-checks exactly that on sampled sets.
///
/// # Errors
///
/// Returns a [`ModelError`] when the task set does not fit the platform —
/// a configuration mistake of the caller, not an oracle violation.
pub fn check_task_set_with(
    platform: &Platform,
    tasks: &TaskSet,
    opts: &CheckOptions,
    scratch: &mut AnalysisScratch,
    buffers: &mut ContextBuffers,
) -> Result<SetOutcome, ModelError> {
    let _span = cpa_obs::span!("oracle.check_set");
    let buses = BusPolicy::paper_buses(opts.slots);
    let mut out = SetOutcome::default();
    scratch.forget_warm();

    // Analysis matrix + dominance oracle (pure computation, cheap).
    let analysis_span = cpa_obs::span!("oracle.analysis");
    let mut entries = Vec::with_capacity(opts.approaches.len() * buses.len());
    for &approach in &opts.approaches {
        let ctx = AnalysisContext::with_crpd_approach_buffers(platform, tasks, approach, buffers)?;
        for &bus in &buses {
            let aware = analyze_with(
                &ctx,
                &AnalysisConfig::new(bus, PersistenceMode::Aware),
                scratch,
            );
            let oblivious = analyze_with(
                &ctx,
                &AnalysisConfig::new(bus, PersistenceMode::Oblivious),
                scratch,
            );
            check_dominance(
                tasks,
                approach,
                bus,
                &aware,
                &oblivious,
                opts.inject,
                &mut out,
            );
            if aware.is_schedulable() || oblivious.is_schedulable() {
                out.any_schedulable = true;
            }
            entries.push(MatrixEntry {
                approach,
                bus,
                aware,
                oblivious,
            });
        }
        ctx.recycle(buffers);
    }

    // Pruning soundness: whatever the optimizer's O(n) admission bounds
    // would prune, the full analysis must agree is unschedulable, in
    // every configuration of the matrix. The bounds are mode- and
    // bus-independent lower bounds, so one admission verdict covers all
    // columns.
    let admission = cpa_optimize::AdmissionCheck::new(tasks, platform.memory_latency());
    let identity_cores: Vec<usize> = tasks.iter().map(|t| t.core().index()).collect();
    if admission.admit(&identity_cores, platform.cores()) != cpa_optimize::Admission::Admitted {
        for entry in &entries {
            for (mode, result) in [
                (PersistenceMode::Aware, &entry.aware),
                (PersistenceMode::Oblivious, &entry.oblivious),
            ] {
                out.record(OracleKind::Soundness, !result.is_schedulable(), || {
                    format!(
                        "{} {} {}: admission-pruned set reported schedulable by the analysis",
                        entry.bus.label(),
                        entry.approach.label(),
                        mode.label()
                    )
                });
            }
        }
    }

    drop(analysis_span);

    // Simulation + soundness/accounting oracles (the expensive part).
    // Simulation is independent of persistence mode and CRPD approach, so
    // one run per (bus, release model) covers every analysis column.
    let simulate_span = cpa_obs::span!("oracle.simulate");
    let horizon = horizon_for(tasks, opts.horizon_cap);
    for (bus_index, &bus) in buses.iter().enumerate() {
        let bus_entries: Vec<&MatrixEntry> = entries
            .iter()
            .filter(|e| e.bus == bus && (e.aware.is_schedulable() || e.oblivious.is_schedulable()))
            .collect();
        // Unschedulable sets carry no soundness obligation; still simulate
        // the first bus so the accounting oracle sees every set at least
        // once.
        if bus_entries.is_empty() && bus_index != 0 {
            continue;
        }
        let mut release_models = vec![ReleaseModel::Synchronous];
        if opts.sporadic && !bus_entries.is_empty() {
            release_models.push(ReleaseModel::Sporadic {
                seed: opts.sporadic_seed,
                max_extra_percent: 40,
            });
        }
        for releases in release_models {
            let config = SimConfig::new(arbitration_of(bus))
                .with_horizon(horizon)
                .with_releases(releases);
            let report = run_sim(platform, tasks, config, opts.reference_sim)?;
            check_accounting(platform, tasks, &report, releases, &mut out);
            for entry in &bus_entries {
                for (mode, result) in [
                    (PersistenceMode::Aware, &entry.aware),
                    (PersistenceMode::Oblivious, &entry.oblivious),
                ] {
                    if result.is_schedulable() {
                        check_soundness(
                            tasks,
                            entry.approach,
                            bus,
                            mode,
                            releases,
                            result,
                            &report,
                            opts.inject,
                            &mut out,
                        );
                    }
                }
            }
        }
    }

    drop(simulate_span);

    if opts.determinism {
        let _span = cpa_obs::span!("oracle.determinism");
        check_determinism(platform, tasks, opts, &entries, horizon, &mut out)?;
    }
    Ok(out)
}

fn check_dominance(
    tasks: &TaskSet,
    approach: CrpdApproach,
    bus: BusPolicy,
    aware: &AnalysisResult,
    oblivious: &AnalysisResult,
    inject: Inject,
    out: &mut SetOutcome,
) {
    // Schedulability-level implication: anything the oblivious analysis
    // admits, the aware analysis must admit too.
    out.record(
        OracleKind::Dominance,
        !oblivious.is_schedulable() || aware.is_schedulable(),
        || {
            format!(
                "{} {}: oblivious schedulable but aware is not",
                bus.label(),
                approach.label()
            )
        },
    );
    // Per-task dominance is only a theorem when both analyses converge for
    // the whole set (a diverging task inflates the aware outer loop's
    // persistence windows for everything else) — same precondition as the
    // property tests in `cpa-analysis/tests/dominance.rs`.
    if !(aware.is_schedulable() && oblivious.is_schedulable()) {
        return;
    }
    for id in tasks.ids() {
        let a = aware
            .response_time(id)
            .expect("schedulable results bound every task");
        let o = oblivious
            .response_time(id)
            .expect("schedulable results bound every task");
        let dominated = if inject == Inject::Dominance {
            a < o
        } else {
            a <= o
        };
        out.record(OracleKind::Dominance, dominated, || {
            let name = tasks.get(id).map_or("?", |t| t.name());
            let injected = if inject == Inject::Dominance {
                " [injected strict]"
            } else {
                ""
            };
            format!(
                "{} {}: task {name} aware bound {a} exceeds oblivious bound {o}{injected}",
                bus.label(),
                approach.label(),
            )
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn check_soundness(
    tasks: &TaskSet,
    approach: CrpdApproach,
    bus: BusPolicy,
    mode: PersistenceMode,
    releases: ReleaseModel,
    result: &AnalysisResult,
    report: &SimReport,
    inject: Inject,
    out: &mut SetOutcome,
) {
    let rel = release_label(releases);
    out.record(OracleKind::Soundness, report.no_deadline_misses(), || {
        format!(
            "{} {} {} [{rel}]: schedulable per analysis but the simulator missed a deadline",
            bus.label(),
            approach.label(),
            mode.label()
        )
    });
    for id in tasks.ids() {
        let bound = result
            .response_time(id)
            .expect("schedulable results bound every task");
        let observed = report.task(id).max_response;
        let within = if inject == Inject::Soundness {
            observed.is_zero()
        } else {
            observed <= bound
        };
        out.record(OracleKind::Soundness, within, || {
            let name = tasks.get(id).map_or("?", |t| t.name());
            let effective = if inject == Inject::Soundness {
                " [injected bound 0]".to_string()
            } else {
                String::new()
            };
            format!(
                "{} {} {} [{rel}]: task {name} observed response {observed} exceeds bound \
                 {bound}{effective}",
                bus.label(),
                approach.label(),
                mode.label()
            )
        });
    }
}

fn check_accounting(
    platform: &Platform,
    tasks: &TaskSet,
    report: &SimReport,
    releases: ReleaseModel,
    out: &mut SetOutcome,
) {
    let rel = release_label(releases);
    let mut access_sum: u64 = 0;
    for id in tasks.ids() {
        let stats = report.task(id);
        access_sum += stats.bus_accesses;
        let name = tasks.get(id).map_or("?", |t| t.name());
        out.record(
            OracleKind::Accounting,
            stats.completed <= stats.released,
            || {
                format!(
                    "[{rel}] task {name}: {} completions out of {} releases",
                    stats.completed, stats.released
                )
            },
        );
        if stats.completed >= 1 {
            out.record(
                OracleKind::Accounting,
                stats.total_response >= stats.max_response,
                || {
                    format!(
                        "[{rel}] task {name}: total response {} below max response {}",
                        stats.total_response, stats.max_response
                    )
                },
            );
        }
    }
    out.record(
        OracleKind::Accounting,
        access_sum == report.bus_transactions,
        || {
            format!(
                "[{rel}] per-task bus accesses sum to {access_sum} but the bus served {} \
                 transactions",
                report.bus_transactions
            )
        },
    );
    let d_mem = platform.memory_latency().cycles();
    out.record(
        OracleKind::Accounting,
        report.bus_busy_cycles == report.bus_transactions * d_mem,
        || {
            format!(
                "[{rel}] bus busy for {} cycles, expected {} transactions x d_mem {d_mem}",
                report.bus_busy_cycles, report.bus_transactions
            )
        },
    );
    out.record(
        OracleKind::Accounting,
        report.bus_busy_cycles <= report.horizon.cycles() + d_mem,
        || {
            format!(
                "[{rel}] bus busy for {} cycles over a horizon of {}",
                report.bus_busy_cycles, report.horizon
            )
        },
    );
}

fn check_determinism(
    platform: &Platform,
    tasks: &TaskSet,
    opts: &CheckOptions,
    entries: &[MatrixEntry],
    horizon: Time,
    out: &mut SetOutcome,
) -> Result<(), ModelError> {
    let Some(&approach) = opts.approaches.first() else {
        return Ok(());
    };
    // Re-derive the analysis from scratch: a second context + fixed-point
    // run must land on exactly the same response times.
    let ctx = AnalysisContext::with_crpd_approach(platform, tasks, approach)?;
    let fresh = analyze(
        &ctx,
        &AnalysisConfig::new(BusPolicy::FixedPriority, PersistenceMode::Aware),
    );
    let stored = entries
        .iter()
        .find(|e| e.approach == approach && e.bus == BusPolicy::FixedPriority)
        .expect("FP entry exists for every approach");
    out.record(
        OracleKind::Determinism,
        fresh.response_times() == stored.aware.response_times(),
        || "re-running the FP/aware analysis produced different response times".to_string(),
    );
    // Two sim runs with identical config must be bit-identical
    // (`SimReport` is `PartialEq` over every counter).
    let config = SimConfig::new(BusArbitration::FixedPriority)
        .with_horizon(horizon.min(Time::from_cycles(200_000)));
    let first = run_sim(platform, tasks, config, opts.reference_sim)?;
    let second = run_sim(platform, tasks, config, opts.reference_sim)?;
    out.record(OracleKind::Determinism, first == second, || {
        "two simulator runs with the same seed and config diverged".to_string()
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_workload::{GeneratorConfig, TaskSetGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_set(seed: u64) -> (Platform, TaskSet) {
        let config = GeneratorConfig {
            cores: 2,
            tasks_per_core: 3,
            ..GeneratorConfig::paper_default()
        }
        .with_per_core_utilization(0.3);
        let generator = TaskSetGenerator::new(config.clone()).expect("valid config");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tasks = generator.generate(&mut rng).expect("generation succeeds");
        let platform = platform_for_tasks(&tasks, config.d_mem).expect("valid platform");
        (platform, tasks)
    }

    #[test]
    fn clean_set_passes_every_oracle() {
        let (platform, tasks) = small_set(7);
        let opts = CheckOptions {
            horizon_cap: 300_000,
            ..CheckOptions::quick()
        };
        let out = check_task_set(&platform, &tasks, &opts).expect("checkable");
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.stats.soundness.checks + out.stats.dominance.checks > 0);
        assert_eq!(out.stats.total_violations(), 0);
    }

    #[test]
    fn injected_soundness_fault_is_caught() {
        let (platform, tasks) = small_set(7);
        let opts = CheckOptions {
            horizon_cap: 300_000,
            inject: Inject::Soundness,
            ..CheckOptions::quick()
        };
        let out = check_task_set(&platform, &tasks, &opts).expect("checkable");
        assert!(
            out.violations
                .iter()
                .any(|v| v.oracle == OracleKind::Soundness),
            "expected an injected soundness violation, got {:?}",
            out.violations
        );
    }

    #[test]
    fn outcome_is_reproducible() {
        let (platform, tasks) = small_set(11);
        let opts = CheckOptions {
            horizon_cap: 300_000,
            ..CheckOptions::quick()
        };
        let a = check_task_set(&platform, &tasks, &opts).expect("checkable");
        let b = check_task_set(&platform, &tasks, &opts).expect("checkable");
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn inject_parses_and_round_trips() {
        for (text, expected) in [
            ("none", Inject::None),
            ("soundness", Inject::Soundness),
            ("dominance", Inject::Dominance),
        ] {
            let parsed: Inject = text.parse().expect("parses");
            assert_eq!(parsed, expected);
            assert_eq!(parsed.label(), text);
        }
        assert!("bogus".parse::<Inject>().is_err());
    }
}
