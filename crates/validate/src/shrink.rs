//! Greedy counterexample minimization.
//!
//! Given a task set that trips an oracle, [`shrink_case`] repeatedly tries
//! simplifying transformations — dropping tasks, collapsing everything
//! onto one core, halving periods/demands, stripping cache footprints —
//! and keeps a transformation only if the *same oracle* still fails on the
//! simplified set. The loop runs to a fixpoint (no candidate accepted) or
//! an evaluation budget, whichever comes first; the result is a small,
//! self-contained task set exhibiting the original violation.

use cpa_model::{CacheBlockSet, CoreId, ModelError, Priority, Task, TaskSet, Time};

use crate::campaign::ViolationCase;
use crate::oracle::{check_task_set, platform_for_tasks, CheckOptions, OracleKind, Violation};

/// Oracle-bundle evaluations the shrinker may spend per case.
const MAX_EVALUATIONS: u64 = 256;

/// Result of shrinking one violation case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized task set (still violating the original oracle).
    pub tasks: TaskSet,
    /// The violation as reported on the minimized set.
    pub violation: Violation,
    /// Oracle-bundle evaluations spent.
    pub evaluations: u64,
    /// Accepted transformations.
    pub steps: u32,
}

/// Mutable mirror of a [`Task`], so transformations can edit fields and
/// rebuild through the validating builder.
#[derive(Debug, Clone)]
struct TaskParams {
    name: String,
    pd: Time,
    md: u64,
    md_r: u64,
    deadline: Time,
    period: Time,
    core: usize,
    priority: u32,
    ucb: CacheBlockSet,
    ecb: CacheBlockSet,
    pcb: CacheBlockSet,
}

impl TaskParams {
    fn of(task: &Task) -> TaskParams {
        TaskParams {
            name: task.name().to_string(),
            pd: task.processing_demand(),
            md: task.memory_demand(),
            md_r: task.residual_memory_demand(),
            deadline: task.deadline(),
            period: task.period(),
            core: task.core().index(),
            priority: task.priority().level(),
            ucb: task.ucb().clone(),
            ecb: task.ecb().clone(),
            pcb: task.pcb().clone(),
        }
    }

    fn build(&self) -> Result<Task, ModelError> {
        Task::builder(&self.name)
            .processing_demand(self.pd)
            .memory_demand(self.md)
            .residual_memory_demand(self.md_r)
            .deadline(self.deadline)
            .period(self.period)
            .core(CoreId::new(self.core))
            .priority(Priority::new(self.priority))
            .ucb(self.ucb.clone())
            .ecb(self.ecb.clone())
            .pcb(self.pcb.clone())
            .build()
    }
}

fn rebuild(params: &[TaskParams]) -> Option<TaskSet> {
    let tasks: Result<Vec<Task>, ModelError> = params.iter().map(TaskParams::build).collect();
    TaskSet::new(tasks.ok()?).ok()
}

fn halve(t: Time) -> Time {
    Time::from_cycles((t.cycles() / 2).max(1))
}

/// Candidate simplifications of `current`, most aggressive first. Each is
/// a full parameter vector; invalid ones are filtered out by `rebuild`.
fn candidates(current: &[TaskParams]) -> Vec<Vec<TaskParams>> {
    let mut out = Vec::new();
    // Drop one task.
    if current.len() > 1 {
        for drop in 0..current.len() {
            let mut next: Vec<TaskParams> = current.to_vec();
            next.remove(drop);
            out.push(next);
        }
    }
    // Collapse everything onto core 0 (removes all cross-core contention).
    if current.iter().any(|p| p.core != 0) {
        let mut next = current.to_vec();
        for p in &mut next {
            p.core = 0;
        }
        out.push(next);
    }
    // Per-task parameter halvings and footprint strips.
    for (i, p) in current.iter().enumerate() {
        if p.period.cycles() > 1 {
            let mut next = current.to_vec();
            next[i].period = halve(p.period);
            next[i].deadline = halve(p.deadline).min(next[i].period);
            out.push(next);
        }
        if p.pd.cycles() > 1 {
            let mut next = current.to_vec();
            next[i].pd = halve(p.pd);
            out.push(next);
        }
        if p.md > 1 {
            let mut next = current.to_vec();
            next[i].md = p.md / 2;
            next[i].md_r = p.md_r.min(p.md / 2);
            out.push(next);
        }
        if !p.pcb.is_empty() {
            // Dropping persistence means every access is a bus access
            // again: md_r goes back to md.
            let mut next = current.to_vec();
            next[i].pcb = CacheBlockSet::new(p.pcb.capacity());
            next[i].md_r = p.md;
            out.push(next);
        }
        if !p.ucb.is_empty() {
            let mut next = current.to_vec();
            next[i].ucb = CacheBlockSet::new(p.ucb.capacity());
            out.push(next);
        }
    }
    out
}

fn violation_of(
    tasks: &TaskSet,
    d_mem: Time,
    oracle: OracleKind,
    opts: &CheckOptions,
) -> Option<Violation> {
    let platform = platform_for_tasks(tasks, d_mem).ok()?;
    let outcome = check_task_set(&platform, tasks, opts).ok()?;
    outcome.violations.into_iter().find(|v| v.oracle == oracle)
}

/// Greedily minimizes a violation case.
///
/// Returns `None` when the violation does not reproduce on the original
/// task set under `opts` (a stale or non-deterministic case — nothing
/// sound to shrink).
#[must_use]
pub fn shrink_case(case: &ViolationCase, opts: &CheckOptions) -> Option<ShrinkOutcome> {
    let _span = cpa_obs::span!("shrink.case");
    // The determinism oracle is only re-run while shrinking determinism
    // violations; for everything else it would spend budget without
    // affecting whether the target oracle fires.
    let mut opts = opts.clone();
    opts.determinism = case.violation.oracle == OracleKind::Determinism;

    let oracle = case.violation.oracle;
    let mut evaluations: u64 = 1;
    let mut violation = violation_of(&case.tasks, case.d_mem, oracle, &opts)?;
    let mut current: Vec<TaskParams> = case.tasks.iter().map(TaskParams::of).collect();
    let mut steps = 0u32;

    'outer: loop {
        for candidate in candidates(&current) {
            if evaluations >= MAX_EVALUATIONS {
                break 'outer;
            }
            let Some(tasks) = rebuild(&candidate) else {
                continue;
            };
            evaluations += 1;
            cpa_obs::counter("shrink.evaluations").incr();
            if let Some(v) = violation_of(&tasks, case.d_mem, oracle, &opts) {
                current = candidate;
                violation = v;
                steps += 1;
                cpa_obs::counter("shrink.accepted_steps").incr();
                cpa_obs::event!(
                    "shrink.step",
                    set = case.set_index,
                    oracle = oracle.label(),
                    step = steps,
                    evaluations = evaluations,
                    tasks = tasks.len(),
                );
                continue 'outer;
            }
        }
        break;
    }

    let tasks = rebuild(&current).expect("accepted candidates always rebuild");
    Some(ShrinkOutcome {
        tasks,
        violation,
        evaluations,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignOptions};
    use crate::oracle::Inject;

    #[test]
    fn injected_violation_shrinks_to_a_smaller_set() {
        let outcome = run_campaign(
            &CampaignOptions::new()
                .with_sets(2)
                .with_quick(true)
                .with_seed(42)
                .with_inject(Inject::Soundness),
        );
        let case = outcome.cases.first().expect("injection produces a case");
        let check = CampaignOptions::new()
            .with_quick(true)
            .with_inject(Inject::Soundness)
            .check_options();
        let shrunk = shrink_case(case, &check).expect("violation reproduces");
        assert!(shrunk.tasks.len() <= case.tasks.len());
        assert_eq!(shrunk.violation.oracle, OracleKind::Soundness);
        assert!(shrunk.steps > 0, "expected at least one accepted step");
        // The minimized set must still trip the oracle on a fresh check.
        let mut check = check;
        check.determinism = false;
        assert!(
            violation_of(&shrunk.tasks, case.d_mem, OracleKind::Soundness, &check).is_some(),
            "minimized set no longer violates"
        );
    }

    #[test]
    fn stale_case_yields_none() {
        // A clean campaign case cannot exist, so fabricate one: take a
        // passing set and claim it violates soundness.
        let outcome = run_campaign(
            &CampaignOptions::new()
                .with_sets(1)
                .with_quick(true)
                .with_seed(7)
                .with_inject(Inject::Soundness),
        );
        let case = outcome.cases.first().expect("case exists");
        // Replaying without injection: the violation should vanish.
        let clean = CampaignOptions::new().with_quick(true).check_options();
        assert!(shrink_case(case, &clean).is_none());
    }
}
